// Package ingest implements crash-safe streaming ingestion: an append
// path that commits batches of new libraries through atomicio generation
// dirs and maintains the session's derived state — cleaning statistics,
// the dense dataset, SUMY aggregates, entropy rankings and sorted column
// indexes — incrementally instead of rebuilding from scratch.
//
// The package splits into three layers:
//
//   - Store (store.go): the durable side. A corpus directory is grown by
//     appending batches as new generations whose index references older
//     libraries in the generations that committed them, so an append
//     writes O(batch) files; CURRENT flips as the single commit point and
//     a crash at any write boundary rolls back to the previous
//     generation. Invalid submissions land in a quarantine dir with a
//     salvage report instead of poisoning the corpus.
//
//   - View (view.go): the in-memory side. A View holds the cleaned
//     corpus, dataset, SUMY table, entropy ranking and sorted indexes for
//     one corpus generation, plus the running state (per-tag maxima,
//     column moments, entropy histograms, sorted runs) that lets Apply
//     fold a batch in without recomputing unchanged columns. Apply is
//     copy-on-write: it returns a new View and never mutates the old one,
//     so in-flight readers keep a consistent generation. Incremental
//     maintenance is bit-identical to Rebuild on the same final corpus —
//     the equivalence suite in view_test.go pins this at several batch
//     splits.
//
//   - this file: the failure taxonomy. Every fallible store step is
//     wrapped in a RetryPolicy that retries transient I/O faults
//     (ENOSPC-ish errors, generic write failures) with exponential
//     backoff and fails fast on corruption (checksum/truncation, which
//     retrying cannot fix) and schema violations (which quarantine, not
//     retry, must handle).
package ingest

import (
	"errors"
	"fmt"
	"time"

	"gea/internal/atomicio"
)

// Class sorts an append-path failure into the retry taxonomy.
type Class int

const (
	// ClassTransient faults (full disk, injected I/O error, generic
	// write failure) may clear on their own; the policy retries them.
	ClassTransient Class = iota
	// ClassCorrupt faults (checksum mismatch, truncated frame) are
	// durable damage; retrying re-reads the same bad bytes, so the
	// append fails fast and the artifact is left to salvage tooling.
	ClassCorrupt
	// ClassSchema faults are invalid submissions (bad tag, negative
	// count, duplicate name). They are the submitter's problem: the
	// library is quarantined with a report and the rest of the batch
	// proceeds.
	ClassSchema
)

func (c Class) String() string {
	switch c {
	case ClassCorrupt:
		return "corrupt"
	case ClassSchema:
		return "schema"
	default:
		return "transient"
	}
}

// SchemaError describes one library rejected before it touched the store.
type SchemaError struct {
	// Lib is the submitted library name ("" when the name itself is the
	// problem).
	Lib string
	// Reason says what was wrong.
	Reason string
}

func (e *SchemaError) Error() string {
	if e.Lib == "" {
		return fmt.Sprintf("ingest: schema: %s", e.Reason)
	}
	return fmt.Sprintf("ingest: schema: library %q: %s", e.Lib, e.Reason)
}

// Classify maps an error onto the retry taxonomy. Corruption sentinels
// and schema errors are terminal; everything else — including the
// injected transients of internal/iofault and real ENOSPC — is assumed
// recoverable and worth retrying.
func Classify(err error) Class {
	if err == nil {
		return ClassTransient
	}
	if errors.Is(err, atomicio.ErrChecksum) || errors.Is(err, atomicio.ErrTruncated) {
		return ClassCorrupt
	}
	var se *SchemaError
	if errors.As(err, &se) {
		return ClassSchema
	}
	return ClassTransient
}

// RetryPolicy retries transient failures with exponential backoff and
// fails fast on anything Classify calls terminal.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per step (first attempt
	// included). <= 0 means DefaultRetry's setting.
	MaxAttempts int
	// BaseDelay is the sleep before the first retry; it doubles per
	// retry up to MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep replaces time.Sleep, letting tests walk hundreds of fault
	// replays without waiting. Nil means time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, if set, observes each retry (step label, 1-based attempt
	// that failed, the error). The store feeds ingest.retries metrics
	// through this.
	OnRetry func(step string, attempt int, err error)
}

// DefaultRetry is the store's default policy: four attempts, 10ms base
// backoff capped at 500ms.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 500 * time.Millisecond}
}

// Do runs fn under the policy. Terminal errors (corrupt, schema) return
// immediately; transient errors retry with backoff until attempts run
// out, and the last error is returned wrapped with the step label.
func (p RetryPolicy) Do(step string, fn func() error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultRetry().MaxAttempts
	}
	delay := p.BaseDelay
	if delay <= 0 {
		delay = DefaultRetry().BaseDelay
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = DefaultRetry().MaxDelay
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if Classify(err) != ClassTransient {
			return fmt.Errorf("ingest: %s: %w", step, err)
		}
		if attempt == attempts {
			break
		}
		if p.OnRetry != nil {
			p.OnRetry(step, attempt, err)
		}
		sleep(delay)
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
	return fmt.Errorf("ingest: %s: %d attempts exhausted: %w", step, attempts, err)
}

package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"

	"gea/internal/atomicio"
	"gea/internal/sage"
)

// Store is the durable half of the append path: a corpus directory grown
// generation by generation.
//
//	dir/CURRENT                    commit pointer (atomicio framed)
//	dir/gen-NNNNNN/sageName.txt    index of the WHOLE corpus as of that gen
//	dir/gen-NNNNNN/<name>.sage     only the libraries appended by that gen
//	dir/quarantine/q-NNNNNN/       rejected submissions + salvage report
//
// An append writes the new libraries and a full index into a fresh
// generation dir; index lines for pre-existing libraries carry a seventh
// field naming the generation that committed them (WriteIndexWithGens),
// so no library file is ever rewritten — append I/O is O(batch), not
// O(corpus). Flipping CURRENT is the single commit point: a crash at any
// earlier write leaves the previous generation fully live, and the
// orphaned partial generation is swept by the next successful append.
// Directories written by plain sage.SaveCorpus open as single-generation
// stores, so an existing corpus upgrades to an append store for free.
//
// A Store is not safe for concurrent use; the System serializes appends.
type Store struct {
	fsys  atomicio.FS
	dir   string
	retry RetryPolicy

	gen     string             // live generation ("" for an empty store)
	metas   []sage.LibraryMeta // index order
	libGens map[string]string  // library name -> generation that holds it
	names   map[string]bool

	// Retries counts transient-fault retries the policy absorbed over
	// the store's lifetime.
	Retries int
}

// quarantineDir is the subdirectory rejected submissions land in. Its
// name does not match the gen- pattern, so generation sweeps ignore it.
const quarantineDir = "quarantine"

// Open opens (or initializes) an append store at dir. A directory with no
// CURRENT pointer opens as an empty store; a directory written by
// sage.SaveCorpus or a previous Store opens with its live generation. The
// salvaged corpus and any per-library damage reports are returned
// alongside — damaged libraries stay in the index (their names remain
// reserved) but are absent from the corpus.
func Open(fsys atomicio.FS, dir string, retry RetryPolicy) (*Store, *sage.Corpus, []sage.Problem, error) {
	st := &Store{fsys: fsys, dir: dir, retry: retry,
		libGens: map[string]string{}, names: map[string]bool{}}
	var (
		corpus   *sage.Corpus
		problems []sage.Problem
	)
	err := st.do("open", func() error {
		gen, err := atomicio.CurrentGen(fsys, dir)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				gen = ""
				corpus = &sage.Corpus{}
				return nil
			}
			return err
		}
		idxData, err := atomicio.ReadFile(fsys, filepath.Join(dir, gen, indexFileName))
		if err != nil {
			return err
		}
		metas, gens, err := readIndexBytes(idxData)
		if err != nil {
			return err
		}
		corpus, problems, err = sage.LoadCorpusSalvage(fsys, dir)
		if err != nil {
			return err
		}
		st.gen = gen
		st.metas = metas
		for i, m := range metas {
			g := gens[i]
			if g == "" {
				g = gen
			}
			st.libGens[m.Name] = g
			st.names[m.Name] = true
		}
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return st, corpus, problems, nil
}

// indexFileName mirrors sage's corpus index name ("sageName.txt").
const indexFileName = "sageName.txt"

func readIndexBytes(data []byte) ([]sage.LibraryMeta, []string, error) {
	return sage.ReadIndexWithGens(bytes.NewReader(data))
}

// Gen returns the live generation name ("" for an empty store).
func (st *Store) Gen() string { return st.gen }

// Names returns the reserved library-name set (live + damaged-but-indexed).
func (st *Store) Names() map[string]bool { return st.names }

// Metas returns the index rows of the live generation, in order.
func (st *Store) Metas() []sage.LibraryMeta { return st.metas }

// do runs one store step under the retry policy, accumulating the
// store-wide retry count.
func (st *Store) do(step string, fn func() error) error {
	p := st.retry
	inner := p.OnRetry
	p.OnRetry = func(step string, attempt int, err error) {
		st.Retries++
		if inner != nil {
			inner(step, attempt, err)
		}
	}
	return p.Do(step, fn)
}

// Append durably commits libs (already screened: valid, unique, not yet
// present) as one new generation and returns its name. On error nothing
// is applied: the previous CURRENT still names the old corpus, and the
// in-memory store state is unchanged, so the same append can be retried
// wholesale. Each fallible step runs under the retry policy.
func (st *Store) Append(libs []*sage.Library) (string, error) {
	if len(libs) == 0 {
		return "", fmt.Errorf("ingest: empty append")
	}
	var gen string
	if err := st.do("nextgen", func() error {
		var err error
		gen, err = atomicio.NextGen(st.fsys, st.dir)
		return err
	}); err != nil {
		return "", err
	}
	gd := filepath.Join(st.dir, gen)
	if err := st.do("mkgen", func() error {
		return st.fsys.MkdirAll(gd, 0o755)
	}); err != nil {
		return "", err
	}
	for _, l := range libs {
		l := l
		path := filepath.Join(gd, l.Meta.Name+".sage")
		if err := st.do("write "+l.Meta.Name, func() error {
			return atomicio.WriteFileFunc(st.fsys, path,
				func(w io.Writer) error { return sage.WriteLibrary(w, l) })
		}); err != nil {
			return "", err
		}
	}

	// Full index: old libraries point at the generations holding them,
	// new ones resolve beside the index (six-field lines).
	full := &sage.Corpus{Libraries: make([]*sage.Library, 0, len(st.metas)+len(libs))}
	for _, m := range st.metas {
		full.Libraries = append(full.Libraries, sage.NewLibrary(m))
	}
	for _, l := range libs {
		full.Libraries = append(full.Libraries, l)
	}
	gens := make(map[string]string, len(st.libGens))
	for name, g := range st.libGens {
		gens[name] = g
	}
	if err := st.do("index", func() error {
		return atomicio.WriteFileFunc(st.fsys, filepath.Join(gd, indexFileName),
			func(w io.Writer) error { return sage.WriteIndexWithGens(w, full, gens) })
	}); err != nil {
		return "", err
	}

	// The commit point. atomicio.Commit stages CURRENT and renames it
	// into place, so a crash mid-commit leaves the old pointer; a
	// transient failure before the rename is safely retried, and a
	// failure after it (the directory sync) re-commits idempotently.
	if err := st.do("commit", func() error {
		return atomicio.Commit(st.fsys, st.dir, gen)
	}); err != nil {
		return "", err
	}

	// Success: adopt the new state, then sweep generations nothing
	// references anymore (failed attempts, fully superseded gens).
	// Cleanup is best-effort by design — orphans are invisible.
	for _, l := range libs {
		st.metas = append(st.metas, l.Meta)
		st.libGens[l.Meta.Name] = gen
		st.names[l.Meta.Name] = true
	}
	st.gen = gen
	keep := map[string]bool{gen: true}
	for _, g := range st.libGens {
		keep[g] = true
	}
	atomicio.CleanupGensExcept(st.fsys, st.dir, keep)
	return gen, nil
}

// Report summarizes one Ingest call for callers, logs and the HTTP
// endpoint.
type Report struct {
	// Gen is the committed generation; "" when no valid library remained
	// to append.
	Gen string `json:"gen,omitempty"`
	// Appended lists the committed library names in submission order.
	Appended []string `json:"appended,omitempty"`
	// Rejected lists quarantined submissions and why.
	Rejected []RejectionReport `json:"rejected,omitempty"`
	// QuarantineDir is where the rejected submissions and the salvage
	// report were written; "" when the batch was fully valid.
	QuarantineDir string `json:"quarantine_dir,omitempty"`
	// Retries counts transient-fault retries absorbed during this call.
	Retries int `json:"retries,omitempty"`
}

// RejectionReport is the wire form of one Rejection.
type RejectionReport struct {
	Name  string `json:"name"`
	Error string `json:"error"`
}

// Ingest screens a batch, quarantines invalid submissions, appends the
// valid remainder and returns the combined report. The quarantine is
// written before the commit: if the process dies mid-append, the
// rejects are already on disk and the retried append simply quarantines
// them again under a fresh number.
func (st *Store) Ingest(b Batch) (*Report, error) {
	before := st.Retries
	valid, rejected := Screen(b, st.names)
	rep := &Report{}
	for _, r := range rejected {
		rep.Rejected = append(rep.Rejected, RejectionReport{Name: r.Name, Error: r.Err.Error()})
	}
	if len(rejected) > 0 {
		qdir, err := st.Quarantine(b, rejected)
		if err != nil {
			return nil, err
		}
		rep.QuarantineDir = qdir
	}
	if len(valid) > 0 {
		gen, err := st.Append(valid)
		if err != nil {
			return nil, err
		}
		rep.Gen = gen
		for _, l := range valid {
			rep.Appended = append(rep.Appended, l.Meta.Name)
		}
	}
	rep.Retries = st.Retries - before
	return rep, nil
}

// Quarantine lands the rejected submissions in a fresh numbered
// quarantine dir: report.txt (one "name<TAB>error" line per rejection,
// plus the offending generation context) and the submitted payload of
// each reject as numbered JSON files, so an operator can inspect, fix
// and resubmit. Every write is framed and retried like the append path.
func (st *Store) Quarantine(b Batch, rejected []Rejection) (string, error) {
	root := filepath.Join(st.dir, quarantineDir)
	var qdir string
	if err := st.do("quarantine scan", func() error {
		if err := st.fsys.MkdirAll(root, 0o755); err != nil {
			return err
		}
		entries, err := st.fsys.ReadDir(root)
		if err != nil {
			return err
		}
		max := 0
		for _, e := range entries {
			var n int
			if _, err := fmt.Sscanf(e.Name(), "q-%06d", &n); err == nil && n > max {
				max = n
			}
		}
		qdir = filepath.Join(root, fmt.Sprintf("q-%06d", max+1))
		return st.fsys.MkdirAll(qdir, 0o755)
	}); err != nil {
		return "", err
	}

	// Index rejects by name to recover each one's submitted payload.
	byName := make(map[string][]BatchLibrary)
	for _, bl := range b.Libraries {
		byName[bl.Name] = append(byName[bl.Name], bl)
	}
	for i, r := range rejected {
		payloads := byName[r.Name]
		if len(payloads) == 0 {
			continue
		}
		bl := payloads[0]
		byName[r.Name] = payloads[1:]
		path := filepath.Join(qdir, fmt.Sprintf("lib-%03d.json", i+1))
		if err := st.do("quarantine payload", func() error {
			return atomicio.WriteFileFunc(st.fsys, path,
				func(w io.Writer) error { return EncodeBatch(w, Batch{Libraries: []BatchLibrary{bl}}) })
		}); err != nil {
			return "", err
		}
	}
	if err := st.do("quarantine report", func() error {
		return atomicio.WriteFileFunc(st.fsys, filepath.Join(qdir, "report.txt"),
			func(w io.Writer) error {
				fmt.Fprintf(w, "# rejected at corpus generation %q\n", st.gen)
				for i, r := range rejected {
					if _, err := fmt.Fprintf(w, "lib-%03d\t%s\t%v\n", i+1, r.Name, r.Err); err != nil {
						return err
					}
				}
				return nil
			})
	}); err != nil {
		return "", err
	}
	return qdir, nil
}

package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"gea/internal/atomicio"
	"gea/internal/iofault"
	"gea/internal/sage"
)

// noRetry fails fast: crash walks want every injected fault surfaced, not
// absorbed.
func noRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 1, Sleep: func(time.Duration) {}}
}

// fastRetry absorbs transient faults without sleeping, so fault walks
// stay fast.
func fastRetry() RetryPolicy {
	p := DefaultRetry()
	p.Sleep = func(time.Duration) {}
	return p
}

// testBatch builds a valid wire batch of n libraries named prefix1..n.
func testBatch(prefix string, n int, bump float64) Batch {
	b := Batch{}
	for i := 1; i <= n; i++ {
		b.Libraries = append(b.Libraries, BatchLibrary{
			Name:   fmt.Sprintf("%s%02d", prefix, i),
			Tissue: "brain",
			Counts: map[string]float64{
				"AAAAAAAAAC": float64(10*i) + bump,
				"ACGTACGTAC": 3 + bump,
			},
		})
	}
	return b
}

// namesOf lists a corpus's library names in index order.
func namesOf(c *sage.Corpus) []string {
	names := make([]string, 0, len(c.Libraries))
	for _, l := range c.Libraries {
		names = append(names, l.Meta.Name)
	}
	return names
}

// sameNames reports whether a corpus holds exactly these names in order.
func sameNames(c *sage.Corpus, want []string) bool {
	got := namesOf(c)
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// copyDir replicates a store directory so each fault iteration starts
// from the same committed state.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copyDir %s -> %s: %v", src, dst, err)
	}
}

// seedStore commits one batch into a fresh store dir and returns the dir
// and the committed names.
func seedStore(t *testing.T) (string, []string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	st, _, _, err := Open(atomicio.OS{}, dir, noRetry())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st.Ingest(testBatch("old", 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gen == "" || len(rep.Appended) != 3 {
		t.Fatalf("seed commit incomplete: %+v", rep)
	}
	return dir, rep.Appended
}

// TestStoreCrashWalk enumerates every filesystem operation of one full
// Ingest — open, quarantine writes, per-library writes, the index write,
// the CURRENT flip and the generation sweep — and for a crash injected at
// each one asserts the reopened store holds either exactly the old corpus
// or exactly old+appended, never a torn mix; and that a clean retry of
// the same append always lands the new state.
func TestStoreCrashWalk(t *testing.T) {
	seed, oldNames := seedStore(t)
	// The appended batch carries one schema-violating submission, so the
	// walk also crosses the quarantine writes.
	b := testBatch("new", 2, 100)
	b.Libraries = append(b.Libraries, BatchLibrary{Name: "broken", Tissue: "", Counts: map[string]float64{"AAAAAAAAAC": 1}})
	newNames := append(append([]string(nil), oldNames...), "new01", "new02")

	// Count the operations of one full open+ingest.
	counter := iofault.New(atomicio.OS{}, iofault.Config{})
	{
		dir := filepath.Join(t.TempDir(), "store")
		copyDir(t, seed, dir)
		st, _, _, err := Open(counter, dir, noRetry())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	total := counter.Ops()
	// Open reads, quarantine writes, two library commits, the index and
	// CURRENT: a shallow count means the walk is not really enumerating
	// the append path.
	if total < 30 {
		t.Fatalf("implausible op count %d (trace %v)", total, counter.Trace())
	}

	sawOld, sawNew := false, false
	for crash := 1; crash <= total; crash++ {
		dir := filepath.Join(t.TempDir(), "store")
		copyDir(t, seed, dir)
		fsys := iofault.New(atomicio.OS{}, iofault.Config{CrashAt: crash})
		var ingErr error
		st, _, _, openErr := Open(fsys, dir, noRetry())
		if openErr == nil {
			_, ingErr = st.Ingest(b)
		}

		// Crash recovery: reopen on a clean filesystem.
		st2, corpus, problems, err := Open(atomicio.OS{}, dir, noRetry())
		if err != nil {
			t.Fatalf("crash at op %d: reopen failed: %v", crash, err)
		}
		if len(problems) > 0 {
			t.Fatalf("crash at op %d: reopen salvaged problems %v — commit exposed a torn artifact", crash, problems)
		}
		switch {
		case sameNames(corpus, oldNames):
			sawOld = true
			if openErr == nil && ingErr == nil {
				t.Errorf("crash at op %d: ingest reported success but old corpus reopened", crash)
			}
		case sameNames(corpus, newNames):
			sawNew = true
		default:
			t.Fatalf("crash at op %d: reopened neither old nor new corpus: %v", crash, namesOf(corpus))
		}

		// Retrying the whole append on the recovered store must converge
		// on old+appended (the duplicate-name rejections when the crash
		// landed after the commit are quarantine outcomes, not errors).
		if _, err := st2.Ingest(b); err != nil {
			t.Fatalf("crash at op %d: retry ingest failed: %v", crash, err)
		}
		if _, got, _, err := Open(atomicio.OS{}, dir, noRetry()); err != nil || !sameNames(got, newNames) {
			t.Fatalf("crash at op %d: retry did not restore the new corpus (%v)", crash, err)
		}
	}
	if !sawOld {
		t.Error("no crash point preserved the old corpus — commit happens too early")
	}
	if !sawNew {
		t.Error("no crash point yielded the new corpus — commit never became visible")
	}
}

// TestStoreTransientFaultWalk injects one recoverable fault (ENOSPC, then
// a short write) at every operation of the append path under the retrying
// policy: a single transient fault must always be absorbed — the ingest
// succeeds and the store holds old+appended.
func TestStoreTransientFaultWalk(t *testing.T) {
	seed, oldNames := seedStore(t)
	b := testBatch("new", 2, 100)
	newNames := append(append([]string(nil), oldNames...), "new01", "new02")

	counter := iofault.New(atomicio.OS{}, iofault.Config{})
	{
		dir := filepath.Join(t.TempDir(), "store")
		copyDir(t, seed, dir)
		st, _, _, err := Open(counter, dir, noRetry())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}

	absorbed := 0
	for _, kind := range []string{"enospc", "shortwrite"} {
		for op := 1; op <= counter.Ops(); op++ {
			cfg := iofault.Config{FailAt: op, FailErr: iofault.ErrNoSpace}
			if kind == "shortwrite" {
				cfg = iofault.Config{ShortWriteAt: op}
			}
			dir := filepath.Join(t.TempDir(), "store")
			copyDir(t, seed, dir)
			st, _, _, err := Open(iofault.New(atomicio.OS{}, cfg), dir, fastRetry())
			if err != nil {
				t.Fatalf("%s at op %d: open did not absorb the fault: %v", kind, op, err)
			}
			if _, err := st.Ingest(b); err != nil {
				t.Fatalf("%s at op %d: ingest did not absorb the fault: %v", kind, op, err)
			}
			// Faults consumed by the best-effort generation sweep are
			// invisible; everywhere else the store must count the retry.
			absorbed += st.Retries
			if got, err := sage.LoadCorpus(dir); err != nil || !sameNames(got, newNames) {
				t.Fatalf("%s at op %d: store does not hold old+appended (%v)", kind, op, err)
			}
		}
	}
	if absorbed == 0 {
		t.Error("no fault was ever absorbed by a retry — the walk tested nothing")
	}
}

// TestStoreCorruptionFailsFast pins the taxonomy's terminal side: a store
// whose CURRENT index frame is corrupt must fail open immediately, without
// burning retry attempts on damage a retry cannot fix.
func TestStoreCorruptionFailsFast(t *testing.T) {
	seed, _ := seedStore(t)
	gen, err := atomicio.CurrentGen(atomicio.OS{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	idx := filepath.Join(seed, gen, "sageName.txt")
	data, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the frame's checksum no longer matches.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(idx, data, 0o644); err != nil {
		t.Fatal(err)
	}

	attempts := 0
	p := fastRetry()
	p.OnRetry = func(string, int, error) { attempts++ }
	_, _, _, err = Open(atomicio.OS{}, seed, p)
	if err == nil {
		t.Fatal("corrupt index opened cleanly")
	}
	if !errors.Is(err, atomicio.ErrChecksum) {
		t.Fatalf("corruption surfaced as %v, want ErrChecksum", err)
	}
	if Classify(err) != ClassCorrupt {
		t.Errorf("Classify(%v) = %v, want corrupt", err, Classify(err))
	}
	if attempts != 0 {
		t.Errorf("corruption was retried %d times; terminal errors must fail fast", attempts)
	}
}

// TestStoreQuarantine screens a batch carrying every schema-violation
// class and asserts the rejects land in a numbered quarantine dir with a
// report and resubmittable payloads while the valid remainder commits.
func TestStoreQuarantine(t *testing.T) {
	dir, oldNames := seedStore(t)
	st, _, _, err := Open(atomicio.OS{}, dir, noRetry())
	if err != nil {
		t.Fatal(err)
	}

	b := testBatch("ok", 2, 50)
	bad := []BatchLibrary{
		{Name: "", Tissue: "brain", Counts: map[string]float64{"AAAAAAAAAC": 1}},
		{Name: "slash/y", Tissue: "brain", Counts: map[string]float64{"AAAAAAAAAC": 1}},
		{Name: oldNames[0], Tissue: "brain", Counts: map[string]float64{"AAAAAAAAAC": 1}},
		{Name: "ok01", Tissue: "brain", Counts: map[string]float64{"AAAAAAAAAC": 1}},
		{Name: "noTissue", Tissue: "", Counts: map[string]float64{"AAAAAAAAAC": 1}},
		{Name: "noCounts", Tissue: "brain", Counts: nil},
		{Name: "badTag", Tissue: "brain", Counts: map[string]float64{"XYZ": 1}},
		{Name: "negCount", Tissue: "brain", Counts: map[string]float64{"AAAAAAAAAC": -2}},
	}
	b.Libraries = append(b.Libraries, bad...)

	rep, err := st.Ingest(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Appended) != 2 || len(rep.Rejected) != len(bad) {
		t.Fatalf("appended %v, rejected %d, want 2 and %d", rep.Appended, len(rep.Rejected), len(bad))
	}
	if rep.QuarantineDir == "" {
		t.Fatal("no quarantine dir reported")
	}
	report, err := os.ReadFile(filepath.Join(rep.QuarantineDir, "report.txt"))
	if err != nil {
		t.Fatalf("quarantine report missing: %v", err)
	}
	for _, want := range []string{"already in the corpus", "duplicate name within the batch", "empty tissue", "bad tag", "invalid count"} {
		if !strings.Contains(string(report), want) {
			t.Errorf("quarantine report lacks %q:\n%s", want, report)
		}
	}
	// Each named reject's payload must round-trip through the wire codec
	// so an operator can fix and resubmit it.
	payloads, err := filepath.Glob(filepath.Join(rep.QuarantineDir, "lib-*.json"))
	if err != nil || len(payloads) == 0 {
		t.Fatalf("no quarantined payloads found (%v)", err)
	}
	for _, p := range payloads {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeBatch(f); err != nil {
			t.Errorf("quarantined payload %s does not decode: %v", p, err)
		}
		f.Close()
	}

	// Re-ingesting the same batch is all rejections now — and commits no
	// generation.
	gen := st.Gen()
	rep2, err := st.Ingest(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Gen != "" || len(rep2.Appended) != 0 {
		t.Fatalf("replayed batch committed %q", rep2.Gen)
	}
	if st.Gen() != gen {
		t.Fatalf("generation moved from %q to %q on an all-rejected batch", gen, st.Gen())
	}
	if rep2.QuarantineDir == rep.QuarantineDir {
		t.Error("second quarantine reused the first dir instead of a fresh number")
	}
}

// TestStoreMultiGenSalvage corrupts a library file in an OLD generation of
// a three-generation store and asserts the salvage report names the exact
// generation dir holding the damage, while the rest of the corpus loads
// and the damaged name stays reserved.
func TestStoreMultiGenSalvage(t *testing.T) {
	dir, _ := seedStore(t) // gen-000001: old01..old03
	st, _, _, err := Open(atomicio.OS{}, dir, noRetry())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Ingest(testBatch("mid", 2, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Ingest(testBatch("new", 2, 20)); err != nil {
		t.Fatal(err)
	}

	// Damage one library the FIRST generation committed.
	victim := filepath.Join(dir, "gen-000001", "old02.sage")
	if err := os.WriteFile(victim, []byte("garbage, not a framed artifact"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, corpus, problems, err := Open(atomicio.OS{}, dir, noRetry())
	if err != nil {
		t.Fatalf("salvage open failed: %v", err)
	}
	if len(problems) != 1 {
		t.Fatalf("problems = %v, want exactly the damaged library", problems)
	}
	if problems[0].Gen != "gen-000001" {
		t.Errorf("Problem.Gen = %q, want gen-000001 (the generation that committed the damage)", problems[0].Gen)
	}
	if !strings.Contains(problems[0].Path, "old02") {
		t.Errorf("Problem.Path = %q does not name the damaged library", problems[0].Path)
	}
	if problems[0].Phase != sage.PhaseRead {
		t.Errorf("Problem.Phase = %q, want %q (framing damage is read-phase)", problems[0].Phase, sage.PhaseRead)
	}
	want := []string{"old01", "old03", "mid01", "mid02", "new01", "new02"}
	got := namesOf(corpus)
	if len(got) != len(want) {
		t.Fatalf("salvaged corpus %v, want %v", got, want)
	}
	for _, name := range got {
		if name == "old02" {
			t.Error("damaged library leaked into the salvaged corpus")
		}
	}
	// The damaged name stays reserved: resubmitting it is a rejection,
	// not a silent shadow of the broken artifact.
	if !st2.Names()["old02"] {
		t.Error("damaged library's name was not reserved")
	}
	rep, err := st2.Ingest(Batch{Libraries: []BatchLibrary{{Name: "old02", Tissue: "brain", Counts: map[string]float64{"AAAAAAAAAC": 5}}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rejected) != 1 {
		t.Errorf("resubmission of a damaged name was not rejected: %+v", rep)
	}
}

// TestRetryPolicyTaxonomy pins Do's behavior per class: transient errors
// retry with backoff until the budget runs out, terminal errors return on
// the first attempt.
func TestRetryPolicyTaxonomy(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 15 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}

	calls := 0
	err := p.Do("step", func() error { calls++; return errors.New("flaky") })
	if err == nil || calls != 4 {
		t.Fatalf("transient error: %d calls (err %v), want 4", calls, err)
	}
	if len(slept) != 3 || slept[0] != 10*time.Millisecond || slept[1] != 15*time.Millisecond || slept[2] != 15*time.Millisecond {
		t.Errorf("backoff schedule %v, want [10ms 15ms 15ms] (doubling, capped)", slept)
	}

	calls = 0
	err = p.Do("step", func() error { calls++; return fmt.Errorf("read: %w", atomicio.ErrChecksum) })
	if err == nil || calls != 1 {
		t.Fatalf("corrupt error: %d calls, want fail-fast 1", calls)
	}
	calls = 0
	err = p.Do("step", func() error { calls++; return &SchemaError{Reason: "nope"} })
	if err == nil || calls != 1 {
		t.Fatalf("schema error: %d calls, want fail-fast 1", calls)
	}

	calls = 0
	if err := p.Do("step", func() error {
		calls++
		if calls == 1 {
			return iofault.ErrInjected
		}
		return nil
	}); err != nil {
		t.Fatalf("recoverable fault not absorbed: %v", err)
	}
}

// TestSalvageDecodePhase damages a library *inside* the atomicio frame —
// valid checksum, unparsable payload — and asserts the problem reports
// the decode phase: the writer produced the damage before the commit
// boundary, it did not rot on disk.
func TestSalvageDecodePhase(t *testing.T) {
	dir, _ := seedStore(t)
	victim := filepath.Join(dir, "gen-000001", "old02.sage")
	err := atomicio.WriteFileFunc(atomicio.OS{}, victim, func(w io.Writer) error {
		_, err := io.WriteString(w, "framed correctly, but not a library\n")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	_, corpus, problems, err := Open(atomicio.OS{}, dir, noRetry())
	if err != nil {
		t.Fatalf("salvage open failed: %v", err)
	}
	if len(problems) != 1 {
		t.Fatalf("problems = %v, want exactly the damaged library", problems)
	}
	p := problems[0]
	if p.Phase != sage.PhaseDecode {
		t.Errorf("Problem.Phase = %q, want %q (checksum verified, payload did not parse)", p.Phase, sage.PhaseDecode)
	}
	if p.Gen != "gen-000001" || !strings.Contains(p.Path, "old02") {
		t.Errorf("Problem = %v, want old02 blamed on gen-000001", p)
	}
	for _, part := range []string{"old02", "gen-000001", "decode phase"} {
		if !strings.Contains(p.String(), part) {
			t.Errorf("Problem.String() = %q, missing %q (operators triage from this line)", p.String(), part)
		}
	}
	if sameNames(corpus, []string{"old01", "old02", "old03"}) {
		t.Error("damaged library leaked into the salvaged corpus")
	}
}

// TestQuarantinePayloadResubmission pins the operator loop the quarantine
// exists for: a rejected submission's payload must round-trip through
// DecodeBatch byte-faithfully, so fixing the recorded violation and
// resubmitting the decoded batch lands the library in the corpus.
func TestQuarantinePayloadResubmission(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, _, _, err := Open(atomicio.OS{}, dir, noRetry())
	if err != nil {
		t.Fatal(err)
	}
	broken := BatchLibrary{Name: "qlib", Counts: map[string]float64{"AAAAAAAAAC": 7, "ACGTACGTAC": 3}}
	b := testBatch("good", 1, 0)
	b.Libraries = append(b.Libraries, broken)

	rep, err := st.Ingest(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Appended) != 1 || rep.Appended[0] != "good01" {
		t.Fatalf("appended %v, want the valid remainder [good01]", rep.Appended)
	}
	if len(rep.Rejected) != 1 || rep.QuarantineDir == "" {
		t.Fatalf("report %+v, want one quarantined rejection", rep)
	}

	// The quarantined payload is itself an atomicio-framed batch document.
	raw, err := atomicio.ReadFile(atomicio.OS{}, filepath.Join(rep.QuarantineDir, "lib-001.json"))
	if err != nil {
		t.Fatalf("reading quarantined payload: %v", err)
	}
	resub, err := DecodeBatch(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("quarantined payload does not decode as a batch: %v", err)
	}
	if len(resub.Libraries) != 1 || !reflect.DeepEqual(resub.Libraries[0], broken) {
		t.Fatalf("round-tripped payload %+v, want the submission %+v", resub.Libraries, broken)
	}

	// Operator fix: supply the missing tissue, resubmit the decoded batch.
	resub.Libraries[0].Tissue = "liver"
	rep2, err := st.Ingest(resub)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Appended) != 1 || rep2.Appended[0] != "qlib" || len(rep2.Rejected) != 0 {
		t.Fatalf("resubmission report %+v, want qlib appended cleanly", rep2)
	}

	// Reopen from disk: both libraries live, original counts intact.
	_, corpus, problems, err := Open(atomicio.OS{}, dir, noRetry())
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 || !sameNames(corpus, []string{"good01", "qlib"}) {
		t.Fatalf("reopened corpus %v (problems %v), want [good01 qlib]", namesOf(corpus), problems)
	}
	for _, l := range corpus.Libraries {
		if l.Meta.Name != "qlib" {
			continue
		}
		tag, _ := sage.ParseTag("AAAAAAAAAC")
		if l.Counts[tag] != 7 {
			t.Errorf("resubmitted count = %g, want 7 (payload fidelity)", l.Counts[tag])
		}
	}
}

package ingest

import (
	"context"
	"fmt"
	"math"
	"sort"

	"gea/internal/clean"
	"gea/internal/columnar"
	"gea/internal/core"
	"gea/internal/exec"
	"gea/internal/indexsel"
	"gea/internal/interval"
	"gea/internal/sage"
)

// DefaultIndexTags is how many top-entropy columns carry sorted indexes
// when ViewOptions.IndexTags is zero.
const DefaultIndexTags = 32

// ViewOptions configures the maintained view.
type ViewOptions struct {
	// Clean carries the cleaning thresholds; the zero value means the
	// thesis defaults (minimum tolerance 1, normalize to 300,000).
	Clean clean.Options
	// IndexTags is the number of top-entropy columns to keep sorted
	// indexes on; 0 means DefaultIndexTags, negative disables indexing.
	IndexTags int
	// SumyName names the maintained aggregate table; "" means "SAGE".
	SumyName string
}

func (o ViewOptions) normalized() (ViewOptions, error) {
	if o.Clean.MinTolerance == 0 && o.Clean.ScaleTo == 0 {
		o.Clean = clean.DefaultOptions()
	}
	if o.Clean.MinTolerance < 0 {
		return o, fmt.Errorf("ingest: negative MinTolerance %v", o.Clean.MinTolerance)
	}
	if o.Clean.ScaleTo == 0 {
		o.Clean.ScaleTo = clean.NormalTotal
	}
	if o.IndexTags == 0 {
		o.IndexTags = DefaultIndexTags
	}
	if o.SumyName == "" {
		o.SumyName = "SAGE"
	}
	return o, nil
}

// colMoments is the running per-column aggregate state: the exact
// left-to-right partial sums core.AggregateWith's kernel (stats.MeanStd
// plus a min/max scan) accumulates. Appending rows extends the same float
// addition sequence a fresh scan would perform, so mean/std/range derived
// from folded moments are bit-identical to a from-scratch aggregate.
type colMoments struct {
	sum, sumsq, lo, hi float64
}

// colEntropy is the running per-column histogram state behind
// stats.Entropy: integer bin counts over [lo, hi] at indexsel.EntropyBins
// resolution. While appended values stay inside [lo, hi] the bin of each
// old value is unchanged (same min, same width), so counts are maintained
// by increment; a value extending the range changes every bin boundary
// and forces a recount.
type colEntropy struct {
	counts []int
	lo, hi float64
}

// View is one immutable corpus generation plus the running state that
// lets the next generation be derived incrementally. Apply never mutates
// its receiver: readers holding a View see one consistent generation for
// as long as they keep the pointer.
type View struct {
	opts ViewOptions

	// Raw is the screened, uncleaned corpus in append order. It is
	// retained because a batch can promote a tag into the keep set,
	// which rescales every old library that expresses it — those
	// libraries re-clean from their raw counts.
	Raw *sage.Corpus
	// Cleaned is the deterministically cleaned corpus.
	Cleaned *sage.Corpus
	// Data is the dense dataset over the kept-tag universe.
	Data *sage.Dataset
	// Report mirrors clean.Report for the whole corpus.
	Report *clean.Report
	// Sumy is the maintained aggregate table over the full dataset,
	// bit-identical to core.Aggregate over FullEnum(Data).
	Sumy *core.Sumy
	// Ranked is the maintained entropy ranking, bit-identical to
	// indexsel.RankByEntropy(Data).
	Ranked []indexsel.RankedTag
	// Indexes are sorted column indexes over the top IndexTags entropy
	// columns, bit-identical to core.BuildTagIndexes on those columns.
	Indexes *core.TagIndexes
	// Blocks is the columnar view over Data, maintained incrementally:
	// sealed blocks untouched by an append are reused (remapped through
	// the tag dictionary) rather than re-encoded. DeepEqual-identical to
	// columnar.Build(Data) and adopted as Data's memoised view, so the
	// algebra's columnar engine picks it up without a rebuild.
	Blocks *columnar.Store

	maxCount map[sage.TagID]float64
	keep     map[sage.TagID]bool
	moments  map[sage.TagID]colMoments
	entropy  map[sage.TagID]*colEntropy
	sorted   map[sage.TagID][]core.IndexEntry
}

// Rebuild builds the view from scratch over raw.
func Rebuild(raw *sage.Corpus, opts ViewOptions) (*View, error) {
	v, _, err := RebuildWith(exec.Background(), raw, opts)
	return v, err
}

// RebuildCtx is Rebuild under execution governance. Budget exhaustion is
// an error, not a partial view — a half-maintained view would break the
// generation contract.
func RebuildCtx(ctx context.Context, raw *sage.Corpus, opts ViewOptions, lim exec.Limits) (*View, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var v *View
	err := exec.Guard("ingest.Rebuild", "view", func() error {
		var err error
		v, _, err = RebuildWith(c, raw, opts)
		return err
	})
	if err != nil {
		v = nil
	}
	return v, c.Snapshot(false), err
}

// RebuildWith is the metered implementation; one work unit is one library
// cleaned or one column of derived state computed.
func RebuildWith(c *exec.Ctl, raw *sage.Corpus, opts ViewOptions) (_ *View, partial bool, err error) {
	sp := c.StartSpan("ingest.Rebuild")
	sp.SetInput("%d libraries", len(raw.Libraries))
	defer c.EndSpan(sp, &partial, &err)

	nopts, err := opts.normalized()
	if err != nil {
		return nil, false, err
	}
	v := &View{
		opts:     nopts,
		Raw:      &sage.Corpus{Libraries: append([]*sage.Library(nil), raw.Libraries...)},
		maxCount: map[sage.TagID]float64{},
		keep:     map[sage.TagID]bool{},
		moments:  map[sage.TagID]colMoments{},
		entropy:  map[sage.TagID]*colEntropy{},
		sorted:   map[sage.TagID][]core.IndexEntry{},
	}
	for _, l := range v.Raw.Libraries {
		if err := c.Point(1); err != nil {
			return nil, false, err
		}
		updateMax(v.maxCount, l)
	}
	//lint:gea ctlcharge -- keep-set derivation is O(tags) map bookkeeping between the charged library and column loops
	for t, m := range v.maxCount {
		if m > nopts.Clean.MinTolerance {
			v.keep[t] = true
		}
	}
	v.Report = &clean.Report{
		UniqueTagsBefore: len(v.maxCount),
		UniqueTagsAfter:  len(v.keep),
	}
	v.Cleaned = &sage.Corpus{}
	for i, l := range v.Raw.Libraries {
		if err := c.Point(1); err != nil {
			return nil, false, err
		}
		nl, lr := cleanOne(l, i+1, v.keep, nopts.Clean.ScaleTo)
		v.Cleaned.Libraries = append(v.Cleaned.Libraries, nl)
		v.Report.Libraries = append(v.Report.Libraries, lr)
	}
	v.Data = sage.BuildWithTags(v.Cleaned, sortedTags(v.keep))
	v.Blocks = columnar.Build(v.Data, columnar.Config{})
	columnar.Adopt(v.Data, v.Blocks)
	if err := v.deriveColumns(c, nil, 0, nil); err != nil {
		return nil, false, err
	}
	return v, false, nil
}

// Apply folds a screened batch into the view, returning the next
// generation's view. The receiver is left untouched.
func (v *View) Apply(libs []*sage.Library) (*View, error) {
	nv, _, err := v.ApplyWith(exec.Background(), libs)
	return nv, err
}

// ApplyCtx is Apply under execution governance; like RebuildCtx, budget
// exhaustion is an error rather than a partial view.
func (v *View) ApplyCtx(ctx context.Context, libs []*sage.Library, lim exec.Limits) (*View, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var nv *View
	err := exec.Guard("ingest.Apply", "view", func() error {
		var err error
		nv, _, err = v.ApplyWith(c, libs)
		return err
	})
	if err != nil {
		nv = nil
	}
	return nv, c.Snapshot(false), err
}

// ApplyWith is the metered incremental maintenance kernel. The work it
// avoids relative to RebuildWith is the point of the package: libraries
// whose cleaned values cannot have changed are reused by pointer, and
// only dirty or new columns are recomputed from scratch — clean columns
// fold just the appended rows into their running state. The result is
// nevertheless bit-identical to RebuildWith over the concatenated corpus
// (pinned by the equivalence suite).
func (v *View) ApplyWith(c *exec.Ctl, libs []*sage.Library) (_ *View, partial bool, err error) {
	sp := c.StartSpan("ingest.Apply")
	sp.SetInput("%d libraries onto %d (%d tags)", len(libs), len(v.Raw.Libraries), len(v.keep))
	defer c.EndSpan(sp, &partial, &err)
	if len(libs) == 0 {
		return v, false, nil
	}
	oldN := len(v.Raw.Libraries)

	nv := &View{
		opts:     v.opts,
		Raw:      &sage.Corpus{Libraries: append(append([]*sage.Library(nil), v.Raw.Libraries...), libs...)},
		maxCount: make(map[sage.TagID]float64, len(v.maxCount)),
		keep:     make(map[sage.TagID]bool, len(v.keep)),
		moments:  map[sage.TagID]colMoments{},
		entropy:  map[sage.TagID]*colEntropy{},
		sorted:   map[sage.TagID][]core.IndexEntry{},
	}
	//lint:gea ctlcharge -- copy-on-write map clone, O(tags) bookkeeping
	for t, m := range v.maxCount {
		nv.maxCount[t] = m
	}
	//lint:gea ctlcharge -- copy-on-write map clone, O(tags) bookkeeping
	for t := range v.keep {
		nv.keep[t] = true
	}
	for _, l := range libs {
		if err := c.Point(1); err != nil {
			return nil, false, err
		}
		updateMax(nv.maxCount, l)
	}
	// Tags the batch promoted into the keep set. Each one rescales every
	// old library that expresses it (the tag re-enters that library's
	// normalization total), so those libraries re-clean from raw counts
	// and every column they express becomes dirty.
	newKept := map[sage.TagID]bool{}
	//lint:gea ctlcharge -- keep-set delta derivation is O(tags) map bookkeeping
	for t, m := range nv.maxCount {
		if !nv.keep[t] && m > nv.opts.Clean.MinTolerance {
			nv.keep[t] = true
			newKept[t] = true
		}
	}
	affected := map[int]bool{}
	//lint:gea ctlcharge -- O(libraries x promoted tags) membership probes; the re-clean of each affected library below is the charged work
	for i, l := range v.Raw.Libraries {
		for t := range newKept {
			if l.Counts[t] > 0 {
				affected[i] = true
				break
			}
		}
	}
	dirty := map[sage.TagID]bool{}
	//lint:gea ctlcharge -- dirty-column marking over the (usually few) affected libraries; the column recomputes it triggers are charged in deriveColumns
	for i := range affected {
		for t, cnt := range v.Raw.Libraries[i].Counts {
			if cnt > 0 && nv.keep[t] && !newKept[t] {
				dirty[t] = true
			}
		}
	}

	nv.Report = &clean.Report{
		UniqueTagsBefore: len(nv.maxCount),
		UniqueTagsAfter:  len(nv.keep),
		Libraries:        append([]clean.LibraryReport(nil), v.Report.Libraries...),
	}
	nv.Cleaned = &sage.Corpus{Libraries: append([]*sage.Library(nil), v.Cleaned.Libraries...)}
	for i := range v.Raw.Libraries {
		if !affected[i] {
			continue
		}
		if err := c.Point(1); err != nil {
			return nil, false, err
		}
		nl, lr := cleanOne(v.Raw.Libraries[i], i+1, nv.keep, nv.opts.Clean.ScaleTo)
		nv.Cleaned.Libraries[i] = nl
		nv.Report.Libraries[i] = lr
	}
	for k, l := range libs {
		if err := c.Point(1); err != nil {
			return nil, false, err
		}
		nl, lr := cleanOne(l, oldN+k+1, nv.keep, nv.opts.Clean.ScaleTo)
		nv.Cleaned.Libraries = append(nv.Cleaned.Libraries, nl)
		nv.Report.Libraries = append(nv.Report.Libraries, lr)
	}
	nv.Data = sage.BuildWithTags(nv.Cleaned, sortedTags(nv.keep))
	// Advance the columnar view: re-cleaned old rows are the only rows
	// whose contents can differ from prev; rows at or past oldN are
	// implicitly new to Advance.
	nv.Blocks = columnar.Advance(v.Blocks, nv.Data, func(row int) bool {
		return row >= oldN || affected[row]
	}, columnar.Config{})
	columnar.Adopt(nv.Data, nv.Blocks)

	fresh := map[sage.TagID]bool{}
	//lint:gea ctlcharge -- set union, O(changed tags) bookkeeping
	for t := range newKept {
		fresh[t] = true
	}
	//lint:gea ctlcharge -- set union, O(changed tags) bookkeeping
	for t := range dirty {
		fresh[t] = true
	}
	if err := nv.deriveColumns(c, v, oldN, fresh); err != nil {
		return nil, false, err
	}
	return nv, false, nil
}

// deriveColumns (re)computes the per-column state and assembles the SUMY
// table, entropy ranking and sorted indexes. prev == nil means build
// everything from scratch; otherwise columns absent from fresh reuse
// prev's running state, folding in only rows [oldN, n).
func (nv *View) deriveColumns(c *exec.Ctl, prev *View, oldN int, fresh map[sage.TagID]bool) error {
	d := nv.Data
	n := d.NumLibraries()
	entropies := make([]float64, d.NumTags())
	sumyRows := make([]core.SumyRow, d.NumTags())
	col := make([]float64, n)
	for j, t := range d.Tags {
		if err := c.Point(1); err != nil {
			return err
		}
		for i := range d.Expr {
			col[i] = d.Expr[i][j]
		}
		var (
			m    colMoments
			e    *colEntropy
			ok   bool
			seed colMoments
		)
		if prev != nil && !fresh[t] {
			if seed, ok = prev.moments[t]; ok {
				m = foldMoments(seed, col[oldN:])
				e = foldEntropy(prev.entropy[t], col, oldN)
			}
		}
		if !ok {
			m = scanMoments(col)
			e = scanEntropy(col)
		}
		nv.moments[t] = m
		nv.entropy[t] = e
		entropies[j] = entropyOf(e, n)
		sumyRows[j] = sumyRowOf(t, m, n)
	}
	nv.Sumy = core.NewSumy(nv.opts.SumyName, sumyRows, nil)
	ranked, err := indexsel.RankFromEntropies(d.Tags, entropies)
	if err != nil {
		return err
	}
	nv.Ranked = ranked

	m := nv.opts.IndexTags
	if m < 0 {
		m = 0
	}
	if m > len(ranked) {
		m = len(ranked)
	}
	byCol := make(map[int][]core.IndexEntry, m)
	for _, rt := range ranked[:m] {
		if err := c.Point(1); err != nil {
			return err
		}
		j := rt.Col
		var run []core.IndexEntry
		if prev != nil && !fresh[rt.Tag] {
			if old, ok := prev.sorted[rt.Tag]; ok {
				run = mergeRun(old, d, j, oldN)
			}
		}
		if run == nil {
			run = sortRun(d, j)
		}
		nv.sorted[rt.Tag] = run
		byCol[j] = run
	}
	ti, err := core.TagIndexesFromSorted(d, byCol)
	if err != nil {
		return err
	}
	nv.Indexes = ti
	return nil
}

// updateMax folds one raw library into the per-tag maximum.
func updateMax(maxCount map[sage.TagID]float64, l *sage.Library) {
	for t, cnt := range l.Counts {
		if cnt > maxCount[t] {
			maxCount[t] = cnt
		}
	}
}

// sortedTags returns the keep set ascending — the dataset tag universe.
func sortedTags(keep map[sage.TagID]bool) []sage.TagID {
	tags := make([]sage.TagID, 0, len(keep))
	for t := range keep {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(a, b int) bool { return tags[a] < tags[b] })
	return tags
}

// sortedTotal sums a library's counts in ascending tag order. Unlike
// Library.Total (which follows map iteration order), the float addition
// sequence is fixed, so repeated runs — and the incremental and rebuild
// paths — produce the identical sum to the last ulp.
func sortedTotal(l *sage.Library) float64 {
	var sum float64
	for _, t := range l.Tags() {
		sum += l.Counts[t]
	}
	return sum
}

// cleanOne mirrors one library's pass through clean.Clean — drop tags
// outside keep, then normalize to scaleTo — but with deterministic
// (sorted-order) totals and a position-assigned ID, so any path that
// cleans the same raw library against the same keep set produces the
// bit-identical cleaned library and report row.
func cleanOne(raw *sage.Library, id int, keep map[sage.TagID]bool, scaleTo float64) (*sage.Library, clean.LibraryReport) {
	nl := sage.NewLibrary(raw.Meta)
	before := sortedTotal(raw)
	for t, cnt := range raw.Counts {
		if keep[t] {
			nl.Counts[t] = cnt
		}
	}
	after := sortedTotal(nl)
	lr := clean.LibraryReport{
		Name:         raw.Meta.Name,
		TotalBefore:  before,
		TotalAfter:   after,
		UniqueBefore: len(raw.Counts),
		UniqueAfter:  len(nl.Counts),
		ScaleFactor:  1,
	}
	if before > 0 {
		lr.RemovedFraction = 1 - after/before
	}
	if scaleTo > 0 && after > 0 {
		lr.ScaleFactor = scaleTo / after
		nl.Scale(lr.ScaleFactor)
	}
	nl.Meta.ID = id
	nl.Meta.TotalTags = sortedTotal(nl)
	nl.Meta.UniqueTags = len(nl.Counts)
	return nl, lr
}

// scanMoments runs the exact accumulation of core.AggregateWith's kernel
// over one full column: min/max from the first value, then stats.MeanStd's
// left-to-right sum and sum-of-squares.
func scanMoments(col []float64) colMoments {
	if len(col) == 0 {
		return colMoments{}
	}
	m := colMoments{lo: col[0], hi: col[0]}
	for _, x := range col {
		m.sum += x
		m.sumsq += x * x
		if x < m.lo {
			m.lo = x
		}
		if x > m.hi {
			m.hi = x
		}
	}
	return m
}

// foldMoments extends the running moments with appended values. The
// addition sequence (old partial sum, then new values in row order) is
// exactly the sequence a fresh scan over the grown column performs.
func foldMoments(m colMoments, appended []float64) colMoments {
	for _, x := range appended {
		m.sum += x
		m.sumsq += x * x
		if x < m.lo {
			m.lo = x
		}
		if x > m.hi {
			m.hi = x
		}
	}
	return m
}

// sumyRowOf derives the aggregate row from moments, mirroring
// stats.MeanStd's mean/variance expressions term for term.
func sumyRowOf(t sage.TagID, m colMoments, n int) core.SumyRow {
	fn := float64(n)
	mean := m.sum / fn
	va := m.sumsq/fn - mean*mean
	if va < 0 {
		va = 0
	}
	return core.SumyRow{
		Tag:   t,
		Range: interval.Interval{Min: m.lo, Max: m.hi},
		Mean:  mean,
		Std:   math.Sqrt(va),
	}
}

// scanEntropy builds the histogram state of stats.Entropy for one column:
// min/max, then bin counts at width (max-min)/bins.
func scanEntropy(col []float64) *colEntropy {
	e := &colEntropy{counts: make([]int, indexsel.EntropyBins)}
	if len(col) == 0 {
		return e
	}
	e.lo, e.hi = col[0], col[0]
	for _, x := range col[1:] {
		if x < e.lo {
			e.lo = x
		}
		if x > e.hi {
			e.hi = x
		}
	}
	if e.lo == e.hi {
		return e
	}
	width := (e.hi - e.lo) / float64(indexsel.EntropyBins)
	for _, x := range col {
		b := int((x - e.lo) / width)
		if b >= indexsel.EntropyBins {
			b = indexsel.EntropyBins - 1
		}
		e.counts[b]++
	}
	return e
}

// foldEntropy extends the histogram with rows [oldN, len(col)). While the
// appended values stay inside [lo, hi], every old value keeps its bin
// (same origin, same width) and the new values bin by the identical
// formula, so incrementing is exact; a value outside the range moves the
// bin boundaries for everyone, and the column is recounted.
func foldEntropy(e *colEntropy, col []float64, oldN int) *colEntropy {
	if e == nil || oldN == 0 || e.lo == e.hi {
		return scanEntropy(col)
	}
	for _, x := range col[oldN:] {
		if x < e.lo || x > e.hi {
			return scanEntropy(col)
		}
	}
	ne := &colEntropy{counts: append([]int(nil), e.counts...), lo: e.lo, hi: e.hi}
	width := (ne.hi - ne.lo) / float64(indexsel.EntropyBins)
	for _, x := range col[oldN:] {
		b := int((x - ne.lo) / width)
		if b >= indexsel.EntropyBins {
			b = indexsel.EntropyBins - 1
		}
		ne.counts[b]++
	}
	return ne
}

// entropyOf evaluates the histogram exactly as stats.Entropy does: bins
// in order, h -= p·log2(p).
func entropyOf(e *colEntropy, n int) float64 {
	if n == 0 || e.lo == e.hi {
		return 0
	}
	fn := float64(n)
	var h float64
	for _, c := range e.counts {
		if c == 0 {
			continue
		}
		p := float64(c) / fn
		h -= p * math.Log2(p)
	}
	return h
}

// sortRun builds one column's sorted index run exactly as
// core.BuildTagIndexes does: entries in row order, stable-sorted by value,
// yielding the unique (value, row)-lexicographic order.
func sortRun(d *sage.Dataset, j int) []core.IndexEntry {
	entries := make([]core.IndexEntry, d.NumLibraries())
	for i := range d.Expr {
		entries[i] = core.IndexEntry{V: d.Expr[i][j], Row: i}
	}
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].V < entries[b].V })
	return entries
}

// mergeRun extends a clean column's sorted run with the appended rows.
// Both inputs are (value, row)-lex ordered — the old run by invariant,
// the appended entries by stable-sorting row-ascending input — and every
// appended row index exceeds every old one, so a (value, row)-lex merge
// reproduces exactly what sortRun over the grown column would emit: that
// order is unique.
func mergeRun(old []core.IndexEntry, d *sage.Dataset, j, oldN int) []core.IndexEntry {
	n := d.NumLibraries()
	add := make([]core.IndexEntry, 0, n-oldN)
	for i := oldN; i < n; i++ {
		add = append(add, core.IndexEntry{V: d.Expr[i][j], Row: i})
	}
	sort.SliceStable(add, func(a, b int) bool { return add[a].V < add[b].V })
	out := make([]core.IndexEntry, 0, n)
	a, b := 0, 0
	for a < len(old) && b < len(add) {
		x, y := old[a], add[b]
		if x.V < y.V || (x.V == y.V && x.Row < y.Row) {
			out = append(out, x)
			a++
		} else {
			out = append(out, y)
			b++
		}
	}
	out = append(out, old[a:]...)
	out = append(out, add[b:]...)
	return out
}

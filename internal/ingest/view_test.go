package ingest

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"gea/internal/clean"
	"gea/internal/columnar"
	"gea/internal/core"
	"gea/internal/indexsel"
	"gea/internal/sage"
	"gea/internal/sagegen"
)

// emit splits the small synthetic corpus into n append batches and also
// returns the whole corpus they concatenate to.
func emit(t *testing.T, n int) ([][]*sage.Library, *sage.Corpus) {
	t.Helper()
	batches, res, err := sagegen.EmitBatches(sagegen.SmallConfig(), n)
	if err != nil {
		t.Fatal(err)
	}
	return batches, res.Corpus
}

// viewsEqual asserts every externally visible surface of two views is
// deeply equal: the dataset, the cleaning report, the SUMY table, the
// entropy ranking and each sorted column index.
func viewsEqual(t *testing.T, label string, got, want *View) {
	t.Helper()
	if !reflect.DeepEqual(got.Data, want.Data) {
		t.Fatalf("%s: datasets differ", label)
	}
	if !reflect.DeepEqual(got.Report, want.Report) {
		t.Fatalf("%s: cleaning reports differ", label)
	}
	if !reflect.DeepEqual(got.Sumy, want.Sumy) {
		t.Fatalf("%s: SUMY tables differ", label)
	}
	if !reflect.DeepEqual(got.Ranked, want.Ranked) {
		t.Fatalf("%s: entropy rankings differ", label)
	}
	if !reflect.DeepEqual(got.Blocks, want.Blocks) {
		t.Fatalf("%s: columnar stores differ", label)
	}
	gc, wc := got.Indexes.Columns(), want.Indexes.Columns()
	if !reflect.DeepEqual(gc, wc) {
		t.Fatalf("%s: indexed column sets differ: %v vs %v", label, gc, wc)
	}
	for _, c := range wc {
		if !reflect.DeepEqual(got.Indexes.Entries(c), want.Indexes.Entries(c)) {
			t.Fatalf("%s: sorted index for column %d differs", label, c)
		}
	}
}

// TestViewIncrementalEqualsRebuild is the equivalence suite the package
// contract names: at several batch splits, Rebuild over the first batch
// followed by Apply per remaining batch must be bit-identical to one
// Rebuild over the concatenated corpus. reflect.DeepEqual on float64
// fields is exact equality — any reordered float addition would fail it.
func TestViewIncrementalEqualsRebuild(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		batches, corpus := emit(t, n)
		full, err := Rebuild(corpus, ViewOptions{})
		if err != nil {
			t.Fatal(err)
		}
		inc, err := Rebuild(&sage.Corpus{Libraries: batches[0]}, ViewOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[1:] {
			if inc, err = inc.Apply(b); err != nil {
				t.Fatal(err)
			}
		}
		viewsEqual(t, fmt.Sprintf("split %d", n), inc, full)
	}
}

// TestViewMatchesOperators pins the maintained state to the real
// operators it mirrors: the SUMY rows must exactly equal core.Aggregate
// over the full enum, and the ranking must exactly equal
// indexsel.RankByEntropy, including after incremental maintenance.
func TestViewMatchesOperators(t *testing.T) {
	batches, corpus := emit(t, 3)
	v, err := Rebuild(&sage.Corpus{Libraries: batches[0]}, ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[1:] {
		if v, err = v.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := v.Data.NumLibraries(), len(corpus.Libraries); got != want {
		t.Fatalf("view holds %d libraries, corpus has %d", got, want)
	}

	sumy, err := core.Aggregate("SAGE", core.FullEnum("full", v.Data), core.AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Sumy.Rows, sumy.Rows) {
		t.Error("maintained SUMY rows differ from core.Aggregate over the same dataset")
	}
	if !reflect.DeepEqual(v.Ranked, indexsel.RankByEntropy(v.Data)) {
		t.Error("maintained ranking differs from indexsel.RankByEntropy over the same dataset")
	}

	// The incrementally advanced columnar store must equal a from-scratch
	// build and be adopted as the dataset's memoised view, so the
	// algebra's columnar engine finds it without rebuilding.
	if !reflect.DeepEqual(v.Blocks, columnar.Build(v.Data, columnar.Config{})) {
		t.Error("maintained columnar store differs from columnar.Build over the same dataset")
	}
	if columnar.Peek(v.Data) != v.Blocks {
		t.Error("maintained columnar store not adopted as the dataset's view")
	}

	// The sorted indexes must equal core.BuildTagIndexes over the same
	// top-entropy columns.
	cols := v.Indexes.Columns()
	want, err := core.BuildTagIndexes(v.Data, cols)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cols {
		if !reflect.DeepEqual(v.Indexes.Entries(c), want.Entries(c)) {
			t.Fatalf("sorted index for column %d differs from core.BuildTagIndexes", c)
		}
	}
}

// TestViewApplyDoesNotMutateReceiver runs concurrent readers over an old
// view while Apply derives new generations from it — the copy-on-write
// contract readers rely on. Run under -race this also proves the absence
// of data races between Apply and readers of the shared structures.
func TestViewApplyDoesNotMutateReceiver(t *testing.T) {
	batches, _ := emit(t, 4)
	old, err := Rebuild(&sage.Corpus{Libraries: batches[0]}, ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := core.Aggregate("probe", core.FullEnum("probe", old.Data), core.AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// A reader holding the old pointer must keep seeing the
				// old generation, byte for byte.
				got, err := core.Aggregate("probe", core.FullEnum("probe", old.Data), core.AggregateOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got.Rows, baseline.Rows) {
					t.Error("reader observed the held view change under it")
					return
				}
			}
		}()
	}

	v := old
	for _, b := range batches[1:] {
		if v, err = v.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if v.Data.NumLibraries() <= old.Data.NumLibraries() {
		t.Fatal("applies did not grow the new view")
	}
	if got, err := core.Aggregate("probe", core.FullEnum("probe", old.Data), core.AggregateOptions{}); err != nil || !reflect.DeepEqual(got.Rows, baseline.Rows) {
		t.Fatalf("old view changed after applies (err %v)", err)
	}
}

// TestViewOptionsValidate pins the options normalization: negative
// tolerance is an error, IndexTags defaults, negative IndexTags disables
// indexing.
func TestViewOptionsValidate(t *testing.T) {
	if _, err := Rebuild(&sage.Corpus{}, ViewOptions{Clean: clean.Options{MinTolerance: -1, ScaleTo: 1}}); err == nil {
		t.Error("negative MinTolerance accepted")
	}
	batches, _ := emit(t, 1)
	v, err := Rebuild(&sage.Corpus{Libraries: batches[0]}, ViewOptions{IndexTags: -1})
	if err != nil {
		t.Fatal(err)
	}
	if n := v.Indexes.NumIndexes(); n != 0 {
		t.Errorf("IndexTags -1 still built %d indexes", n)
	}
}

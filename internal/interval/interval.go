// Package interval implements Allen's interval algebra [ALLEN83, ALLEN84]
// over closed numeric ranges [Min, Max]. The GEA uses this "range arithmetic"
// (thesis Section 4.4.1, Table 4.1) to select tags from SUMY tables whose
// expression-level ranges stand in a given relation to a query range — for
// example, every tag whose range *overlaps* [10, 700].
package interval

import (
	"fmt"
)

// Interval is a closed range [Min, Max] of expression levels.
type Interval struct {
	Min, Max float64
}

// New returns the interval [min, max]. It panics if min > max; callers
// constructing intervals from untrusted input should use Make.
func New(min, max float64) Interval {
	iv, err := Make(min, max)
	if err != nil {
		panic(err)
	}
	return iv
}

// Make returns the interval [min, max], or an error if min > max.
func Make(min, max float64) (Interval, error) {
	if min > max {
		return Interval{}, fmt.Errorf("interval: min %v > max %v", min, max)
	}
	return Interval{Min: min, Max: max}, nil
}

// String renders the interval in the thesis's "[min, max]" notation.
func (a Interval) String() string { return fmt.Sprintf("[%g, %g]", a.Min, a.Max) }

// Width returns Max - Min, the span the fascicle tolerance vector is defined
// as a percentage of.
func (a Interval) Width() float64 { return a.Max - a.Min }

// Contains reports whether x lies inside the closed interval.
func (a Interval) Contains(x float64) bool { return a.Min <= x && x <= a.Max }

// IsPoint reports whether the interval is degenerate (Min == Max).
func (a Interval) IsPoint() bool { return a.Min == a.Max }

// Intersect returns the intersection of a and b and whether it is non-empty.
func (a Interval) Intersect(b Interval) (Interval, bool) {
	lo, hi := a.Min, a.Max
	if b.Min > lo {
		lo = b.Min
	}
	if b.Max < hi {
		hi = b.Max
	}
	if lo > hi {
		return Interval{}, false
	}
	return Interval{Min: lo, Max: hi}, true
}

// Hull returns the smallest interval containing both a and b.
func (a Interval) Hull(b Interval) Interval {
	lo, hi := a.Min, a.Max
	if b.Min < lo {
		lo = b.Min
	}
	if b.Max > hi {
		hi = b.Max
	}
	return Interval{Min: lo, Max: hi}
}

// Relation is one of Allen's thirteen basic interval relations (Table 4.1).
type Relation int

// The thirteen basic relations. The *Inv relations are the inverses listed in
// the right column of Table 4.1 (after, met-by, overlapped-by, includes,
// started-by, finished-by).
const (
	Before   Relation = iota // A before B: A.Max < B.Min
	After                    // A after B (inverse of Before)
	Meets                    // A meets B: A.Max == B.Min
	MetBy                    // A met-by B (inverse of Meets)
	Overlaps                 // A overlaps B: A.Min < B.Min < A.Max < B.Max
	OverlappedBy
	During   // A during B: B.Min < A.Min and A.Max < B.Max
	Includes // A includes B (inverse of During, a.k.a. contains)
	Starts   // A starts B: A.Min == B.Min and A.Max < B.Max
	StartedBy
	Finishes // A finishes B: A.Max == B.Max and B.Min < A.Min
	FinishedBy
	Equals // A equals B
)

// Relations lists all thirteen basic relations in Table 4.1 order.
var Relations = []Relation{
	Before, After, Meets, MetBy, Overlaps, OverlappedBy,
	During, Includes, Starts, StartedBy, Finishes, FinishedBy, Equals,
}

var relationNames = map[Relation]string{
	Before:       "before",
	After:        "after",
	Meets:        "meets",
	MetBy:        "met-by",
	Overlaps:     "overlaps",
	OverlappedBy: "overlapped-by",
	During:       "during",
	Includes:     "includes",
	Starts:       "starts",
	StartedBy:    "started-by",
	Finishes:     "finishes",
	FinishedBy:   "finished-by",
	Equals:       "equals",
}

// Allen's single-letter symbols from Table 4.1 ("bi" etc. for inverses).
var relationSymbols = map[Relation]string{
	Before:       "b",
	After:        "bi",
	Meets:        "m",
	MetBy:        "mi",
	Overlaps:     "o",
	OverlappedBy: "oi",
	During:       "d",
	Includes:     "di",
	Starts:       "s",
	StartedBy:    "si",
	Finishes:     "f",
	FinishedBy:   "fi",
	Equals:       "e",
}

// String returns the relation's name as printed in Table 4.1.
func (r Relation) String() string {
	if n, ok := relationNames[r]; ok {
		return n
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// Symbol returns Allen's symbol for the relation ("b", "bi", "m", ...).
func (r Relation) Symbol() string {
	if s, ok := relationSymbols[r]; ok {
		return s
	}
	return "?"
}

// Inverse returns the converse relation: if A r B then B r.Inverse() A.
func (r Relation) Inverse() Relation {
	switch r {
	case Before:
		return After
	case After:
		return Before
	case Meets:
		return MetBy
	case MetBy:
		return Meets
	case Overlaps:
		return OverlappedBy
	case OverlappedBy:
		return Overlaps
	case During:
		return Includes
	case Includes:
		return During
	case Starts:
		return StartedBy
	case StartedBy:
		return Starts
	case Finishes:
		return FinishedBy
	case FinishedBy:
		return Finishes
	default:
		return Equals
	}
}

// ParseRelation accepts either the name ("overlaps") or Allen's symbol ("o")
// and returns the relation.
func ParseRelation(s string) (Relation, error) {
	for r, n := range relationNames {
		if n == s {
			return r, nil
		}
	}
	for r, sym := range relationSymbols {
		if sym == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("interval: unknown relation %q", s)
}

// Classify returns the unique basic relation that holds between a and b.
// Exactly one of the thirteen relations holds for any pair of intervals.
// Degenerate (point) intervals are classified consistently by giving the
// endpoint-equality relations (starts/finishes and their inverses) precedence
// over meets/met-by; for proper intervals the two can never coincide.
func Classify(a, b Interval) Relation {
	switch {
	case a.Min == b.Min && a.Max == b.Max:
		return Equals
	case a.Min == b.Min: // a.Max != b.Max here
		if a.Max < b.Max {
			return Starts
		}
		return StartedBy
	case a.Max == b.Max: // a.Min != b.Min here
		if a.Min > b.Min {
			return Finishes
		}
		return FinishedBy
	case a.Max < b.Min:
		return Before
	case b.Max < a.Min:
		return After
	case a.Max == b.Min:
		return Meets
	case b.Max == a.Min:
		return MetBy
	case b.Min < a.Min && a.Max < b.Max:
		return During
	case a.Min < b.Min && b.Max < a.Max:
		return Includes
	case a.Min < b.Min: // and b.Min < a.Max < b.Max
		return Overlaps
	default:
		return OverlappedBy
	}
}

// Holds reports whether relation r holds between a and b.
func Holds(r Relation, a, b Interval) bool { return Classify(a, b) == r }

// AnyOverlap reports whether a and b share at least one point. This is the
// broad "overlaps" predicate of the GEA's range-search GUI (Figure 4.16): it
// is true for every basic relation except before/after, matching a user's
// intuitive reading rather than Allen's strict o relation.
func AnyOverlap(a, b Interval) bool { return a.Min <= b.Max && b.Min <= a.Max }

// Disjoint reports whether a and b share no point.
func Disjoint(a, b Interval) bool { return !AnyOverlap(a, b) }

package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMake(t *testing.T) {
	if _, err := Make(3, 1); err == nil {
		t.Error("Make(3,1): expected error")
	}
	iv, err := Make(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Min != 1 || iv.Max != 3 {
		t.Errorf("Make(1,3) = %v", iv)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(5,2) did not panic")
		}
	}()
	New(5, 2)
}

func TestString(t *testing.T) {
	if got := New(0, 20).String(); got != "[0, 20]" {
		t.Errorf("String = %q", got)
	}
}

func TestWidthContainsPoint(t *testing.T) {
	iv := New(10, 120)
	if iv.Width() != 110 {
		t.Errorf("Width = %v", iv.Width())
	}
	if !iv.Contains(10) || !iv.Contains(120) || !iv.Contains(50) {
		t.Error("Contains failed on inside points")
	}
	if iv.Contains(9.99) || iv.Contains(120.01) {
		t.Error("Contains accepted outside points")
	}
	if iv.IsPoint() {
		t.Error("IsPoint true for non-degenerate interval")
	}
	if !New(5, 5).IsPoint() {
		t.Error("IsPoint false for degenerate interval")
	}
}

func TestIntersectAndHull(t *testing.T) {
	a, b := New(0, 10), New(5, 20)
	got, ok := a.Intersect(b)
	if !ok || got != New(5, 10) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	if _, ok := New(0, 1).Intersect(New(2, 3)); ok {
		t.Error("Intersect of disjoint intervals reported non-empty")
	}
	// Touching intervals intersect in a point.
	p, ok := New(0, 5).Intersect(New(5, 9))
	if !ok || !p.IsPoint() || p.Min != 5 {
		t.Errorf("touching Intersect = %v, %v", p, ok)
	}
	if h := a.Hull(b); h != New(0, 20) {
		t.Errorf("Hull = %v", h)
	}
}

// TestClassifyTable41 walks every row of Table 4.1 of the thesis.
func TestClassifyTable41(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want Relation
	}{
		{"before", New(0, 2), New(5, 9), Before},
		{"after", New(5, 9), New(0, 2), After},
		{"meets", New(0, 3), New(3, 9), Meets},
		{"met-by", New(3, 9), New(0, 3), MetBy},
		{"overlaps", New(0, 5), New(3, 9), Overlaps},
		{"overlapped-by", New(3, 9), New(0, 5), OverlappedBy},
		{"during", New(3, 5), New(0, 9), During},
		{"includes", New(0, 9), New(3, 5), Includes},
		{"starts", New(0, 4), New(0, 9), Starts},
		{"started-by", New(0, 9), New(0, 4), StartedBy},
		{"finishes", New(5, 9), New(0, 9), Finishes},
		{"finished-by", New(0, 9), New(5, 9), FinishedBy},
		{"equals", New(2, 7), New(2, 7), Equals},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(tt.a, tt.b); got != tt.want {
				t.Errorf("Classify(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if !Holds(tt.want, tt.a, tt.b) {
				t.Errorf("Holds(%v, %v, %v) = false", tt.want, tt.a, tt.b)
			}
			// The name of the test must match the printed relation.
			if tt.want.String() != tt.name {
				t.Errorf("String() = %q, want %q", tt.want.String(), tt.name)
			}
		})
	}
}

func randInterval(rng *rand.Rand) Interval {
	// Small integer endpoints make coincidences (meets, starts, equals) likely,
	// so the property tests exercise all thirteen relations.
	a := float64(rng.Intn(10))
	b := float64(rng.Intn(10))
	if a > b {
		a, b = b, a
	}
	return Interval{Min: a, Max: b}
}

// Property: exactly one basic relation holds for any pair.
func TestClassifyExactlyOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randInterval(rng), randInterval(rng)
		count := 0
		for _, r := range Relations {
			if Holds(r, a, b) {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Classify(a, b).Inverse() == Classify(b, a).
func TestClassifyInverseSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randInterval(rng), randInterval(rng)
		return Classify(a, b).Inverse() == Classify(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: AnyOverlap agrees with the basic relations: it is false exactly
// for before/after.
func TestAnyOverlapConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randInterval(rng), randInterval(rng)
		r := Classify(a, b)
		want := r != Before && r != After
		return AnyOverlap(a, b) == want && Disjoint(a, b) != want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInverseIsInvolution(t *testing.T) {
	for _, r := range Relations {
		if r.Inverse().Inverse() != r {
			t.Errorf("Inverse(Inverse(%v)) = %v", r, r.Inverse().Inverse())
		}
	}
	if Equals.Inverse() != Equals {
		t.Error("Equals must be its own inverse")
	}
}

func TestParseRelation(t *testing.T) {
	for _, r := range Relations {
		byName, err := ParseRelation(r.String())
		if err != nil || byName != r {
			t.Errorf("ParseRelation(%q) = %v, %v", r.String(), byName, err)
		}
		bySym, err := ParseRelation(r.Symbol())
		if err != nil || bySym != r {
			t.Errorf("ParseRelation(%q) = %v, %v", r.Symbol(), bySym, err)
		}
	}
	if _, err := ParseRelation("sideways"); err == nil {
		t.Error("ParseRelation(bogus): expected error")
	}
}

func TestSymbolsAreUnique(t *testing.T) {
	seen := map[string]Relation{}
	for _, r := range Relations {
		if prev, dup := seen[r.Symbol()]; dup {
			t.Errorf("symbol %q shared by %v and %v", r.Symbol(), prev, r)
		}
		seen[r.Symbol()] = r
	}
}

func TestRelationStringUnknown(t *testing.T) {
	if got := Relation(99).String(); got != "Relation(99)" {
		t.Errorf("unknown relation String = %q", got)
	}
	if got := Relation(99).Symbol(); got != "?" {
		t.Errorf("unknown relation Symbol = %q", got)
	}
}

func TestPointIntervalRelations(t *testing.T) {
	// Degenerate intervals must still classify uniquely.
	p := New(5, 5)
	if got := Classify(p, p); got != Equals {
		t.Errorf("point vs itself = %v", got)
	}
	if got := Classify(p, New(5, 9)); got != Starts {
		t.Errorf("point at start = %v", got)
	}
	if got := Classify(p, New(0, 5)); got != Finishes {
		t.Errorf("point at end = %v", got)
	}
	if got := Classify(p, New(0, 9)); got != During {
		t.Errorf("point inside = %v", got)
	}
}

package interval

import (
	"strings"
	"sync"
)

// Allen's algebra proper: an *indefinite* relationship between two intervals
// is a set of basic relations (the thesis cites [ALLEN83, ALLEN84]: "this
// algebra can express any possibly indefinite relationship between two
// intervals"). RelationSet is such a set, with the algebra's converse,
// composition, and lattice operations.

// RelationSet is a set of basic relations, one bit per Relation.
type RelationSet uint16

// Canonical sets.
const (
	// EmptySet is the contradiction (no relation can hold).
	EmptySet RelationSet = 0
	// FullSet is complete ignorance (any relation may hold).
	FullSet RelationSet = 1<<13 - 1
)

// NewRelationSet builds a set from basic relations.
func NewRelationSet(rs ...Relation) RelationSet {
	var s RelationSet
	for _, r := range rs {
		s |= 1 << uint(r)
	}
	return s
}

// Contains reports whether r is in the set.
func (s RelationSet) Contains(r Relation) bool { return s&(1<<uint(r)) != 0 }

// Union returns s ∪ t.
func (s RelationSet) Union(t RelationSet) RelationSet { return s | t }

// Intersect returns s ∩ t.
func (s RelationSet) Intersect(t RelationSet) RelationSet { return s & t }

// IsEmpty reports whether no relation is possible.
func (s RelationSet) IsEmpty() bool { return s == 0 }

// Len returns the number of basic relations in the set.
func (s RelationSet) Len() int {
	n := 0
	for _, r := range Relations {
		if s.Contains(r) {
			n++
		}
	}
	return n
}

// Relations lists the members in Table 4.1 order.
func (s RelationSet) Relations() []Relation {
	var out []Relation
	for _, r := range Relations {
		if s.Contains(r) {
			out = append(out, r)
		}
	}
	return out
}

// Converse returns the set of inverses: if A s B then B s.Converse() A.
func (s RelationSet) Converse() RelationSet {
	var out RelationSet
	for _, r := range Relations {
		if s.Contains(r) {
			out |= 1 << uint(r.Inverse())
		}
	}
	return out
}

// String renders the set as Allen symbols, e.g. "{b,m,o}".
func (s RelationSet) String() string {
	var parts []string
	for _, r := range Relations {
		if s.Contains(r) {
			parts = append(parts, r.Symbol())
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// compositionTable[R][S] is the set of relations T such that A R B and B S C
// admit A T C. It is derived once by exhaustive witness enumeration over
// proper intervals with endpoints on a small integer grid; every entry of
// Allen's published table is realizable there, and every witness found is a
// genuine example, so the derived table equals the classical one for proper
// intervals.
var (
	compOnce         sync.Once
	compositionTable [13][13]RelationSet
)

func buildCompositionTable() {
	const gridMax = 9
	// All proper intervals with endpoints in [0, gridMax].
	var ivs []Interval
	for lo := 0; lo <= gridMax; lo++ {
		for hi := lo + 1; hi <= gridMax; hi++ {
			ivs = append(ivs, Interval{Min: float64(lo), Max: float64(hi)})
		}
	}
	for _, a := range ivs {
		for _, b := range ivs {
			r := Classify(a, b)
			for _, c := range ivs {
				s := Classify(b, c)
				t := Classify(a, c)
				compositionTable[r][s] |= 1 << uint(t)
			}
		}
	}
}

// Compose returns the composition R;S: the possible relations between A and
// C given A R B and B S C, for proper intervals.
func Compose(r, s Relation) RelationSet {
	compOnce.Do(buildCompositionTable)
	return compositionTable[r][s]
}

// ComposeSets lifts composition to indefinite relationships:
// (R ∪ ...);(S ∪ ...) is the union of the pairwise compositions.
func ComposeSets(s, t RelationSet) RelationSet {
	var out RelationSet
	for _, r1 := range Relations {
		if !s.Contains(r1) {
			continue
		}
		for _, r2 := range Relations {
			if t.Contains(r2) {
				out |= Compose(r1, r2)
			}
		}
	}
	return out
}

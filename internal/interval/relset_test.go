package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRelationSetBasics(t *testing.T) {
	s := NewRelationSet(Before, Meets, Overlaps)
	if !s.Contains(Before) || s.Contains(After) {
		t.Error("Contains wrong")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.String(); got != "{b,m,o}" {
		t.Errorf("String = %q", got)
	}
	u := s.Union(NewRelationSet(After))
	if u.Len() != 4 {
		t.Errorf("Union len = %d", u.Len())
	}
	i := s.Intersect(NewRelationSet(Meets, Equals))
	if i.Len() != 1 || !i.Contains(Meets) {
		t.Errorf("Intersect = %v", i)
	}
	if !EmptySet.IsEmpty() || FullSet.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
	if FullSet.Len() != 13 {
		t.Errorf("FullSet.Len = %d", FullSet.Len())
	}
	if got := len(s.Relations()); got != 3 {
		t.Errorf("Relations len = %d", got)
	}
}

func TestRelationSetConverse(t *testing.T) {
	s := NewRelationSet(Before, Starts, Includes)
	c := s.Converse()
	want := NewRelationSet(After, StartedBy, During)
	if c != want {
		t.Errorf("Converse = %v, want %v", c, want)
	}
	// Converse is an involution.
	if c.Converse() != s {
		t.Error("Converse not involutive")
	}
}

// TestComposeClassicalEntries checks well-known cells of Allen's
// composition table.
func TestComposeClassicalEntries(t *testing.T) {
	// before;before = {before}
	if got := Compose(Before, Before); got != NewRelationSet(Before) {
		t.Errorf("b;b = %v", got)
	}
	// during;during = {during}
	if got := Compose(During, During); got != NewRelationSet(During) {
		t.Errorf("d;d = %v", got)
	}
	// meets;meets = {before}
	if got := Compose(Meets, Meets); got != NewRelationSet(Before) {
		t.Errorf("m;m = %v", got)
	}
	// before;after = full ignorance.
	if got := Compose(Before, After); got != FullSet {
		t.Errorf("b;bi = %v, want full", got)
	}
	// equals is the identity on both sides.
	for _, r := range Relations {
		if got := Compose(Equals, r); got != NewRelationSet(r) {
			t.Errorf("e;%v = %v", r, got)
		}
		if got := Compose(r, Equals); got != NewRelationSet(r) {
			t.Errorf("%v;e = %v", r, got)
		}
	}
	// starts;during = {during}: if A starts B and B during C then A during C.
	if got := Compose(Starts, During); got != NewRelationSet(During) {
		t.Errorf("s;d = %v", got)
	}
	// overlaps;overlaps = {before, meets, overlaps}.
	if got := Compose(Overlaps, Overlaps); got != NewRelationSet(Before, Meets, Overlaps) {
		t.Errorf("o;o = %v", got)
	}
}

// Property (soundness): for any proper intervals a, b, c,
// Classify(a, c) ∈ Compose(Classify(a, b), Classify(b, c)).
func TestComposeSoundOnRandomTriples(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Interval {
			lo := rng.Float64() * 10
			return Interval{Min: lo, Max: lo + 0.01 + rng.Float64()*10}
		}
		// Mix in small-integer intervals so coincidences occur.
		mkInt := func() Interval {
			lo := rng.Intn(6)
			hi := lo + 1 + rng.Intn(5)
			return Interval{Min: float64(lo), Max: float64(hi)}
		}
		var a, b, c Interval
		if rng.Intn(2) == 0 {
			a, b, c = mk(), mk(), mk()
		} else {
			a, b, c = mkInt(), mkInt(), mkInt()
		}
		comp := Compose(Classify(a, b), Classify(b, c))
		return comp.Contains(Classify(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property (converse law): (R;S)ˇ = Sˇ;Rˇ.
func TestComposeConverseLaw(t *testing.T) {
	for _, r := range Relations {
		for _, s := range Relations {
			lhs := Compose(r, s).Converse()
			rhs := Compose(s.Inverse(), r.Inverse())
			if lhs != rhs {
				t.Errorf("(%v;%v)ˇ = %v, want %v", r, s, lhs, rhs)
			}
		}
	}
}

// Property: composition is associative on sets (Allen's algebra is a
// relation algebra; associativity must hold for the derived table).
func TestComposeSetsAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	randSet := func() RelationSet {
		var s RelationSet
		for _, r := range Relations {
			if rng.Intn(4) == 0 {
				s |= NewRelationSet(r)
			}
		}
		if s.IsEmpty() {
			s = NewRelationSet(Relations[rng.Intn(len(Relations))])
		}
		return s
	}
	for trial := 0; trial < 50; trial++ {
		a, b, c := randSet(), randSet(), randSet()
		if ComposeSets(ComposeSets(a, b), c) != ComposeSets(a, ComposeSets(b, c)) {
			t.Fatalf("associativity fails for %v, %v, %v", a, b, c)
		}
	}
}

// Every composition cell is non-empty (two proper intervals always stand in
// some relation to a third).
func TestComposeNeverEmpty(t *testing.T) {
	for _, r := range Relations {
		for _, s := range Relations {
			if Compose(r, s).IsEmpty() {
				t.Errorf("%v;%v is empty", r, s)
			}
		}
	}
}

func TestComposeSets(t *testing.T) {
	// {b,m};{b} = b;b ∪ m;b = {b} ∪ {b} = {b}.
	got := ComposeSets(NewRelationSet(Before, Meets), NewRelationSet(Before))
	if got != NewRelationSet(Before) {
		t.Errorf("{b,m};{b} = %v", got)
	}
	if !ComposeSets(EmptySet, FullSet).IsEmpty() {
		t.Error("empty;anything should be empty")
	}
}

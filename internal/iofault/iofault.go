// Package iofault is a deterministic fault-scripting filesystem for
// testing GEA's durability layer. It wraps an atomicio.FS and counts every
// filesystem operation — creates, writes, fsyncs, closes, renames,
// removals, directory scans and directory syncs — in the order the save
// path performs them. A Config then injects a failure at an exact
// operation number:
//
//   - FailAt returns an error (ENOSPC by default) from that operation and
//     lets the caller continue — a recoverable I/O error.
//   - ShortWriteAt makes that write persist only half its buffer before
//     failing — a torn write.
//   - CrashAt simulates the machine dying at that operation: the
//     operation itself half-applies (a write persists a prefix; a rename
//     or create does not happen), and every later operation returns
//     ErrCrashed. Whatever bytes reached the inner FS before the crash
//     remain on disk, exactly like the partial state power loss leaves.
//
// Because GEA's save paths buffer each artifact and issue one write per
// file, operation counts are deterministic, so a test can first run a save
// against a counting FS (zero Config), read Ops(), and then replay the
// save once per operation number with CrashAt set — walking every crash
// point of the protocol.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"

	"gea/internal/atomicio"
)

// Injected errors.
var (
	// ErrInjected is the default FailAt error.
	ErrInjected = errors.New("iofault: injected I/O error")
	// ErrNoSpace mimics ENOSPC from a full disk.
	ErrNoSpace = errors.New("iofault: no space left on device")
	// ErrCrashed is returned by every operation after the crash point.
	ErrCrashed = errors.New("iofault: simulated crash")
)

// Config scripts at most one fault. Operation numbers are 1-based; zero
// disables that fault.
type Config struct {
	// FailAt fails operation number FailAt with FailErr and performs it
	// only partially (writes persist half their bytes, metadata ops do
	// not happen). Later operations proceed normally.
	FailAt  int
	FailErr error // defaults to ErrInjected
	// ShortWriteAt fails write-operation semantics at the given op
	// number: half the buffer persists, then ErrInjected returns.
	ShortWriteAt int
	// CrashAt halts the world at the given operation number: that
	// operation half-applies and every subsequent one returns ErrCrashed.
	CrashAt int
}

// Op is one recorded filesystem operation.
type Op struct {
	N    int
	Kind string // "create", "write", "sync", "close", "rename", ...
	Path string
}

// FS wraps an inner atomicio.FS with the fault script.
type FS struct {
	inner atomicio.FS
	cfg   Config

	mu      sync.Mutex
	n       int
	crashed bool
	trace   []Op
}

// New returns a fault-scripting FS over inner. A zero Config only counts.
func New(inner atomicio.FS, cfg Config) *FS {
	if cfg.FailErr == nil {
		cfg.FailErr = ErrInjected
	}
	return &FS{inner: inner, cfg: cfg}
}

// Ops returns how many operations have been observed so far.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Trace returns the recorded operations in order.
func (f *FS) Trace() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Op(nil), f.trace...)
}

// Crashed reports whether the crash point has been reached.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step records one operation and decides its fate:
// proceed, fail (recoverable), or partial (half-apply then error).
type fate int

const (
	proceed fate = iota
	fail         // do not perform, return err
	partial      // perform half (writes), return err
)

func (f *FS) step(kind, path string) (fate, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fail, fmt.Errorf("%w (op %s %s)", ErrCrashed, kind, path)
	}
	f.n++
	f.trace = append(f.trace, Op{N: f.n, Kind: kind, Path: path})
	switch f.n {
	case f.cfg.CrashAt:
		f.crashed = true
		return partial, fmt.Errorf("%w (op %d: %s %s)", ErrCrashed, f.n, kind, path)
	case f.cfg.FailAt:
		return partial, fmt.Errorf("%w (op %d: %s %s)", f.cfg.FailErr, f.n, kind, path)
	case f.cfg.ShortWriteAt:
		return partial, fmt.Errorf("%w (op %d: short %s %s)", ErrInjected, f.n, kind, path)
	}
	return proceed, nil
}

func (f *FS) MkdirAll(path string, perm fs.FileMode) error {
	if verdict, err := f.step("mkdirall", path); verdict != proceed {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FS) Create(name string) (atomicio.File, error) {
	if verdict, err := f.step("create", name); verdict != proceed {
		return nil, err
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner, name: name}, nil
}

func (f *FS) Open(name string) (io.ReadCloser, error) {
	if verdict, err := f.step("open", name); verdict != proceed {
		return nil, err
	}
	return f.inner.Open(name)
}

func (f *FS) Rename(oldname, newname string) error {
	if verdict, err := f.step("rename", newname); verdict != proceed {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FS) Remove(name string) error {
	if verdict, err := f.step("remove", name); verdict != proceed {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FS) RemoveAll(path string) error {
	if verdict, err := f.step("removeall", path); verdict != proceed {
		return err
	}
	return f.inner.RemoveAll(path)
}

func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	if verdict, err := f.step("readdir", name); verdict != proceed {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FS) SyncDir(name string) error {
	if verdict, err := f.step("syncdir", name); verdict != proceed {
		return err
	}
	return f.inner.SyncDir(name)
}

// file wraps the inner handle so writes, syncs and closes count as
// operations and honor partial-apply semantics.
type file struct {
	fs    *FS
	inner atomicio.File
	name  string
}

func (w *file) Write(p []byte) (int, error) {
	verdict, err := w.fs.step("write", w.name)
	switch verdict {
	case fail:
		return 0, err
	case partial:
		// A torn write: only a prefix reaches the disk.
		n, _ := w.inner.Write(p[:len(p)/2])
		return n, err
	}
	return w.inner.Write(p)
}

func (w *file) Sync() error {
	if verdict, err := w.fs.step("sync", w.name); verdict != proceed {
		return err
	}
	return w.inner.Sync()
}

func (w *file) Close() error {
	if verdict, err := w.fs.step("close", w.name); verdict != proceed {
		// Even on a failed close the inner handle is released, so the
		// harness does not leak descriptors across hundreds of replays.
		w.inner.Close()
		return err
	}
	return w.inner.Close()
}

package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gea/internal/atomicio"
)

func TestCountingIsDeterministic(t *testing.T) {
	run := func() ([]Op, error) {
		dir := t.TempDir()
		fsys := New(atomicio.OS{}, Config{})
		err := atomicio.WriteFile(fsys, filepath.Join(dir, "f"), []byte("payload"))
		return fsys.Trace(), err
	}
	a, errA := run()
	b, errB := run()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if len(a) != len(b) {
		t.Fatalf("op counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind {
			t.Fatalf("op %d kind %q vs %q", i, a[i].Kind, b[i].Kind)
		}
	}
	// The atomic protocol is create, write, sync, close, rename, syncdir.
	want := []string{"create", "write", "sync", "close", "rename", "syncdir"}
	for i, k := range want {
		if a[i].Kind != k {
			t.Fatalf("op %d = %q, want %q (trace %v)", i, a[i].Kind, k, a)
		}
	}
}

func TestFailAtReturnsConfiguredError(t *testing.T) {
	dir := t.TempDir()
	fsys := New(atomicio.OS{}, Config{FailAt: 2, FailErr: ErrNoSpace})
	err := atomicio.WriteFile(fsys, filepath.Join(dir, "f"), []byte("payload"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("got %v, want ErrNoSpace", err)
	}
	// The destination was never committed.
	if _, err := os.Stat(filepath.Join(dir, "f")); !os.IsNotExist(err) {
		t.Error("failed write committed a file")
	}
	// Recoverable: the same FS keeps working after the fault.
	if err := atomicio.WriteFile(fsys, filepath.Join(dir, "g"), []byte("ok")); err != nil {
		t.Fatalf("post-fault write: %v", err)
	}
}

func TestCrashHaltsEverything(t *testing.T) {
	dir := t.TempDir()
	fsys := New(atomicio.OS{}, Config{CrashAt: 2})
	err := atomicio.WriteFile(fsys, filepath.Join(dir, "f"), []byte("a sizeable payload"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("got %v, want ErrCrashed", err)
	}
	if !fsys.Crashed() {
		t.Fatal("Crashed() = false after crash")
	}
	// Every later operation fails too.
	if err := fsys.MkdirAll(filepath.Join(dir, "d"), 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash MkdirAll: %v", err)
	}
	if _, err := fsys.Open(filepath.Join(dir, "f")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Open: %v", err)
	}
	// The crash interrupted the write: a torn temp file remains, the
	// destination does not exist.
	if _, err := os.Stat(filepath.Join(dir, "f")); !os.IsNotExist(err) {
		t.Error("crashed write committed a file")
	}
	tmp := filepath.Join(dir, ".tmp.f")
	st, err := os.Stat(tmp)
	if err != nil {
		t.Fatalf("torn temp file missing: %v", err)
	}
	if full := int64(len("a sizeable payload")) + atomicio.FooterSize; st.Size() >= full {
		t.Errorf("torn write persisted %d bytes, want < %d", st.Size(), full)
	}
}

func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	fsys := New(atomicio.OS{}, Config{ShortWriteAt: 2})
	err := atomicio.WriteFile(fsys, filepath.Join(dir, "f"), []byte("0123456789abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	// Unlike a crash, the world keeps turning; a retry on the same FS
	// succeeds and the framed read verifies.
	if err := atomicio.WriteFile(fsys, filepath.Join(dir, "f"), []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	got, err := atomicio.ReadFile(atomicio.OS{}, filepath.Join(dir, "f"))
	if err != nil || string(got) != "0123456789abcdef" {
		t.Fatalf("retry readback: %q, %v", got, err)
	}
}

// TestAtomicWriteCrashWalk is the microscopic version of the save-path
// walks: for every operation of a single atomic file commit, crash there
// and assert the file then reads back as either the complete old payload
// or the complete new payload.
func TestAtomicWriteCrashWalk(t *testing.T) {
	const oldPayload, newPayload = "old state", "the new state"
	path := func(dir string) string { return filepath.Join(dir, "f") }

	// Count the ops of one commit.
	counter := New(atomicio.OS{}, Config{})
	{
		dir := t.TempDir()
		if err := atomicio.WriteFile(atomicio.OS{}, path(dir), []byte(oldPayload)); err != nil {
			t.Fatal(err)
		}
		if err := atomicio.WriteFile(counter, path(dir), []byte(newPayload)); err != nil {
			t.Fatal(err)
		}
	}
	total := counter.Ops()
	if total == 0 {
		t.Fatal("no operations counted")
	}
	for crash := 1; crash <= total; crash++ {
		dir := t.TempDir()
		if err := atomicio.WriteFile(atomicio.OS{}, path(dir), []byte(oldPayload)); err != nil {
			t.Fatal(err)
		}
		fsys := New(atomicio.OS{}, Config{CrashAt: crash})
		if err := atomicio.WriteFile(fsys, path(dir), []byte(newPayload)); err == nil {
			t.Fatalf("crash at op %d: save reported success", crash)
		}
		got, err := atomicio.ReadFile(atomicio.OS{}, path(dir))
		if err != nil {
			t.Fatalf("crash at op %d: load failed: %v", crash, err)
		}
		if s := string(got); s != oldPayload && s != newPayload {
			t.Fatalf("crash at op %d: read %q, want old or new", crash, s)
		}
	}
}

package lineage

import (
	"path/filepath"
	"reflect"
	"testing"

	"gea/internal/atomicio"
	"gea/internal/iofault"
)

func faultGraphs(t *testing.T) (old, new *Graph) {
	t.Helper()
	old = NewGraph()
	if _, err := old.Record("SAGE", KindDataset, "load", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := old.Record("brain", KindDataset, "subset", nil, "SAGE"); err != nil {
		t.Fatal(err)
	}
	new = NewGraph()
	if _, err := new.Record("SAGE", KindDataset, "load", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := new.Record("brain", KindDataset, "subset", nil, "SAGE"); err != nil {
		t.Fatal(err)
	}
	if _, err := new.Record("brain_fas1", KindFascicle, "mine", nil, "brain"); err != nil {
		t.Fatal(err)
	}
	return old, new
}

// TestLineageSaveCrashWalk enumerates every filesystem operation of
// Graph.Save and, for a crash injected at each one, asserts the file then
// loads as either the complete old graph or the complete new graph.
func TestLineageSaveCrashWalk(t *testing.T) {
	oldG, newG := faultGraphs(t)

	// Count the operations of one save over an existing file.
	counter := iofault.New(atomicio.OS{}, iofault.Config{})
	{
		path := filepath.Join(t.TempDir(), "lineage.gob")
		if err := oldG.Save(path); err != nil {
			t.Fatal(err)
		}
		if err := newG.SaveFS(counter, path); err != nil {
			t.Fatal(err)
		}
	}
	total := counter.Ops()
	if total < 5 {
		t.Fatalf("implausible op count %d (trace %v)", total, counter.Trace())
	}

	sawOld, sawNew := false, false
	for crash := 1; crash <= total; crash++ {
		path := filepath.Join(t.TempDir(), "lineage.gob")
		if err := oldG.Save(path); err != nil {
			t.Fatal(err)
		}
		fsys := iofault.New(atomicio.OS{}, iofault.Config{CrashAt: crash})
		saveErr := newG.SaveFS(fsys, path)

		got, err := Load(path)
		if err != nil {
			t.Fatalf("crash at op %d: load after crash failed: %v", crash, err)
		}
		switch {
		case reflect.DeepEqual(got.Names(), oldG.Names()):
			sawOld = true
			if saveErr == nil {
				t.Errorf("crash at op %d: save reported success but old state loaded", crash)
			}
		case reflect.DeepEqual(got.Names(), newG.Names()):
			sawNew = true
		default:
			t.Fatalf("crash at op %d: loaded neither old nor new graph: %v", crash, got.Names())
		}

		// Recovery: a clean retry lands the new state.
		if err := newG.Save(path); err != nil {
			t.Fatalf("crash at op %d: retry save failed: %v", crash, err)
		}
		if got, err := Load(path); err != nil || !reflect.DeepEqual(got.Names(), newG.Names()) {
			t.Fatalf("crash at op %d: retry did not restore new state (%v)", crash, err)
		}
	}
	if !sawOld || !sawNew {
		t.Errorf("crash walk did not cover both outcomes (old=%v new=%v)", sawOld, sawNew)
	}
}

// TestLineageSaveENOSPC injects a recoverable disk-full error at every
// operation: the save must fail without touching the previous graph.
func TestLineageSaveENOSPC(t *testing.T) {
	oldG, newG := faultGraphs(t)
	counter := iofault.New(atomicio.OS{}, iofault.Config{})
	{
		path := filepath.Join(t.TempDir(), "lineage.gob")
		if err := oldG.Save(path); err != nil {
			t.Fatal(err)
		}
		if err := newG.SaveFS(counter, path); err != nil {
			t.Fatal(err)
		}
	}
	for op := 1; op <= counter.Ops(); op++ {
		path := filepath.Join(t.TempDir(), "lineage.gob")
		if err := oldG.Save(path); err != nil {
			t.Fatal(err)
		}
		fsys := iofault.New(atomicio.OS{}, iofault.Config{FailAt: op, FailErr: iofault.ErrNoSpace})
		saveErr := newG.SaveFS(fsys, path)
		got, err := Load(path)
		if err != nil {
			t.Fatalf("ENOSPC at op %d: load failed: %v", op, err)
		}
		// A failed save may have committed already (the directory sync after
		// the rename can fail), but the state must be complete either way.
		isOld := reflect.DeepEqual(got.Names(), oldG.Names())
		isNew := reflect.DeepEqual(got.Names(), newG.Names())
		if !isOld && !isNew {
			t.Fatalf("ENOSPC at op %d: torn graph: %v", op, got.Names())
		}
		if saveErr == nil && !isNew {
			t.Fatalf("ENOSPC at op %d: successful save lost the new graph", op)
		}
		// The fault is recoverable: a clean retry must land the new state.
		if err := newG.Save(path); err != nil {
			t.Fatalf("ENOSPC at op %d: retry failed: %v", op, err)
		}
	}
}

package lineage

import (
	"strings"
	"testing"
)

// buildBrainHistory mirrors the Figure 4.18 tree: a brain dataset, a mined
// fascicle, its SUMY tables, and GAP tables derived from them.
func buildBrainHistory(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	mustRecord := func(name string, kind Kind, op string, params map[string]string, inputs ...string) {
		if _, err := g.Record(name, kind, op, params, inputs...); err != nil {
			t.Fatal(err)
		}
	}
	mustRecord("brain", KindDataset, "select-tissue", map[string]string{"tissue": "brain"})
	mustRecord("brain25k_3", KindFascicle, "mine", map[string]string{
		"compactDimension": "25000", "binary": "brainfile.b", "meta": "brainfile.meta",
		"batch": "6", "minFrequency": "3",
	}, "brain")
	mustRecord("brain25k_3CancerFasTbl", KindSumy, "aggregate", nil, "brain25k_3")
	mustRecord("brain25k_3CanNotInFasTbl", KindSumy, "aggregate", nil, "brain25k_3")
	mustRecord("b25canvscnif_gap1", KindGap, "diff", nil,
		"brain25k_3CancerFasTbl", "brain25k_3CanNotInFasTbl")
	mustRecord("b25canvscnif_gap1_10", KindTopGap, "topgap",
		map[string]string{"x": "10"}, "b25canvscnif_gap1")
	return g
}

func TestRecordAndGet(t *testing.T) {
	g := buildBrainHistory(t)
	n, err := g.Get("brain25k_3")
	if err != nil {
		t.Fatal(err)
	}
	if n.Operation != "mine" || n.Params["compactDimension"] != "25000" {
		t.Errorf("node = %+v", n)
	}
	if len(n.Inputs) != 1 || n.Inputs[0] != "brain" {
		t.Errorf("inputs = %v", n.Inputs)
	}
	if !g.Has("brain") || g.Has("nope") {
		t.Error("Has wrong")
	}
	if _, err := g.Get("nope"); err == nil {
		t.Error("Get(missing): expected error")
	}
}

func TestRecordValidation(t *testing.T) {
	g := NewGraph()
	if _, err := g.Record("", KindDataset, "x", nil); err == nil {
		t.Error("empty name: expected error")
	}
	if _, err := g.Record("a", KindDataset, "x", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Record("a", KindDataset, "x", nil); err == nil {
		t.Error("duplicate: expected error")
	}
	if _, err := g.Record("b", KindGap, "diff", nil, "missing"); err == nil {
		t.Error("unknown input: expected error")
	}
}

func TestRecordCopiesParams(t *testing.T) {
	g := NewGraph()
	params := map[string]string{"k": "1"}
	n, err := g.Record("a", KindDataset, "x", params)
	if err != nil {
		t.Fatal(err)
	}
	params["k"] = "mutated"
	if n.Params["k"] != "1" {
		t.Error("Record aliased the caller's params map")
	}
}

func TestChildrenAndDescendants(t *testing.T) {
	g := buildBrainHistory(t)
	kids, err := g.Children("brain25k_3")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0] != "brain25k_3CanNotInFasTbl" {
		t.Errorf("children = %v", kids)
	}
	desc, err := g.Descendants("brain")
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 5 {
		t.Errorf("descendants = %v", desc)
	}
	if _, err := g.Children("nope"); err == nil {
		t.Error("Children(missing): expected error")
	}
	if _, err := g.Descendants("nope"); err == nil {
		t.Error("Descendants(missing): expected error")
	}
}

func TestComment(t *testing.T) {
	g := buildBrainHistory(t)
	if err := g.SetComment("brain25k_3", "the compact tags here are very interesting"); err != nil {
		t.Fatal(err)
	}
	n, _ := g.Get("brain25k_3")
	if !strings.Contains(n.Comment, "interesting") {
		t.Error("comment not stored")
	}
	if err := g.SetComment("nope", "x"); err == nil {
		t.Error("SetComment(missing): expected error")
	}
}

func TestDropContentsAndRegenerationPlan(t *testing.T) {
	g := buildBrainHistory(t)
	if err := g.DropContents("brain25k_3CancerFasTbl"); err != nil {
		t.Fatal(err)
	}
	if err := g.DropContents("b25canvscnif_gap1"); err != nil {
		t.Fatal(err)
	}
	plan, err := g.RegenerationPlan("b25canvscnif_gap1")
	if err != nil {
		t.Fatal(err)
	}
	// The plan must rebuild the dropped SUMY before the GAP.
	var names []string
	for _, n := range plan {
		names = append(names, n.Name)
	}
	iSumy, iGap := -1, -1
	for i, n := range names {
		if n == "brain25k_3CancerFasTbl" {
			iSumy = i
		}
		if n == "b25canvscnif_gap1" {
			iGap = i
		}
	}
	if iSumy == -1 || iGap == -1 || iSumy > iGap {
		t.Errorf("plan order wrong: %v", names)
	}
	if err := g.MarkRegenerated("b25canvscnif_gap1"); err != nil {
		t.Fatal(err)
	}
	n, _ := g.Get("b25canvscnif_gap1")
	if n.ContentsDropped {
		t.Error("MarkRegenerated did not clear the flag")
	}
	if err := g.DropContents("nope"); err == nil {
		t.Error("DropContents(missing): expected error")
	}
	if err := g.MarkRegenerated("nope"); err == nil {
		t.Error("MarkRegenerated(missing): expected error")
	}
	if _, err := g.RegenerationPlan("nope"); err == nil {
		t.Error("RegenerationPlan(missing): expected error")
	}
}

func TestDeleteCascade(t *testing.T) {
	g := buildBrainHistory(t)
	deleted, err := g.DeleteCascade("brain25k_3CancerFasTbl")
	if err != nil {
		t.Fatal(err)
	}
	// The SUMY and both GAP tables derived from it must go.
	if len(deleted) != 3 {
		t.Errorf("deleted = %v", deleted)
	}
	if g.Has("b25canvscnif_gap1") || g.Has("b25canvscnif_gap1_10") {
		t.Error("descendants survived the cascade")
	}
	// Unrelated sibling survives, and its parent's child-links are clean.
	if !g.Has("brain25k_3CanNotInFasTbl") {
		t.Error("sibling was deleted")
	}
	kids, err := g.Children("brain25k_3")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 1 {
		t.Errorf("children after cascade = %v", kids)
	}
	if _, err := g.DeleteCascade("nope"); err == nil {
		t.Error("DeleteCascade(missing): expected error")
	}
}

func TestNamesRootsTree(t *testing.T) {
	g := buildBrainHistory(t)
	if len(g.Names()) != 6 {
		t.Errorf("names = %v", g.Names())
	}
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != "brain" {
		t.Errorf("roots = %v", roots)
	}
	tree := g.Tree()
	if !strings.Contains(tree, "brain25k_3 [fascicle: mine]") {
		t.Errorf("tree missing fascicle line:\n%s", tree)
	}
	// The GAP node has two parents, so it appears twice in the tree.
	if strings.Count(tree, "b25canvscnif_gap1 [gap") != 2 {
		t.Errorf("multi-parent node should appear under each parent:\n%s", tree)
	}
	if err := g.DropContents("brain25k_3CancerFasTbl"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.Tree(), "contents dropped") {
		t.Error("tree does not show dropped contents")
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindDataset: "dataset", KindFascicle: "fascicle", KindEnum: "enum",
		KindSumy: "sumy", KindGap: "gap", KindTopGap: "topgap", KindCompare: "compare",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d = %q", k, k.String())
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string wrong")
	}
}

func TestDiamondDescendants(t *testing.T) {
	// a -> b, a -> c, b+c -> d: d counted once.
	g := NewGraph()
	for _, rec := range []struct {
		name   string
		inputs []string
	}{
		{"a", nil}, {"b", []string{"a"}}, {"c", []string{"a"}}, {"d", []string{"b", "c"}},
	} {
		if _, err := g.Record(rec.name, KindGap, "op", nil, rec.inputs...); err != nil {
			t.Fatal(err)
		}
	}
	desc, err := g.Descendants("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 3 {
		t.Errorf("diamond descendants = %v", desc)
	}
	deleted, err := g.DeleteCascade("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 { // b and d
		t.Errorf("cascade from b = %v", deleted)
	}
	// c must not retain a dangling child link to d.
	kids, _ := g.Children("c")
	if len(kids) != 0 {
		t.Errorf("c children = %v", kids)
	}
}

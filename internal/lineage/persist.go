package lineage

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"gea/internal/atomicio"
)

// storedNode is the persisted form of a Node (children are derivable).
type storedNode struct {
	Name            string
	Kind            Kind
	Operation       string
	Params          map[string]string
	Inputs          []string
	Comment         string
	User            string
	ContentsDropped bool
}

// Write serializes the graph with encoding/gob.
func (g *Graph) Write(w io.Writer) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	names := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	stored := make([]storedNode, 0, len(names))
	for _, n := range names {
		node := g.nodes[n]
		stored = append(stored, storedNode{
			Name: node.Name, Kind: node.Kind, Operation: node.Operation,
			Params: node.Params, Inputs: node.Inputs, Comment: node.Comment,
			User: node.User, ContentsDropped: node.ContentsDropped,
		})
	}
	return gob.NewEncoder(w).Encode(stored)
}

// Read deserializes a graph written by Write, rebuilding the child links.
func Read(r io.Reader) (*Graph, error) {
	var stored []storedNode
	if err := gob.NewDecoder(r).Decode(&stored); err != nil {
		return nil, err
	}
	g := NewGraph()
	for _, sn := range stored {
		g.nodes[sn.Name] = &Node{
			Name: sn.Name, Kind: sn.Kind, Operation: sn.Operation,
			Params: sn.Params, Inputs: sn.Inputs, Comment: sn.Comment,
			User: sn.User, ContentsDropped: sn.ContentsDropped,
			children: make(map[string]bool),
		}
	}
	for _, sn := range stored {
		for _, in := range sn.Inputs {
			parent, ok := g.nodes[in]
			if !ok {
				return nil, fmt.Errorf("lineage: node %q references missing input %q", sn.Name, in)
			}
			parent.children[sn.Name] = true
		}
	}
	return g, nil
}

// Save persists the graph to a file: checksummed, committed atomically via
// temp-and-rename, so a crash mid-save leaves the previous graph intact.
func (g *Graph) Save(path string) error {
	return g.SaveFS(atomicio.OS{}, path)
}

// SaveFS is Save over an injectable filesystem.
func (g *Graph) SaveFS(fsys atomicio.FS, path string) error {
	return atomicio.WriteFileFunc(fsys, path, g.Write)
}

// Load reads a graph saved with Save, verifying its checksum footer.
func Load(path string) (*Graph, error) {
	return LoadFS(atomicio.OS{}, path)
}

// LoadFS is Load over an injectable filesystem.
func LoadFS(fsys atomicio.FS, path string) (*Graph, error) {
	data, err := atomicio.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	g, err := Read(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

package lineage

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := buildBrainHistory(t)
	if err := g.SetComment("brain25k_3", "note to self"); err != nil {
		t.Fatal(err)
	}
	if err := g.DropContents("b25canvscnif_gap1"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names()) != len(g.Names()) {
		t.Fatalf("node counts differ: %v vs %v", got.Names(), g.Names())
	}
	n, err := got.Get("brain25k_3")
	if err != nil {
		t.Fatal(err)
	}
	if n.Comment != "note to self" || n.Params["compactDimension"] != "25000" {
		t.Errorf("node fields lost: %+v", n)
	}
	dropped, err := got.Get("b25canvscnif_gap1")
	if err != nil {
		t.Fatal(err)
	}
	if !dropped.ContentsDropped {
		t.Error("ContentsDropped flag lost")
	}
	// Child links rebuilt: cascade still works.
	deleted, err := got.DeleteCascade("brain25k_3CancerFasTbl")
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 3 {
		t.Errorf("cascade after reload = %v", deleted)
	}
	// Trees agree before mutation: compare against a fresh reload.
	var buf2 bytes.Buffer
	if err := g.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	got2, err := Read(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Tree() != g.Tree() {
		t.Errorf("trees differ after round trip:\n%s\nvs\n%s", got2.Tree(), g.Tree())
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := buildBrainHistory(t)
	path := filepath.Join(t.TempDir(), "lineage.gob")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Has("brain25k_3") {
		t.Error("loaded graph incomplete")
	}
	if _, err := Load("/nonexistent/lineage.gob"); err == nil {
		t.Error("Load(missing): expected error")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not gob data")); err == nil {
		t.Error("expected decode error")
	}
}

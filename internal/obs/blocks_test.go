package obs

import (
	"context"
	"strings"
	"testing"
)

// TestSpanAddBlocks pins the block-statistics plumbing end to end:
// AddBlocks accumulates per-key on the span, the collector folds each
// key into a "columnar.<key>" counter on completion, and the tree
// renderer prints the keys sorted after the workers field.
func TestSpanAddBlocks(t *testing.T) {
	col := NewCollector()
	sc := NewScope(WithCollector(context.Background(), col))

	sp := sc.Start("core.Populate")
	sp.AddBlocks("blocks_scanned", 3)
	sp.AddBlocks("blocks_skipped", 5)
	sp.AddBlocks("blocks_scanned", 2) // accumulates, not replaces
	sp.AddBlocks("bytes_decoded", 4096)
	sp.AddBlocks("bytes_decoded", 0) // zero delta is harmless
	sp.End(OutcomeOK, "", 10, 4, 2)

	r := col.LastRoot()
	if r == nil {
		t.Fatal("no root record delivered")
	}
	if got := r.Blocks["blocks_scanned"]; got != 5 {
		t.Fatalf("blocks_scanned = %d, want 5", got)
	}
	if got := r.Blocks["blocks_skipped"]; got != 5 {
		t.Fatalf("blocks_skipped = %d, want 5", got)
	}
	if got := r.Blocks["bytes_decoded"]; got != 4096 {
		t.Fatalf("bytes_decoded = %d, want 4096", got)
	}

	m := col.Metrics
	if got := m.Counter("columnar.blocks_scanned").Value(); got != 5 {
		t.Fatalf("columnar.blocks_scanned counter = %d, want 5", got)
	}
	if got := m.Counter("columnar.blocks_skipped").Value(); got != 5 {
		t.Fatalf("columnar.blocks_skipped counter = %d, want 5", got)
	}
	if got := m.Counter("columnar.bytes_decoded").Value(); got != 4096 {
		t.Fatalf("columnar.bytes_decoded counter = %d, want 4096", got)
	}

	// The tree line renders keys sorted, after workers, before input.
	line := strings.SplitN(r.Tree(), "\n", 2)[0]
	iw := strings.Index(line, "workers=2")
	i1 := strings.Index(line, "blocks_scanned=5")
	i2 := strings.Index(line, "blocks_skipped=5")
	i3 := strings.Index(line, "bytes_decoded=4096")
	if iw < 0 || i1 < 0 || i2 < 0 || i3 < 0 {
		t.Fatalf("tree line missing block stats: %q", line)
	}
	if !(iw < i1 && i1 < i2 && i2 < i3) {
		t.Fatalf("block stats not sorted after workers: %q", line)
	}
}

// TestAddBlocksNilAndChildFold pins nil-span safety and that a child
// span's block stats are folded into the counters independently of the
// root's — each completed span contributes its own Blocks map.
func TestAddBlocksNilAndChildFold(t *testing.T) {
	var sp *Span
	sp.AddBlocks("blocks_scanned", 9) // disabled path: must not panic

	col := NewCollector()
	sc := NewScope(WithCollector(context.Background(), col))
	root := sc.Start("system.Calculate")
	child := sc.Start("core.Aggregate")
	child.AddBlocks("blocks_scanned", 7)
	child.End(OutcomeOK, "", 4, 2, 1)
	root.End(OutcomeOK, "", 4, 2, 1)

	r := col.LastRoot()
	if len(r.Blocks) != 0 {
		t.Fatalf("root without AddBlocks grew stats: %v", r.Blocks)
	}
	if got := r.Children[0].Blocks["blocks_scanned"]; got != 7 {
		t.Fatalf("child blocks_scanned = %d, want 7", got)
	}
	if got := col.Metrics.Counter("columnar.blocks_scanned").Value(); got != 7 {
		t.Fatalf("columnar.blocks_scanned counter = %d, want 7", got)
	}
	// A span with no block stats must not render the fields at all.
	if strings.Contains(strings.SplitN(r.Tree(), "\n", 2)[0], "blocks_") {
		t.Fatalf("root line renders absent block stats: %q", r.Tree())
	}
}

package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is the lock-cheap metrics store: name lookup takes a
// read-lock, every increment/observation is a plain atomic. Metric
// handles are stable — hot callers should look up once and hold the
// handle.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bound bucket histogram: bounds are ascending
// upper bounds, with one implicit overflow bucket past the last, so
// memory is bounded no matter how many observations arrive.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// LatencyBounds is the shared per-operator latency bucketing, in
// seconds: 100µs up to 100s, one decade per bucket.
var LatencyBounds = []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}

// RateBounds is the shared units-per-second bucketing: 1k up to 1G
// units/s, one decade per bucket.
var RateBounds = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// RatioBounds is the shared bucketing for dimensionless ratios in
// (0, 1] — compression ratios, hit rates. Anything above 1 (e.g. an
// encoding that expanded its input) lands in the overflow bucket.
var RatioBounds = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many samples have been observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the running sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls ignore bounds; the first creation
// wins, so a series keeps one bucketing for its whole life.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// CheckpointHook returns an exec.Hook-shaped adapter that counts
// checkpoint polls into the "exec.checkpoints" counter. It is safe to
// call from concurrent shard workers.
func (r *Registry) CheckpointHook() func(nth int64) {
	ctr := r.Counter("exec.checkpoints")
	return func(int64) { ctr.Add(1) }
}

// CounterPoint is one counter in a Snapshot.
type CounterPoint struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugePoint is one gauge in a Snapshot.
type GaugePoint struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramPoint is one histogram in a Snapshot. Counts has one entry
// per bound plus a final overflow bucket, so len(Counts) ==
// len(Bounds)+1 and no non-finite bound ever reaches JSON.
type HistogramPoint struct {
	Name   string    `json:"name"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot is a point-in-time copy of the registry with deterministic
// (name-sorted) ordering, so tests can golden its JSON form.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Snapshot captures every metric, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		p := HistogramPoint{Name: name, Count: h.Count(), Sum: h.Sum()}
		p.Bounds = append(p.Bounds, h.bounds...)
		p.Counts = make([]int64, len(h.counts))
		for i := range h.counts {
			p.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, p)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// String renders the snapshot as an aligned text block — what the
// repl's "stats" command prints.
func (s Snapshot) String() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-40s %d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-40s %d\n", g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, h := range s.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(&b, "  %-40s n=%d mean=%.3g\n", h.Name, h.Count, mean)
		}
	}
	if b.Len() == 0 {
		return "no metrics recorded\n"
	}
	return b.String()
}

// publishMu serialises the check-then-publish below; expvar itself
// panics on a duplicate name.
var publishMu sync.Mutex

// Publish exposes the registry's Snapshot on expvar under name, for
// the serve -debug /debug/vars endpoint. Publishing the same name
// twice is a no-op rather than the expvar panic, so tests and repeated
// serve sessions in one process stay safe.
func (r *Registry) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(2)
	c.Add(3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("a") != c {
		t.Fatal("counter handle must be stable")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Fatalf("gauge = %d", g.Value())
	}
	if r.Gauge("g") != g {
		t.Fatal("gauge handle must be stable")
	}

	// Nil handles and a nil registry are inert, never a crash.
	var nc *Counter
	nc.Add(1)
	var ng *Gauge
	ng.Add(1)
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 || nh.Sum() != 0 {
		t.Fatal("nil metric handles must read zero")
	}
	var nr *Registry
	if nr.Counter("x") != nil || nr.Gauge("x") != nil || nr.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	if got := nr.Snapshot(); len(got.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	if r.Histogram("lat", []float64{999}) != h {
		t.Fatal("histogram handle must be stable; first bounds win")
	}
	for _, v := range []float64{0.5, 1, 2, 10.1, 1e6} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-(0.5+1+2+10.1+1e6)) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot lost the histogram: %+v", snap)
	}
	p := snap.Histograms[0]
	if len(p.Counts) != len(p.Bounds)+1 {
		t.Fatalf("bucket shape wrong: %d counts for %d bounds", len(p.Counts), len(p.Bounds))
	}
	// le=1 gets 0.5 and the exact boundary 1; le=10 gets 2; le=100
	// gets 10.1; overflow gets 1e6.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if p.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, p.Counts[i], w, p.Counts)
		}
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(1)
	r.Counter("alpha").Add(2)
	r.Gauge("mid").Set(3)
	r.Histogram("h2", LatencyBounds).Observe(0.5)
	r.Histogram("h1", RateBounds).Observe(5e4)
	a, _ := json.Marshal(r.Snapshot())
	b, _ := json.Marshal(r.Snapshot())
	if string(a) != string(b) {
		t.Fatal("snapshot JSON must be byte-stable")
	}
	s := r.Snapshot()
	if s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zeta" {
		t.Fatalf("counters unsorted: %+v", s.Counters)
	}
	if s.Histograms[0].Name != "h1" || s.Histograms[1].Name != "h2" {
		t.Fatalf("histograms unsorted: %+v", s.Histograms)
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	if got := r.Snapshot().String(); !strings.Contains(got, "no metrics") {
		t.Fatalf("empty snapshot rendered %q", got)
	}
	r.Counter("ops.core.Diff.count").Add(2)
	r.Gauge("spans.active").Set(1)
	r.Histogram("ops.core.Diff.latency_s", LatencyBounds).Observe(0.25)
	got := r.Snapshot().String()
	for _, want := range []string{"counters:", "ops.core.Diff.count", "gauges:", "histograms:", "n=1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("stats rendering missing %q:\n%s", want, got)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared").Add(1)
				r.Gauge("g").Add(1)
				r.Histogram("h", LatencyBounds).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 1600 {
		t.Fatalf("lost counter increments: %d", got)
	}
	if got := r.Histogram("h", LatencyBounds).Count(); got != 1600 {
		t.Fatalf("lost observations: %d", got)
	}
	if got := r.Histogram("h", LatencyBounds).Sum(); math.Abs(got-1.6) > 1e-9 {
		t.Fatalf("CAS sum drifted: %v", got)
	}
}

func TestPublishIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub.count").Add(7)
	const name = "gea_obs_test_metrics"
	r.Publish(name)
	r.Publish(name) // second publish must not panic
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("registry not published")
	}
	if !strings.Contains(v.String(), "pub.count") {
		t.Fatalf("published var missing metric: %s", v.String())
	}
}

func TestCheckpointHook(t *testing.T) {
	r := NewRegistry()
	h := r.CheckpointHook()
	h(1)
	h(2)
	if got := r.Counter("exec.checkpoints").Value(); got != 2 {
		t.Fatalf("hook counted %d", got)
	}
}

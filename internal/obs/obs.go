// Package obs is GEA's observability layer: spans, run records and
// metrics over the execution substrate. It is strictly zero-dependency
// (standard library only) and strictly opt-in — when no Collector is
// installed on the context, every entry point degrades to a nil-safe
// no-op and the operator hot path pays nothing beyond one context
// lookup per invocation (the same discipline as exec's hook-only
// checkpoint numbering).
//
// The model has three layers:
//
//   - A Span is one operator run in flight. internal/exec opens one at
//     the top of every metered implementation (Ctl.StartSpan) and
//     closes it on the way out (Ctl.EndSpan), so spans nest exactly as
//     the With-call tree does: a composite like core.Mine shows its
//     aggregate and populate stages as children.
//   - A Record is the immutable result of a completed span: operator
//     name, input shape, units charged, checkpoints polled, worker
//     count, wall time, outcome, children. Completed root records are
//     kept in the Collector's bounded ring and can be linked into the
//     lineage graph so provenance and performance live in one place.
//   - The Registry holds the metrics — counters, gauges and bounded
//     histograms — fed from span completion and from an exec checkpoint
//     hook adapter, and exports a deterministic Snapshot for goldens
//     plus an expvar publication for the serve endpoint.
//
// Concurrency: a Scope (one span stack) is forked per exec.New, so
// concurrent operator invocations sharing one context never interleave
// their span trees; the Collector and Registry are safe for concurrent
// use.
package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Outcome classifies how a span ended.
type Outcome string

const (
	// OutcomeOK is a clean, complete run.
	OutcomeOK Outcome = "ok"
	// OutcomePartial is a budget-truncated run that returned a flagged
	// prefix (Trace.Partial) rather than an error.
	OutcomePartial Outcome = "partial"
	// OutcomeCanceled is a run cut short by context cancellation or a
	// deadline expiry.
	OutcomeCanceled Outcome = "canceled"
	// OutcomeBudget is a run that surfaced budget exhaustion as an
	// error (composites that cannot assemble even a prefix).
	OutcomeBudget Outcome = "budget"
	// OutcomeError is an operator-level failure.
	OutcomeError Outcome = "error"
	// OutcomePanic is a run whose implementation panicked; the span was
	// closed during unwinding, before exec.Guard structured the panic.
	OutcomePanic Outcome = "panic"
	// OutcomeAbandoned marks an inner span force-closed because an
	// enclosing span ended while it was still open. It indicates an
	// instrumentation gap, never a normal path.
	OutcomeAbandoned Outcome = "abandoned"
)

// Record is the immutable result of a completed span. WallNS rather
// than time.Duration keeps the JSON form explicit for geabench and the
// serve span-dump endpoint.
type Record struct {
	Op          string  `json:"op"`
	Input       string  `json:"input,omitempty"`
	Outcome     Outcome `json:"outcome"`
	Err         string  `json:"err,omitempty"`
	Units       int64   `json:"units"`
	Checkpoints int64   `json:"checkpoints"`
	Workers     int     `json:"workers,omitempty"`
	WallNS      int64   `json:"wall_ns"`
	// Blocks holds the span's columnar block statistics — keys like
	// "blocks_scanned", "blocks_skipped", "bytes_decoded" — reported by
	// operators that ran a block-kernel path. The collector folds each
	// key into the "columnar.<key>" counter on completion.
	Blocks   map[string]int64 `json:"blocks,omitempty"`
	Children []*Record        `json:"children,omitempty"`
}

// Walk visits r and every descendant in depth-first pre-order.
func (r *Record) Walk(fn func(*Record)) {
	if r == nil {
		return
	}
	fn(r)
	for _, c := range r.Children {
		c.Walk(fn)
	}
}

// Find returns the first record (pre-order) whose Op equals op, or nil.
func (r *Record) Find(op string) *Record {
	var found *Record
	r.Walk(func(n *Record) {
		if found == nil && n.Op == op {
			found = n
		}
	})
	return found
}

// Tree renders the record as an indented tree, one span per line —
// what the repl's "explain last" prints.
func (r *Record) Tree() string {
	var b strings.Builder
	r.tree(&b, 0)
	return b.String()
}

func (r *Record) tree(b *strings.Builder, depth int) {
	if r == nil {
		return
	}
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s %s units=%d checkpoints=%d wall=%s",
		r.Op, r.Outcome, r.Units, r.Checkpoints, time.Duration(r.WallNS).Round(time.Microsecond))
	if r.Workers > 1 {
		fmt.Fprintf(b, " workers=%d", r.Workers)
	}
	if len(r.Blocks) > 0 {
		keys := make([]string, 0, len(r.Blocks))
		for k := range r.Blocks {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, " %s=%d", k, r.Blocks[k])
		}
	}
	if r.Input != "" {
		fmt.Fprintf(b, " (%s)", r.Input)
	}
	if r.Err != "" {
		fmt.Fprintf(b, " err=%q", r.Err)
	}
	b.WriteByte('\n')
	for _, c := range r.Children {
		c.tree(b, depth+1)
	}
}

// Collector receives completed root records and owns the metrics
// registry they feed. Safe for concurrent use.
type Collector struct {
	// Metrics is the registry fed by span completion; callers may also
	// record their own series on it.
	Metrics *Registry

	mu    sync.Mutex
	keep  int
	roots []*Record // oldest first, bounded to keep
}

// defaultKeep bounds the root-record ring: enough for a whole repl
// session's pipeline without unbounded growth under serve.
const defaultKeep = 32

// NewCollector returns a Collector with a fresh Registry and the
// default root-record retention.
func NewCollector() *Collector {
	return &Collector{Metrics: NewRegistry(), keep: defaultKeep}
}

// SetKeep bounds how many completed root records the collector
// retains (minimum 1).
func (c *Collector) SetKeep(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.keep = n
	for len(c.roots) > c.keep {
		c.roots = c.roots[1:]
	}
	c.mu.Unlock()
}

// LastRoot returns the most recently completed root record, or nil.
func (c *Collector) LastRoot() *Record {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.roots) == 0 {
		return nil
	}
	return c.roots[len(c.roots)-1]
}

// Roots returns the retained root records, oldest first.
func (c *Collector) Roots() []*Record {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Record, len(c.roots))
	copy(out, c.roots)
	return out
}

// ExecHook returns a checkpoint hook (exec.Hook-shaped) that counts
// checkpoints into the collector's registry; install it with
// exec.WithHook to meter poll cadence alongside spans.
func (c *Collector) ExecHook() func(nth int64) {
	return c.Metrics.CheckpointHook()
}

// finish records a completed span into the metrics and, for roots,
// the ring.
func (c *Collector) finish(r *Record, root bool) {
	m := c.Metrics
	m.Counter("ops." + r.Op + ".count").Add(1)
	m.Counter("ops." + r.Op + ".units").Add(r.Units)
	if r.Outcome != OutcomeOK {
		m.Counter("ops." + r.Op + "." + string(r.Outcome)).Add(1)
	}
	secs := float64(r.WallNS) / 1e9
	m.Histogram("ops."+r.Op+".latency_s", LatencyBounds).Observe(secs)
	if r.Units > 0 && secs > 0 {
		m.Histogram("ops."+r.Op+".units_per_s", RateBounds).Observe(float64(r.Units) / secs)
	}
	for k, v := range r.Blocks {
		m.Counter("columnar." + k).Add(v)
	}
	m.Counter("spans.completed").Add(1)
	m.Gauge("spans.active").Add(-1)
	if !root {
		return
	}
	m.Counter("spans.roots").Add(1)
	c.mu.Lock()
	c.roots = append(c.roots, r)
	if len(c.roots) > c.keep {
		c.roots = c.roots[1:]
	}
	c.mu.Unlock()
}

type collectorKey struct{}

// WithCollector installs col on the context: every governed operator
// run under ctx records spans and metrics into it. A nil col returns
// ctx unchanged.
func WithCollector(ctx context.Context, col *Collector) context.Context {
	if col == nil {
		return ctx
	}
	return context.WithValue(ctx, collectorKey{}, col)
}

// FromContext returns the installed Collector, or nil.
func FromContext(ctx context.Context) *Collector {
	if ctx == nil {
		return nil
	}
	col, _ := ctx.Value(collectorKey{}).(*Collector)
	return col
}

// Scope is one invocation's span stack. exec.New forks a fresh Scope
// per governed invocation, so concurrent operators sharing a context
// never interleave their trees; within one invocation the With-call
// chain is sequential, but Start/End still lock so shard-adjacent
// hooks observed under -race stay clean.
type Scope struct {
	col *Collector

	mu   sync.Mutex
	cur  *Span
	root *Record // last completed root of this scope
}

// NewScope returns a Scope bound to the context's Collector, or nil
// when none is installed — the disabled path.
func NewScope(ctx context.Context) *Scope {
	col := FromContext(ctx)
	if col == nil {
		return nil
	}
	return &Scope{col: col}
}

// Root returns the scope's last completed root record, or nil. Because
// a Scope belongs to exactly one invocation, this is that invocation's
// own run record — safe to link into lineage after the operator
// returns.
func (s *Scope) Root() *Record {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root
}

// Span is one operator run in flight. All methods are nil-receiver
// safe: the disabled path hands out nil spans.
type Span struct {
	scope      *Scope
	parent     *Span
	rec        *Record
	start      time.Time
	baseUnits  int64
	baseChecks int64
	ended      bool
}

// Start opens a span named op as a child of the scope's current span
// and makes it current.
func (s *Scope) Start(op string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	sp := &Span{scope: s, parent: s.cur, rec: &Record{Op: op}, start: time.Now()}
	s.cur = sp
	s.mu.Unlock()
	s.col.Metrics.Gauge("spans.active").Add(1)
	return sp
}

// Baseline records the Ctl's unit/checkpoint totals at span open, so
// End can charge the span the inclusive delta.
func (sp *Span) Baseline(units, checkpoints int64) {
	if sp == nil {
		return
	}
	sp.baseUnits = units
	sp.baseChecks = checkpoints
}

// SetInput describes the operator's input shape (e.g. "enum E: 40
// libraries x 1000 tags"). The format string is only rendered when the
// span is live.
func (sp *Span) SetInput(format string, args ...any) {
	if sp == nil {
		return
	}
	sp.rec.Input = fmt.Sprintf(format, args...)
}

// AddBlocks accumulates a columnar block statistic on the span (e.g.
// "blocks_skipped"). Like SetInput it must be called from the
// operator's own goroutine before the span ends; block-kernel
// operators report totals after their shard loop completes.
func (sp *Span) AddBlocks(key string, n int64) {
	if sp == nil || n == 0 {
		return
	}
	if sp.rec.Blocks == nil {
		sp.rec.Blocks = make(map[string]int64)
	}
	sp.rec.Blocks[key] += n
}

// Rec returns the span's record. Its fields are final only once the
// span has ended.
func (sp *Span) Rec() *Record {
	if sp == nil {
		return nil
	}
	return sp.rec
}

// End closes the span with its outcome and the Ctl's final
// unit/checkpoint totals, delivering the completed record to the
// parent span (or, for a root, to the collector). Inner spans still
// open — possible only when an instrumentation defer was skipped — are
// force-closed as OutcomeAbandoned first, so the tree is always
// complete. Ending an already-ended span is a no-op.
func (sp *Span) End(outcome Outcome, errMsg string, units, checkpoints int64, workers int) {
	if sp == nil || sp.ended {
		return
	}
	s := sp.scope
	s.mu.Lock()
	for s.cur != nil && s.cur != sp {
		s.cur.close(OutcomeAbandoned, "", units, checkpoints, workers)
	}
	if s.cur == sp {
		sp.close(outcome, errMsg, units, checkpoints, workers)
	}
	s.mu.Unlock()
}

// close finalizes the record and pops the span; the scope lock is held.
func (sp *Span) close(outcome Outcome, errMsg string, units, checkpoints int64, workers int) {
	s := sp.scope
	r := sp.rec
	r.Outcome = outcome
	r.Err = errMsg
	r.Units = units - sp.baseUnits
	if r.Units < 0 {
		r.Units = 0
	}
	r.Checkpoints = checkpoints - sp.baseChecks
	if r.Checkpoints < 0 {
		r.Checkpoints = 0
	}
	r.Workers = workers
	r.WallNS = time.Since(sp.start).Nanoseconds()
	sp.ended = true
	s.cur = sp.parent
	root := sp.parent == nil
	if !root {
		sp.parent.rec.Children = append(sp.parent.rec.Children, r)
	} else {
		s.root = r
	}
	s.col.finish(r, root)
}

package obs

import (
	"context"
	"strings"
	"testing"
)

func TestFromContextAndScope(t *testing.T) {
	if FromContext(nil) != nil {
		t.Fatal("nil context should carry no collector")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("bare context should carry no collector")
	}
	if NewScope(context.Background()) != nil {
		t.Fatal("scope without a collector must be nil — the disabled path")
	}
	col := NewCollector()
	ctx := WithCollector(context.Background(), col)
	if FromContext(ctx) != col {
		t.Fatal("collector did not round-trip through the context")
	}
	if NewScope(ctx) == nil {
		t.Fatal("scope should exist once a collector is installed")
	}
	if WithCollector(ctx, nil) != ctx {
		t.Fatal("installing a nil collector should return ctx unchanged")
	}
}

func TestNilSafety(t *testing.T) {
	// The disabled path hands out nil scopes and spans; every method
	// must be a no-op, not a crash.
	var s *Scope
	if s.Start("x") != nil {
		t.Fatal("nil scope must start nil spans")
	}
	if s.Root() != nil {
		t.Fatal("nil scope has no root")
	}
	var sp *Span
	sp.Baseline(1, 1)
	sp.SetInput("unused %d", 1)
	sp.End(OutcomeOK, "", 0, 0, 1)
	if sp.Rec() != nil {
		t.Fatal("nil span has no record")
	}
	var r *Record
	r.Walk(func(*Record) { t.Fatal("nil record must not be visited") })
	var c *Collector
	if c.LastRoot() != nil || c.Roots() != nil {
		t.Fatal("nil collector must report nothing")
	}
}

func TestSpanTreeNesting(t *testing.T) {
	col := NewCollector()
	sc := NewScope(WithCollector(context.Background(), col))

	root := sc.Start("system.Calculate")
	root.Baseline(0, 0)
	root.SetInput("%d fascicles", 3)
	child := sc.Start("core.Mine")
	child.Baseline(2, 1)
	grand := sc.Start("core.Aggregate")
	grand.Baseline(5, 2)
	grand.End(OutcomeOK, "", 9, 4, 1)
	child.End(OutcomePartial, "", 10, 5, 2)
	if sc.Root() != nil {
		t.Fatal("root record must not appear before the root span ends")
	}
	root.End(OutcomeOK, "", 12, 6, 4)

	r := sc.Root()
	if r == nil {
		t.Fatal("no root record delivered")
	}
	if r.Op != "system.Calculate" || r.Units != 12 || r.Checkpoints != 6 || r.Workers != 4 {
		t.Fatalf("root mis-recorded: %+v", r)
	}
	if r.Input != "3 fascicles" {
		t.Fatalf("input shape lost: %q", r.Input)
	}
	if len(r.Children) != 1 || r.Children[0].Op != "core.Mine" {
		t.Fatalf("child tree wrong: %+v", r.Children)
	}
	mine := r.Children[0]
	if mine.Units != 8 || mine.Checkpoints != 4 || mine.Outcome != OutcomePartial {
		t.Fatalf("inclusive delta accounting broken: %+v", mine)
	}
	if got := r.Find("core.Aggregate"); got == nil || got.Units != 4 {
		t.Fatalf("Find missed the grandchild: %+v", got)
	}
	if r.Find("no.Such") != nil {
		t.Fatal("Find invented a span")
	}
	var visited []string
	r.Walk(func(n *Record) { visited = append(visited, n.Op) })
	want := "system.Calculate,core.Mine,core.Aggregate"
	if strings.Join(visited, ",") != want {
		t.Fatalf("walk order %v, want %s", visited, want)
	}
	if col.LastRoot() != r {
		t.Fatal("collector did not retain the root")
	}
}

func TestSpanOutcomeAndMetrics(t *testing.T) {
	col := NewCollector()
	sc := NewScope(WithCollector(context.Background(), col))
	sp := sc.Start("core.Diff")
	sp.End(OutcomeCanceled, "context canceled", 7, 3, 1)

	m := col.Metrics
	if got := m.Counter("ops.core.Diff.count").Value(); got != 1 {
		t.Fatalf("count = %d", got)
	}
	if got := m.Counter("ops.core.Diff.units").Value(); got != 7 {
		t.Fatalf("units = %d", got)
	}
	if got := m.Counter("ops.core.Diff.canceled").Value(); got != 1 {
		t.Fatalf("canceled = %d", got)
	}
	if got := m.Gauge("spans.active").Value(); got != 0 {
		t.Fatalf("active gauge leaked: %d", got)
	}
	if got := m.Counter("spans.roots").Value(); got != 1 {
		t.Fatalf("roots = %d", got)
	}
	if got := m.Histogram("ops.core.Diff.latency_s", LatencyBounds).Count(); got != 1 {
		t.Fatalf("latency samples = %d", got)
	}
	r := col.LastRoot()
	if r.Outcome != OutcomeCanceled || r.Err != "context canceled" {
		t.Fatalf("outcome mis-recorded: %+v", r)
	}
}

func TestSpanDoubleEndAndAbandon(t *testing.T) {
	col := NewCollector()
	sc := NewScope(WithCollector(context.Background(), col))
	root := sc.Start("outer")
	inner := sc.Start("inner")
	// The outer span ends while the inner is still open: the inner is
	// force-closed as abandoned so the tree stays complete.
	root.End(OutcomeError, "boom", 4, 2, 1)
	r := sc.Root()
	if len(r.Children) != 1 || r.Children[0].Outcome != OutcomeAbandoned {
		t.Fatalf("open child not abandoned: %+v", r.Children)
	}
	// Both further Ends are no-ops.
	inner.End(OutcomeOK, "", 9, 9, 9)
	root.End(OutcomeOK, "", 9, 9, 9)
	if r.Outcome != OutcomeError || r.Units != 4 {
		t.Fatalf("double End mutated the record: %+v", r)
	}
	if got := col.Metrics.Gauge("spans.active").Value(); got != 0 {
		t.Fatalf("active gauge = %d after abandon", got)
	}
	if got := col.Metrics.Counter("spans.completed").Value(); got != 2 {
		t.Fatalf("completed = %d, want 2", got)
	}
}

func TestNegativeDeltasClamp(t *testing.T) {
	col := NewCollector()
	sc := NewScope(WithCollector(context.Background(), col))
	sp := sc.Start("odd")
	sp.Baseline(10, 10)
	sp.End(OutcomeOK, "", 3, 3, 1) // totals below baseline: clamp, don't go negative
	r := col.LastRoot()
	if r.Units != 0 || r.Checkpoints != 0 {
		t.Fatalf("deltas must clamp at zero: %+v", r)
	}
}

func TestCollectorRing(t *testing.T) {
	col := NewCollector()
	col.SetKeep(2)
	ctx := WithCollector(context.Background(), col)
	for i := 0; i < 4; i++ {
		sc := NewScope(ctx)
		sp := sc.Start("op")
		sp.End(OutcomeOK, "", int64(i), 0, 1)
	}
	roots := col.Roots()
	if len(roots) != 2 {
		t.Fatalf("ring kept %d roots, want 2", len(roots))
	}
	if roots[0].Units != 2 || roots[1].Units != 3 {
		t.Fatalf("ring kept wrong roots: %+v", roots)
	}
	if col.LastRoot() != roots[1] {
		t.Fatal("LastRoot disagrees with Roots")
	}
	col.SetKeep(0) // clamps to 1 and trims
	if got := len(col.Roots()); got != 1 {
		t.Fatalf("SetKeep(0) kept %d", got)
	}
}

func TestRecordTreeRendering(t *testing.T) {
	r := &Record{
		Op: "core.Mine", Outcome: OutcomeOK, Units: 10, Checkpoints: 5,
		Workers: 4, WallNS: 1500, Input: "40 libs",
		Children: []*Record{
			{Op: "core.Aggregate", Outcome: OutcomeError, Err: "boom", Units: 4, WallNS: 500},
		},
	}
	got := r.Tree()
	for _, want := range []string{
		"core.Mine ok units=10", "workers=4", "(40 libs)",
		"\n  core.Aggregate error", `err="boom"`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("tree rendering missing %q:\n%s", want, got)
		}
	}
	var empty *Record
	if empty.Tree() != "" {
		t.Fatal("nil record should render empty")
	}
}

func TestExecHookCountsCheckpoints(t *testing.T) {
	col := NewCollector()
	h := col.ExecHook()
	for i := 0; i < 5; i++ {
		h(int64(i + 1))
	}
	if got := col.Metrics.Counter("exec.checkpoints").Value(); got != 5 {
		t.Fatalf("hook counted %d checkpoints", got)
	}
}

package relational

import (
	"fmt"
	"sort"
)

// Index is a sorted column index supporting point and range lookups. It is
// the structure the optimized populate() operator of Section 3.3.2 relies
// on: a range condition on an indexed tag becomes a binary search plus a
// contiguous scan instead of a pass over every row.
type Index struct {
	col     int
	entries []indexEntry // sorted by value
}

type indexEntry struct {
	v   Value
	row int
}

// CreateIndex builds (or rebuilds) a sorted index on the named column and
// returns it. The index is also retained by the table for use by
// SelectRange.
func (t *Table) CreateIndex(name string) (*Index, error) {
	col := t.Schema.Col(name)
	if col < 0 {
		return nil, fmt.Errorf("relational: %s: no column %q", t.Name, name)
	}
	idx := &Index{col: col, entries: make([]indexEntry, 0, len(t.Rows))}
	for i, r := range t.Rows {
		idx.entries = append(idx.entries, indexEntry{v: r[col], row: i})
	}
	sort.SliceStable(idx.entries, func(a, b int) bool {
		return Compare(idx.entries[a].v, idx.entries[b].v) < 0
	})
	if t.indexes == nil {
		t.indexes = make(map[int]*Index)
	}
	t.indexes[col] = idx
	return idx, nil
}

// HasIndex reports whether the named column currently has an index.
func (t *Table) HasIndex(name string) bool {
	col := t.Schema.Col(name)
	if col < 0 {
		return false
	}
	_, ok := t.indexes[col]
	return ok
}

// DropIndex removes the index on the named column, if any.
func (t *Table) DropIndex(name string) {
	col := t.Schema.Col(name)
	if col >= 0 {
		delete(t.indexes, col)
	}
}

// IndexedColumns returns the names of currently indexed columns, sorted by
// column position.
func (t *Table) IndexedColumns() []string {
	cols := make([]int, 0, len(t.indexes))
	for c := range t.indexes {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = t.Schema[c].Name
	}
	return names
}

// add maintains sortedness on insert.
func (idx *Index) add(v Value, row int) {
	i := sort.Search(len(idx.entries), func(i int) bool {
		return Compare(idx.entries[i].v, v) > 0
	})
	idx.entries = append(idx.entries, indexEntry{})
	copy(idx.entries[i+1:], idx.entries[i:])
	idx.entries[i] = indexEntry{v: v, row: row}
}

// RangeRows returns the row numbers whose indexed value lies in [lo, hi].
func (idx *Index) RangeRows(lo, hi Value) []int {
	start := sort.Search(len(idx.entries), func(i int) bool {
		return Compare(idx.entries[i].v, lo) >= 0
	})
	var rows []int
	for i := start; i < len(idx.entries); i++ {
		if Compare(idx.entries[i].v, hi) > 0 {
			break
		}
		rows = append(rows, idx.entries[i].row)
	}
	return rows
}

// EqRows returns the row numbers whose indexed value equals v.
func (idx *Index) EqRows(v Value) []int { return idx.RangeRows(v, v) }

// Len returns the number of indexed entries.
func (idx *Index) Len() int { return len(idx.entries) }

// SelectRange evaluates lo <= col <= hi, using the column's index when one
// exists and a sequential scan otherwise. It returns matching row numbers in
// ascending order.
func (t *Table) SelectRange(name string, lo, hi Value) ([]int, error) {
	col := t.Schema.Col(name)
	if col < 0 {
		return nil, fmt.Errorf("relational: %s: no column %q", t.Name, name)
	}
	if idx, ok := t.indexes[col]; ok {
		rows := idx.RangeRows(lo, hi)
		sort.Ints(rows)
		return rows, nil
	}
	var rows []int
	for i, r := range t.Rows {
		if r[col].IsNull() {
			continue
		}
		if Compare(r[col], lo) >= 0 && Compare(r[col], hi) <= 0 {
			rows = append(rows, i)
		}
	}
	return rows, nil
}

package relational

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

func TestIndexRangeRows(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "v", Kind: KindFloat}})
	for _, v := range []float64{5, 1, 9, 3, 7} {
		tbl.MustInsert(F(v))
	}
	idx, err := tbl.CreateIndex("v")
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 5 {
		t.Errorf("Len = %d", idx.Len())
	}
	rows := idx.RangeRows(F(3), F(7))
	sort.Ints(rows)
	if len(rows) != 3 { // values 3,5,7 at rows 3,0,4
		t.Errorf("RangeRows = %v", rows)
	}
	if got := idx.EqRows(F(9)); len(got) != 1 || got[0] != 2 {
		t.Errorf("EqRows = %v", got)
	}
	if got := idx.RangeRows(F(100), F(200)); len(got) != 0 {
		t.Errorf("empty range = %v", got)
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "v", Kind: KindFloat}})
	tbl.MustInsert(F(2))
	if _, err := tbl.CreateIndex("v"); err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(F(1))
	tbl.MustInsert(F(3))
	rows, err := tbl.SelectRange("v", F(1), F(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 1 {
		t.Errorf("SelectRange after inserts = %v", rows)
	}
}

func TestCreateIndexErrors(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "v", Kind: KindFloat}})
	if _, err := tbl.CreateIndex("nope"); err == nil {
		t.Error("CreateIndex(missing): expected error")
	}
	if tbl.HasIndex("nope") {
		t.Error("HasIndex(missing column) = true")
	}
}

func TestDropIndexAndIndexedColumns(t *testing.T) {
	tbl := NewTable("t", Schema{
		{Name: "a", Kind: KindFloat},
		{Name: "b", Kind: KindFloat},
	})
	tbl.MustInsert(F(1), F(2))
	if _, err := tbl.CreateIndex("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	cols := tbl.IndexedColumns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("IndexedColumns = %v", cols)
	}
	tbl.DropIndex("a")
	if tbl.HasIndex("a") || !tbl.HasIndex("b") {
		t.Error("DropIndex wrong")
	}
	tbl.DropIndex("nope") // no-op
}

// Property: SelectRange with an index returns exactly what a sequential scan
// returns.
func TestSelectRangeIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		tbl := NewTable("t", Schema{{Name: "v", Kind: KindFloat}})
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			tbl.MustInsert(F(float64(rng.Intn(50))))
		}
		lo := float64(rng.Intn(50))
		hi := lo + float64(rng.Intn(20))
		scan, err := tbl.SelectRange("v", F(lo), F(hi))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tbl.CreateIndex("v"); err != nil {
			t.Fatal(err)
		}
		indexed, err := tbl.SelectRange("v", F(lo), F(hi))
		if err != nil {
			t.Fatal(err)
		}
		if len(scan) != len(indexed) {
			t.Fatalf("trial %d: scan %d rows, indexed %d rows", trial, len(scan), len(indexed))
		}
		for i := range scan {
			if scan[i] != indexed[i] {
				t.Fatalf("trial %d: row %d differs (%d vs %d)", trial, i, scan[i], indexed[i])
			}
		}
	}
}

func TestSelectRangeMissingColumn(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "v", Kind: KindFloat}})
	if _, err := tbl.SelectRange("nope", F(0), F(1)); err == nil {
		t.Error("SelectRange(missing): expected error")
	}
}

func TestSelectRangeSkipsNull(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "v", Kind: KindFloat}})
	tbl.MustInsert(Null)
	tbl.MustInsert(F(1))
	rows, err := tbl.SelectRange("v", F(0), F(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0] != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestStoreCRUD(t *testing.T) {
	s := NewStore()
	schema := Schema{{Name: "x", Kind: KindInt}}
	tbl, err := s.Create("t1", schema)
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(I(1))
	if _, err := s.Create("t1", schema); err == nil {
		t.Error("duplicate Create: expected error (redundancy check)")
	}
	got, err := s.Get("t1")
	if err != nil || got.Len() != 1 {
		t.Errorf("Get = %v, %v", got, err)
	}
	if !s.Has("t1") || s.Has("t2") {
		t.Error("Has wrong")
	}
	repl := NewTable("t1", schema)
	s.Replace(repl)
	got, _ = s.Get("t1")
	if got.Len() != 0 {
		t.Error("Replace did not overwrite")
	}
	s.Drop("t1")
	if _, err := s.Get("t1"); err == nil {
		t.Error("Get after Drop: expected error")
	}
	if _, err := s.Create("a", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("b", schema); err != nil {
		t.Fatal(err)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	s.Initialize()
	if len(s.Names()) != 0 {
		t.Error("Initialize did not clear")
	}
}

func TestStoreSaveLoad(t *testing.T) {
	s := NewStore()
	tbl, err := s.Create("Libraries", Schema{
		{Name: "LibID", Kind: KindInt},
		{Name: "Name", Kind: KindString},
		{Name: "Gap", Kind: KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(I(1), S("SAGE_B1"), F(-1.5))
	tbl.MustInsert(I(2), Null, Null)

	path := filepath.Join(t.TempDir(), "store.gob")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := got.Get("Libraries")
	if err != nil {
		t.Fatal(err)
	}
	if lt.Len() != 2 {
		t.Fatalf("loaded %d rows", lt.Len())
	}
	if lt.Rows[0][1].Str() != "SAGE_B1" || !lt.Rows[1][1].IsNull() {
		t.Errorf("loaded rows = %v", lt.Rows)
	}
	if lt.Rows[0][2].Float() != -1.5 {
		t.Errorf("float cell = %v", lt.Rows[0][2])
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/store.gob"); err == nil {
		t.Error("Load(missing): expected error")
	}
}

func TestRotateRoundTrip(t *testing.T) {
	nat := NewTable("SAGE", Schema{
		{Name: "LibraryName", Kind: KindString},
		{Name: "AAAAAAAAAA", Kind: KindFloat},
		{Name: "CCCCCCCCCC", Kind: KindFloat},
	})
	nat.MustInsert(S("L1"), F(10), F(5))
	nat.MustInsert(S("L2"), F(2), F(7))

	rot, err := NaturalToRotated(nat)
	if err != nil {
		t.Fatal(err)
	}
	// Rotated: rows = tags, columns = Attr + libraries.
	if rot.Len() != 2 || len(rot.Schema) != 3 {
		t.Fatalf("rotated dims = %d x %d", rot.Len(), len(rot.Schema))
	}
	if rot.Schema[1].Name != "L1" || rot.Rows[0][0].Str() != "AAAAAAAAAA" {
		t.Errorf("rotated layout wrong: %v / %v", rot.Schema.Names(), rot.Rows[0])
	}
	if rot.Rows[1][2].Float() != 7 {
		t.Errorf("rotated cell = %v", rot.Rows[1][2])
	}

	back, err := RotatedToNatural(rot, "LibraryName")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.Rows[0][0].Str() != "L1" || back.Rows[1][2].Float() != 7 {
		t.Errorf("unrotated = %v", back.Rows)
	}
}

func TestRotateErrors(t *testing.T) {
	bad := NewTable("b", Schema{{Name: "x", Kind: KindInt}})
	if _, err := NaturalToRotated(bad); err == nil {
		t.Error("rotate(no string key): expected error")
	}
	bad2 := NewTable("b2", Schema{
		{Name: "k", Kind: KindString},
		{Name: "v", Kind: KindString},
	})
	if _, err := NaturalToRotated(bad2); err == nil {
		t.Error("rotate(non-numeric attr): expected error")
	}
	bad3 := NewTable("b3", Schema{{Name: "x", Kind: KindInt}})
	if _, err := RotatedToNatural(bad3, "k"); err == nil {
		t.Error("unrotate(no string key): expected error")
	}
}

// TestRotatedSum checks the thesis's example: a conceptual column sum becomes
// a physical row sum after rotation.
func TestRotatedSum(t *testing.T) {
	nat := NewTable("SAGE", Schema{
		{Name: "LibraryName", Kind: KindString},
		{Name: "TAGA", Kind: KindFloat},
	})
	nat.MustInsert(S("L1"), F(10))
	nat.MustInsert(S("L2"), F(32))
	rot, err := NaturalToRotated(nat)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RotatedSum(rot, "TAGA")
	if err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Errorf("RotatedSum = %v, want 42", sum)
	}
	if _, err := RotatedSum(rot, "missing"); err == nil {
		t.Error("RotatedSum(missing): expected error")
	}
}

// TestStoreConcurrentAccess exercises the store's documented thread safety:
// concurrent creates, reads and drops on distinct table names.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	schema := Schema{{Name: "x", Kind: KindInt}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("t%d_%d", g, i)
				tbl, err := s.Create(name, schema)
				if err != nil {
					t.Errorf("Create(%s): %v", name, err)
					return
				}
				tbl.MustInsert(I(int64(i)))
				if _, err := s.Get(name); err != nil {
					t.Errorf("Get(%s): %v", name, err)
					return
				}
				_ = s.Names()
				if i%2 == 0 {
					s.Drop(name)
				}
			}
		}(g)
	}
	wg.Wait()
	// 8 goroutines x 25 surviving tables.
	if got := len(s.Names()); got != 200 {
		t.Errorf("surviving tables = %d, want 200", got)
	}
}

package relational

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randTable builds a random table with an int key, a string group and a
// float value column.
func randTable(rng *rand.Rand, name string) *Table {
	t := NewTable(name, Schema{
		{Name: "k", Kind: KindInt},
		{Name: "grp", Kind: KindString},
		{Name: "v", Kind: KindFloat},
	})
	n := rng.Intn(30)
	for i := 0; i < n; i++ {
		var v Value
		if rng.Float64() < 0.1 {
			v = Null
		} else {
			v = F(float64(rng.Intn(20)))
		}
		t.MustInsert(I(int64(rng.Intn(10))), S(string(rune('a'+rng.Intn(3)))), v)
	}
	return t
}

// Selection laws: σp(σp(T)) = σp(T); σp∧q = σp(σq); |σp| + |σ¬p| = |T|.
func TestRelationalSelectionLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := randTable(rng, "t")
		p := tbl.ColEq("grp", S("a"))
		q := tbl.ColRange("v", 5, 15)

		s1 := tbl.Select(p)
		s2 := s1.Select(p)
		if s1.Len() != s2.Len() {
			return false
		}
		if tbl.Select(And(p, q)).Len() != tbl.Select(q).Select(p).Len() {
			return false
		}
		if tbl.Select(p).Len()+tbl.Select(Not(p)).Len() != tbl.Len() {
			return false
		}
		// De Morgan: ¬(p ∨ q) = ¬p ∧ ¬q.
		if tbl.Select(Not(Or(p, q))).Len() != tbl.Select(And(Not(p), Not(q))).Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Set-operation laws on tables.
func TestRelationalSetLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randTable(rng, "a")
		b := randTable(rng, "b")

		u, err := a.Union(b)
		if err != nil {
			return false
		}
		i, err := a.Intersect(b)
		if err != nil {
			return false
		}
		mAB, err := a.Minus(b)
		if err != nil {
			return false
		}
		mBA, err := b.Minus(a)
		if err != nil {
			return false
		}
		// |A ∪ B| = |A-B| + |B-A| + |A ∩ B| (all as sets).
		if u.Len() != mAB.Len()+mBA.Len()+i.Len() {
			return false
		}
		// Union is commutative (as a set).
		u2, err := b.Union(a)
		if err != nil {
			return false
		}
		if u.Len() != u2.Len() {
			return false
		}
		// A - B and B are disjoint.
		i2, err := mAB.Intersect(b)
		if err != nil {
			return false
		}
		return i2.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Projection drops columns without changing row counts, and Distinct is
// idempotent.
func TestRelationalProjectionLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := randTable(rng, "t")
		p, err := tbl.Project("grp", "v")
		if err != nil {
			return false
		}
		if p.Len() != tbl.Len() {
			return false
		}
		d1 := p.Distinct()
		d2 := d1.Distinct()
		if d1.Len() != d2.Len() {
			return false
		}
		return d1.Len() <= p.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Join row counts: |A ⋈ B| equals the sum over join keys of the product of
// group sizes (NULLs never join).
func TestRelationalJoinCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randTable(rng, "a")
		b := randTable(rng, "b")
		j, err := a.Join(b, "k", "k")
		if err != nil {
			return false
		}
		countA := map[int64]int{}
		for _, r := range a.Rows {
			if !r[0].IsNull() {
				countA[r[0].Int()]++
			}
		}
		want := 0
		for _, r := range b.Rows {
			if !r[0].IsNull() {
				want += countA[r[0].Int()]
			}
		}
		return j.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Aggregation: group counts sum to the table size, and min <= avg <= max per
// group (over non-null inputs).
func TestRelationalAggregateLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := randTable(rng, "t")
		agg, err := tbl.Aggregate([]string{"grp"}, []Agg{
			{Fn: AggCount, As: "n"},
			{Fn: AggMin, Col: "v", As: "lo"},
			{Fn: AggAvg, Col: "v", As: "avg"},
			{Fn: AggMax, Col: "v", As: "hi"},
		})
		if err != nil {
			return false
		}
		total := int64(0)
		for _, r := range agg.Rows {
			total += r[1].Int()
			lo, av, hi := r[2], r[3], r[4]
			if lo.IsNull() != av.IsNull() || av.IsNull() != hi.IsNull() {
				return false
			}
			if !lo.IsNull() {
				if lo.Float() > av.Float()+1e-9 || av.Float() > hi.Float()+1e-9 {
					return false
				}
			}
		}
		return total == int64(tbl.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Sorting is a permutation and is ordered.
func TestRelationalSortLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := randTable(rng, "t")
		sorted, err := tbl.Sort("v", "k")
		if err != nil {
			return false
		}
		if sorted.Len() != tbl.Len() {
			return false
		}
		for i := 1; i < sorted.Len(); i++ {
			if Compare(sorted.Rows[i-1][2], sorted.Rows[i][2]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Rotation round-trips numeric tables exactly.
func TestRotationRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		libs := 1 + rng.Intn(6)
		tags := 1 + rng.Intn(8)
		schema := Schema{{Name: "LibraryName", Kind: KindString}}
		for j := 0; j < tags; j++ {
			schema = append(schema, Column{Name: string(rune('A' + j)), Kind: KindFloat})
		}
		nat := NewTable("nat", schema)
		for i := 0; i < libs; i++ {
			row := make(Row, 0, tags+1)
			row = append(row, S(string(rune('a'+i))))
			for j := 0; j < tags; j++ {
				row = append(row, F(float64(rng.Intn(100))))
			}
			nat.MustInsert(row...)
		}
		rot, err := NaturalToRotated(nat)
		if err != nil {
			return false
		}
		back, err := RotatedToNatural(rot, "LibraryName")
		if err != nil {
			return false
		}
		if back.Len() != nat.Len() {
			return false
		}
		for i := range nat.Rows {
			for j := range nat.Rows[i] {
				if nat.Rows[i][j].String() != back.Rows[i][j].String() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package relational

import "fmt"

// This file implements the rotated physical layout of thesis Section 4.6.1.
// Commercial DBMSs (DB2 included) handle only hundreds of columns, but the
// conceptual SAGE relation has more than 60,000 tag columns. The solution is
// to "rotate" the table in the physical view: conceptually tags are columns,
// physically tags are stored as rows, with one column per library. Standard
// operations must be adjusted accordingly — a conceptual per-tag sum over
// libraries becomes a physical sum across the entries of the tag's row.

// NaturalToRotated transposes a "natural" table (first column: a string
// entity key such as LibraryName; remaining columns: numeric attributes such
// as tags) into its rotated form (first column: attribute name; one numeric
// column per entity). This is the layout conversion applied when the cleaned
// SAGE data is loaded into the TAGS relation.
func NaturalToRotated(t *Table) (*Table, error) {
	if len(t.Schema) < 2 || t.Schema[0].Kind != KindString {
		return nil, fmt.Errorf("relational: rotate: %s must start with a string key column", t.Name)
	}
	for _, c := range t.Schema[1:] {
		if c.Kind != KindFloat && c.Kind != KindInt {
			return nil, fmt.Errorf("relational: rotate: column %s is not numeric", c.Name)
		}
	}
	schema := Schema{{Name: t.Schema[0].Name + "Attr", Kind: KindString}}
	for _, r := range t.Rows {
		schema = append(schema, Column{Name: r[0].Str(), Kind: KindFloat})
	}
	out := NewTable(t.Name+"_rot", schema)
	for j := 1; j < len(t.Schema); j++ {
		row := make(Row, 0, len(t.Rows)+1)
		row = append(row, S(t.Schema[j].Name))
		for _, r := range t.Rows {
			row = append(row, F(r[j].Float()))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// RotatedToNatural inverts NaturalToRotated. keyName names the string key
// column of the reconstructed natural table (e.g. "LibraryName").
func RotatedToNatural(t *Table, keyName string) (*Table, error) {
	if len(t.Schema) < 1 || t.Schema[0].Kind != KindString {
		return nil, fmt.Errorf("relational: unrotate: %s must start with a string attribute column", t.Name)
	}
	schema := Schema{{Name: keyName, Kind: KindString}}
	for _, r := range t.Rows {
		schema = append(schema, Column{Name: r[0].Str(), Kind: KindFloat})
	}
	out := NewTable(t.Name+"_nat", schema)
	for j := 1; j < len(t.Schema); j++ {
		row := make(Row, 0, len(t.Rows)+1)
		row = append(row, S(t.Schema[j].Name))
		for _, r := range t.Rows {
			row = append(row, F(r[j].Float()))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// RotatedSum computes the conceptual per-attribute sum over all entities in a
// rotated table: the sum of the entries of the attribute's physical row.
// This is the thesis's example of an operation whose meaning changes under
// rotation (a conceptual column SUM becomes a physical row sum).
func RotatedSum(t *Table, attr string) (float64, error) {
	for _, r := range t.Rows {
		if r[0].Str() == attr {
			var sum float64
			for _, v := range r[1:] {
				sum += v.Float()
			}
			return sum, nil
		}
	}
	return 0, fmt.Errorf("relational: rotated table %s has no attribute %q", t.Name, attr)
}

package relational

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"

	"gea/internal/atomicio"
)

// Store is a named-table catalog — the GEA's "database". It is safe for
// concurrent use; individual tables are not, so callers mutate a table only
// while holding it exclusively (the GEA system layer serializes operations).
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// Create adds a new empty table. It fails if the name exists — the
// redundancy check of Section 4.4.5.2 is the caller's opportunity to ask the
// user before calling Replace instead.
func (s *Store) Create(name string, schema Schema) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[name]; exists {
		return nil, fmt.Errorf("relational: table %q already exists", name)
	}
	t := NewTable(name, schema)
	s.tables[name] = t
	return t, nil
}

// Replace installs the table under its name, overwriting any existing one.
func (s *Store) Replace(t *Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[t.Name] = t
}

// Get returns the named table, or an error.
func (s *Store) Get(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("relational: no table %q", name)
	}
	return t, nil
}

// Has reports whether a table exists.
func (s *Store) Has(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.tables[name]
	return ok
}

// Drop removes a table; it is a no-op for missing tables.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.tables, name)
}

// Names returns all table names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Initialize drops every table — the "initialize database" operation of
// Appendix III.2.1.
func (s *Store) Initialize() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables = make(map[string]*Table)
}

// storedTable is the persisted form (indexes are rebuilt on demand).
type storedTable struct {
	Name   string
	Schema Schema
	Rows   []Row
}

// Save persists the store to path with encoding/gob, checksummed and
// committed atomically so a crash mid-save leaves the previous catalog
// intact.
func (s *Store) Save(path string) error {
	return s.SaveFS(atomicio.OS{}, path)
}

// SaveFS is Save over an injectable filesystem.
func (s *Store) SaveFS(fsys atomicio.FS, path string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return atomicio.WriteFileFunc(fsys, path, func(w io.Writer) error {
		enc := gob.NewEncoder(w)
		names := make([]string, 0, len(s.tables))
		for n := range s.tables {
			names = append(names, n)
		}
		sort.Strings(names)
		if err := enc.Encode(len(names)); err != nil {
			return err
		}
		for _, n := range names {
			t := s.tables[n]
			if err := enc.Encode(storedTable{Name: t.Name, Schema: t.Schema, Rows: t.Rows}); err != nil {
				return err
			}
		}
		return nil
	})
}

// Load reads a store previously written by Save, verifying its checksum
// footer.
func Load(path string) (*Store, error) {
	return LoadFS(atomicio.OS{}, path)
}

// LoadFS is Load over an injectable filesystem.
func LoadFS(fsys atomicio.FS, path string) (*Store, error) {
	data, err := atomicio.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	dec := gob.NewDecoder(bytes.NewReader(data))
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if n < 0 {
		return nil, fmt.Errorf("%s: negative table count %d", path, n)
	}
	s := NewStore()
	for i := 0; i < n; i++ {
		var st storedTable
		if err := dec.Decode(&st); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		s.tables[st.Name] = &Table{Name: st.Name, Schema: st.Schema, Rows: st.Rows}
	}
	return s, nil
}

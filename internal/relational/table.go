package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// Col returns the index of the named column, or -1.
func (s Schema) Col(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustCol returns the index of the named column or panics; for literals.
func (s Schema) MustCol(name string) int {
	i := s.Col(name)
	if i < 0 {
		panic(fmt.Sprintf("relational: no column %q", name))
	}
	return i
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Row is one tuple.
type Row []Value

// Table is a relation instance: a schema plus rows, with optional sorted
// column indexes. A Table is not safe for concurrent mutation.
type Table struct {
	Name    string
	Schema  Schema
	Rows    []Row
	indexes map[int]*Index // by column position
}

// NewTable returns an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// validateRow checks arity and that each value's kind matches its column
// (NULL is allowed in any column).
func (t *Table) validateRow(r Row) error {
	if len(r) != len(t.Schema) {
		return fmt.Errorf("relational: %s: row arity %d, want %d", t.Name, len(r), len(t.Schema))
	}
	for i, v := range r {
		if v.K != KindNull && v.K != t.Schema[i].Kind {
			return fmt.Errorf("relational: %s: column %s expects %v, got %v",
				t.Name, t.Schema[i].Name, t.Schema[i].Kind, v.K)
		}
	}
	return nil
}

// Insert appends a row after validating it, updating any indexes.
func (t *Table) Insert(r Row) error {
	if err := t.validateRow(r); err != nil {
		return err
	}
	t.Rows = append(t.Rows, r)
	for col, idx := range t.indexes {
		idx.add(r[col], len(t.Rows)-1)
	}
	return nil
}

// MustInsert inserts and panics on error; for static fixtures.
func (t *Table) MustInsert(vals ...Value) {
	if err := t.Insert(Row(vals)); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Predicate decides whether a row qualifies.
type Predicate func(Row) bool

// ColEq returns a predicate testing column col for equality with v.
func (t *Table) ColEq(name string, v Value) Predicate {
	col := t.Schema.MustCol(name)
	return func(r Row) bool { return Equal(r[col], v) }
}

// ColRange returns a predicate testing lo <= column <= hi (numeric).
func (t *Table) ColRange(name string, lo, hi float64) Predicate {
	col := t.Schema.MustCol(name)
	return func(r Row) bool {
		if r[col].IsNull() {
			return false
		}
		f := r[col].Float()
		return lo <= f && f <= hi
	}
}

// And combines predicates conjunctively.
func And(ps ...Predicate) Predicate {
	return func(r Row) bool {
		for _, p := range ps {
			if !p(r) {
				return false
			}
		}
		return true
	}
}

// Or combines predicates disjunctively.
func Or(ps ...Predicate) Predicate {
	return func(r Row) bool {
		for _, p := range ps {
			if p(r) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Predicate) Predicate { return func(r Row) bool { return !p(r) } }

// Select returns a new table with the rows satisfying pred (σ).
func (t *Table) Select(pred Predicate) *Table {
	out := NewTable(t.Name+"_sel", t.Schema)
	for _, r := range t.Rows {
		if pred(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// Delete removes the rows satisfying pred in place and drops all indexes
// (they would be invalidated by the row renumbering). It returns the number
// of rows removed.
func (t *Table) Delete(pred Predicate) int {
	kept := t.Rows[:0]
	removed := 0
	for _, r := range t.Rows {
		if pred(r) {
			removed++
		} else {
			kept = append(kept, r)
		}
	}
	t.Rows = kept
	t.indexes = nil
	return removed
}

// Update applies fn to every row satisfying pred and returns the count.
// Indexes are dropped, as with Delete.
func (t *Table) Update(pred Predicate, fn func(Row)) int {
	n := 0
	for _, r := range t.Rows {
		if pred(r) {
			fn(r)
			n++
		}
	}
	if n > 0 {
		t.indexes = nil
	}
	return n
}

// Project returns a new table with only the named columns, in order (π).
func (t *Table) Project(names ...string) (*Table, error) {
	cols := make([]int, len(names))
	schema := make(Schema, len(names))
	for i, n := range names {
		c := t.Schema.Col(n)
		if c < 0 {
			return nil, fmt.Errorf("relational: %s: no column %q", t.Name, n)
		}
		cols[i] = c
		schema[i] = t.Schema[c]
	}
	out := NewTable(t.Name+"_proj", schema)
	for _, r := range t.Rows {
		nr := make(Row, len(cols))
		for i, c := range cols {
			nr[i] = r[c]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// Distinct returns a new table with duplicate rows removed.
func (t *Table) Distinct() *Table {
	out := NewTable(t.Name+"_dist", t.Schema)
	seen := make(map[string]bool, len(t.Rows))
	for _, r := range t.Rows {
		k := rowKey(r)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

func rowKey(r Row) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.String())
		b.WriteByte(0x1f)
		b.WriteByte(byte(v.K))
		b.WriteByte(0x1e)
	}
	return b.String()
}

// Sort orders the rows by the named columns ascending (desc per column via a
// leading '-', e.g. "-GapValue"). It sorts a copy and returns it.
func (t *Table) Sort(cols ...string) (*Table, error) {
	type key struct {
		col  int
		desc bool
	}
	keys := make([]key, len(cols))
	for i, c := range cols {
		desc := strings.HasPrefix(c, "-")
		name := strings.TrimPrefix(c, "-")
		ci := t.Schema.Col(name)
		if ci < 0 {
			return nil, fmt.Errorf("relational: %s: no column %q", t.Name, name)
		}
		keys[i] = key{col: ci, desc: desc}
	}
	out := NewTable(t.Name+"_sort", t.Schema)
	out.Rows = make([]Row, len(t.Rows))
	copy(out.Rows, t.Rows)
	sort.SliceStable(out.Rows, func(i, j int) bool {
		for _, k := range keys {
			c := Compare(out.Rows[i][k.col], out.Rows[j][k.col])
			if k.desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out, nil
}

// Limit returns the first n rows (or all if fewer).
func (t *Table) Limit(n int) *Table {
	if n > len(t.Rows) {
		n = len(t.Rows)
	}
	if n < 0 {
		n = 0
	}
	out := NewTable(t.Name+"_lim", t.Schema)
	out.Rows = append(out.Rows, t.Rows[:n]...)
	return out
}

// Join computes the equi-join of t and u on t.leftCol = u.rightCol using a
// hash join; the result schema is t's columns followed by u's (with u's join
// column retained, names prefixed by table name on collision).
func (t *Table) Join(u *Table, leftCol, rightCol string) (*Table, error) {
	lc := t.Schema.Col(leftCol)
	if lc < 0 {
		return nil, fmt.Errorf("relational: %s: no column %q", t.Name, leftCol)
	}
	rc := u.Schema.Col(rightCol)
	if rc < 0 {
		return nil, fmt.Errorf("relational: %s: no column %q", u.Name, rightCol)
	}
	schema := make(Schema, 0, len(t.Schema)+len(u.Schema))
	schema = append(schema, t.Schema...)
	for _, c := range u.Schema {
		name := c.Name
		if schema.Col(name) >= 0 {
			name = u.Name + "." + name
		}
		schema = append(schema, Column{Name: name, Kind: c.Kind})
	}
	out := NewTable(t.Name+"_join_"+u.Name, schema)
	// Build hash on the smaller side conceptually; for clarity build on u.
	buckets := make(map[string][]Row, len(u.Rows))
	for _, r := range u.Rows {
		if r[rc].IsNull() {
			continue // NULL never joins
		}
		k := r[rc].String() + "\x00" + r[rc].K.String()
		buckets[k] = append(buckets[k], r)
	}
	for _, lr := range t.Rows {
		if lr[lc].IsNull() {
			continue
		}
		k := lr[lc].String() + "\x00" + lr[lc].K.String()
		for _, rr := range buckets[k] {
			nr := make(Row, 0, len(schema))
			nr = append(nr, lr...)
			nr = append(nr, rr...)
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// Union returns the set union of two union-compatible tables (duplicates
// removed, as in relational algebra).
func (t *Table) Union(u *Table) (*Table, error) {
	if err := compatible(t, u); err != nil {
		return nil, err
	}
	all := NewTable(t.Name+"_union", t.Schema)
	all.Rows = append(all.Rows, t.Rows...)
	all.Rows = append(all.Rows, u.Rows...)
	return all.Distinct(), nil
}

// Intersect returns the set intersection of two union-compatible tables.
func (t *Table) Intersect(u *Table) (*Table, error) {
	if err := compatible(t, u); err != nil {
		return nil, err
	}
	in := make(map[string]bool, len(u.Rows))
	for _, r := range u.Rows {
		in[rowKey(r)] = true
	}
	out := NewTable(t.Name+"_intersect", t.Schema)
	seen := map[string]bool{}
	for _, r := range t.Rows {
		k := rowKey(r)
		if in[k] && !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

// Minus returns the set difference t - u of two union-compatible tables.
func (t *Table) Minus(u *Table) (*Table, error) {
	if err := compatible(t, u); err != nil {
		return nil, err
	}
	in := make(map[string]bool, len(u.Rows))
	for _, r := range u.Rows {
		in[rowKey(r)] = true
	}
	out := NewTable(t.Name+"_minus", t.Schema)
	seen := map[string]bool{}
	for _, r := range t.Rows {
		k := rowKey(r)
		if !in[k] && !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

func compatible(t, u *Table) error {
	if len(t.Schema) != len(u.Schema) {
		return fmt.Errorf("relational: %s and %s are not union-compatible", t.Name, u.Name)
	}
	for i := range t.Schema {
		if t.Schema[i].Kind != u.Schema[i].Kind {
			return fmt.Errorf("relational: %s and %s differ at column %d", t.Name, u.Name, i)
		}
	}
	return nil
}

// AggFunc is a standard aggregation.
type AggFunc int

// Aggregations supported by Aggregate, the thesis's "relational algebra
// extended with aggregation".
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the aggregation.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// Agg describes one aggregate output column.
type Agg struct {
	Fn  AggFunc
	Col string // input column; ignored for AggCount
	As  string // output column name
}

// Aggregate groups rows by the groupBy columns and computes the aggregates.
// NULL inputs are skipped (SQL semantics); a group whose inputs are all NULL
// yields NULL (except count, which yields 0 for no rows — counts rows, not
// values).
func (t *Table) Aggregate(groupBy []string, aggs []Agg) (*Table, error) {
	gcols := make([]int, len(groupBy))
	schema := make(Schema, 0, len(groupBy)+len(aggs))
	for i, n := range groupBy {
		c := t.Schema.Col(n)
		if c < 0 {
			return nil, fmt.Errorf("relational: %s: no column %q", t.Name, n)
		}
		gcols[i] = c
		schema = append(schema, t.Schema[c])
	}
	acols := make([]int, len(aggs))
	for i, a := range aggs {
		kind := KindFloat
		if a.Fn == AggCount {
			kind = KindInt
			acols[i] = -1
		} else {
			c := t.Schema.Col(a.Col)
			if c < 0 {
				return nil, fmt.Errorf("relational: %s: no column %q", t.Name, a.Col)
			}
			acols[i] = c
		}
		name := a.As
		if name == "" {
			name = a.Fn.String() + "_" + a.Col
		}
		schema = append(schema, Column{Name: name, Kind: kind})
	}

	type acc struct {
		groupVals Row
		count     int64
		n         []int64 // non-null inputs per aggregate
		sum       []float64
		min, max  []float64
	}
	groups := map[string]*acc{}
	var order []string
	for _, r := range t.Rows {
		var kb strings.Builder
		gv := make(Row, len(gcols))
		for i, c := range gcols {
			gv[i] = r[c]
			kb.WriteString(r[c].String())
			kb.WriteByte(0x1f)
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &acc{
				groupVals: gv,
				n:         make([]int64, len(aggs)),
				sum:       make([]float64, len(aggs)),
				min:       make([]float64, len(aggs)),
				max:       make([]float64, len(aggs)),
			}
			groups[k] = g
			order = append(order, k)
		}
		g.count++
		for i, c := range acols {
			if c < 0 || r[c].IsNull() {
				continue
			}
			f := r[c].Float()
			if g.n[i] == 0 {
				g.min[i], g.max[i] = f, f
			} else {
				if f < g.min[i] {
					g.min[i] = f
				}
				if f > g.max[i] {
					g.max[i] = f
				}
			}
			g.n[i]++
			g.sum[i] += f
		}
	}

	out := NewTable(t.Name+"_agg", schema)
	for _, k := range order {
		g := groups[k]
		row := make(Row, 0, len(schema))
		row = append(row, g.groupVals...)
		for i, a := range aggs {
			switch {
			case a.Fn == AggCount:
				row = append(row, I(g.count))
			case g.n[i] == 0:
				row = append(row, Null)
			case a.Fn == AggSum:
				row = append(row, F(g.sum[i]))
			case a.Fn == AggAvg:
				row = append(row, F(g.sum[i]/float64(g.n[i])))
			case a.Fn == AggMin:
				row = append(row, F(g.min[i]))
			default: // AggMax
				row = append(row, F(g.max[i]))
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the table as a compact aligned text grid (for the CLI).
func (t *Table) String() string {
	var b strings.Builder
	widths := make([]int, len(t.Schema))
	for i, c := range t.Schema {
		widths[i] = len(c.Name)
	}
	rendered := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
			if len(cells[i]) > widths[i] {
				widths[i] = len(cells[i])
			}
		}
		rendered[ri] = cells
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Schema.Names())
	for _, cells := range rendered {
		writeRow(cells)
	}
	return b.String()
}

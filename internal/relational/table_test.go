package relational

import (
	"strings"
	"testing"
)

func libTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("Libraries", Schema{
		{Name: "LibID", Kind: KindInt},
		{Name: "LibName", Kind: KindString},
		{Name: "Type", Kind: KindString},
		{Name: "CanNor", Kind: KindInt}, // 1 = cancer
		{Name: "Tags", Kind: KindFloat},
	})
	tbl.MustInsert(I(1), S("SAGE_B1"), S("brain"), I(1), F(52371))
	tbl.MustInsert(I(2), S("SAGE_B2"), S("brain"), I(0), F(31063))
	tbl.MustInsert(I(3), S("SAGE_K1"), S("kidney"), I(1), F(24481))
	tbl.MustInsert(I(4), S("SAGE_B3"), S("brain"), I(1), F(12000))
	return tbl
}

func TestSchemaCol(t *testing.T) {
	tbl := libTable(t)
	if tbl.Schema.Col("Type") != 2 || tbl.Schema.Col("nope") != -1 {
		t.Error("Schema.Col wrong")
	}
	names := tbl.Schema.Names()
	if len(names) != 5 || names[0] != "LibID" {
		t.Errorf("Names = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCol(missing) did not panic")
		}
	}()
	tbl.Schema.MustCol("missing")
}

func TestInsertValidation(t *testing.T) {
	tbl := libTable(t)
	if err := tbl.Insert(Row{I(9)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := tbl.Insert(Row{S("x"), S("n"), S("t"), I(0), F(1)}); err == nil {
		t.Error("kind mismatch accepted")
	}
	// NULL is allowed anywhere.
	if err := tbl.Insert(Row{I(5), Null, S("t"), I(0), F(1)}); err != nil {
		t.Errorf("NULL rejected: %v", err)
	}
}

func TestSelectAndPredicates(t *testing.T) {
	tbl := libTable(t)
	brain := tbl.Select(tbl.ColEq("Type", S("brain")))
	if brain.Len() != 3 {
		t.Errorf("brain select = %d rows", brain.Len())
	}
	cancerBrain := tbl.Select(And(tbl.ColEq("Type", S("brain")), tbl.ColEq("CanNor", I(1))))
	if cancerBrain.Len() != 2 {
		t.Errorf("cancer brain = %d rows", cancerBrain.Len())
	}
	notBrain := tbl.Select(Not(tbl.ColEq("Type", S("brain"))))
	if notBrain.Len() != 1 {
		t.Errorf("not brain = %d rows", notBrain.Len())
	}
	either := tbl.Select(Or(tbl.ColEq("LibName", S("SAGE_K1")), tbl.ColEq("LibName", S("SAGE_B2"))))
	if either.Len() != 2 {
		t.Errorf("or = %d rows", either.Len())
	}
	big := tbl.Select(tbl.ColRange("Tags", 20000, 60000))
	if big.Len() != 3 {
		t.Errorf("range = %d rows", big.Len())
	}
}

func TestProject(t *testing.T) {
	tbl := libTable(t)
	p, err := tbl.Project("LibName", "Tags")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Schema) != 2 || p.Schema[0].Name != "LibName" {
		t.Errorf("schema = %v", p.Schema)
	}
	if p.Rows[0][0].Str() != "SAGE_B1" || p.Rows[0][1].Float() != 52371 {
		t.Errorf("row = %v", p.Rows[0])
	}
	if _, err := tbl.Project("nope"); err == nil {
		t.Error("Project(missing): expected error")
	}
}

func TestDistinct(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "x", Kind: KindInt}})
	tbl.MustInsert(I(1))
	tbl.MustInsert(I(2))
	tbl.MustInsert(I(1))
	tbl.MustInsert(Null)
	tbl.MustInsert(Null)
	if got := tbl.Distinct().Len(); got != 3 {
		t.Errorf("Distinct = %d rows, want 3", got)
	}
}

func TestSort(t *testing.T) {
	tbl := libTable(t)
	asc, err := tbl.Sort("Tags")
	if err != nil {
		t.Fatal(err)
	}
	if asc.Rows[0][1].Str() != "SAGE_B3" || asc.Rows[3][1].Str() != "SAGE_B1" {
		t.Errorf("asc order wrong: %v", asc.Rows)
	}
	desc, err := tbl.Sort("-Tags")
	if err != nil {
		t.Fatal(err)
	}
	if desc.Rows[0][1].Str() != "SAGE_B1" {
		t.Errorf("desc order wrong")
	}
	multi, err := tbl.Sort("Type", "-Tags")
	if err != nil {
		t.Fatal(err)
	}
	if multi.Rows[0][1].Str() != "SAGE_B1" || multi.Rows[3][1].Str() != "SAGE_K1" {
		t.Errorf("multi order wrong: %v", multi.Rows)
	}
	if _, err := tbl.Sort("nope"); err == nil {
		t.Error("Sort(missing): expected error")
	}
	// Original untouched.
	if tbl.Rows[0][1].Str() != "SAGE_B1" {
		t.Error("Sort mutated the source table")
	}
}

func TestLimit(t *testing.T) {
	tbl := libTable(t)
	if tbl.Limit(2).Len() != 2 || tbl.Limit(100).Len() != 4 || tbl.Limit(-1).Len() != 0 {
		t.Error("Limit wrong")
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	tbl := libTable(t)
	if _, err := tbl.CreateIndex("Tags"); err != nil {
		t.Fatal(err)
	}
	n := tbl.Delete(tbl.ColEq("Type", S("kidney")))
	if n != 1 || tbl.Len() != 3 {
		t.Errorf("Delete = %d, len %d", n, tbl.Len())
	}
	if tbl.HasIndex("Tags") {
		t.Error("Delete must drop indexes")
	}
	n = tbl.Update(tbl.ColEq("LibName", S("SAGE_B2")), func(r Row) {
		r[tbl.Schema.MustCol("Tags")] = F(99)
	})
	if n != 1 {
		t.Errorf("Update = %d", n)
	}
	got := tbl.Select(tbl.ColEq("LibName", S("SAGE_B2")))
	if got.Rows[0][4].Float() != 99 {
		t.Error("Update did not apply")
	}
}

func TestJoin(t *testing.T) {
	libs := libTable(t)
	tissues := NewTable("Tissues", Schema{
		{Name: "TType", Kind: KindString},
		{Name: "Organ", Kind: KindString},
	})
	tissues.MustInsert(S("brain"), S("head"))
	tissues.MustInsert(S("kidney"), S("abdomen"))
	tissues.MustInsert(S("skin"), S("surface"))

	j, err := libs.Join(tissues, "Type", "TType")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Errorf("join = %d rows", j.Len())
	}
	oc := j.Schema.Col("Organ")
	if oc < 0 {
		t.Fatal("no Organ column after join")
	}
	for _, r := range j.Rows {
		if r[2].Str() == "kidney" && r[oc].Str() != "abdomen" {
			t.Errorf("join mismatch: %v", r)
		}
	}
	if _, err := libs.Join(tissues, "nope", "TType"); err == nil {
		t.Error("Join(bad left): expected error")
	}
	if _, err := libs.Join(tissues, "Type", "nope"); err == nil {
		t.Error("Join(bad right): expected error")
	}
}

func TestJoinNullNeverMatches(t *testing.T) {
	a := NewTable("a", Schema{{Name: "k", Kind: KindString}})
	a.MustInsert(Null)
	a.MustInsert(S("x"))
	b := NewTable("b", Schema{{Name: "k2", Kind: KindString}})
	b.MustInsert(Null)
	b.MustInsert(S("x"))
	j, err := a.Join(b, "k", "k2")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Errorf("NULL joined: %d rows", j.Len())
	}
}

func TestJoinColumnNameCollision(t *testing.T) {
	a := NewTable("a", Schema{{Name: "k", Kind: KindString}, {Name: "v", Kind: KindInt}})
	a.MustInsert(S("x"), I(1))
	b := NewTable("b", Schema{{Name: "k", Kind: KindString}, {Name: "v", Kind: KindInt}})
	b.MustInsert(S("x"), I(2))
	j, err := a.Join(b, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if j.Schema.Col("b.v") < 0 {
		t.Errorf("collided column not renamed: %v", j.Schema.Names())
	}
}

func TestSetOperations(t *testing.T) {
	mk := func(name string, vals ...int64) *Table {
		tbl := NewTable(name, Schema{{Name: "x", Kind: KindInt}})
		for _, v := range vals {
			tbl.MustInsert(I(v))
		}
		return tbl
	}
	a := mk("a", 1, 2, 3, 3)
	b := mk("b", 3, 4)

	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 4 { // {1,2,3,4}
		t.Errorf("Union = %d rows", u.Len())
	}
	i, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	if i.Len() != 1 || i.Rows[0][0].Int() != 3 {
		t.Errorf("Intersect = %v", i.Rows)
	}
	m, err := a.Minus(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 { // {1,2}
		t.Errorf("Minus = %d rows", m.Len())
	}
	bad := NewTable("bad", Schema{{Name: "x", Kind: KindString}})
	if _, err := a.Union(bad); err == nil {
		t.Error("Union(incompatible): expected error")
	}
	bad2 := NewTable("bad2", Schema{{Name: "x", Kind: KindInt}, {Name: "y", Kind: KindInt}})
	if _, err := a.Intersect(bad2); err == nil {
		t.Error("Intersect(wrong arity): expected error")
	}
	if _, err := a.Minus(bad); err == nil {
		t.Error("Minus(incompatible): expected error")
	}
}

func TestAggregate(t *testing.T) {
	tbl := libTable(t)
	agg, err := tbl.Aggregate([]string{"Type"}, []Agg{
		{Fn: AggCount, As: "n"},
		{Fn: AggSum, Col: "Tags", As: "total"},
		{Fn: AggAvg, Col: "Tags", As: "avg"},
		{Fn: AggMin, Col: "Tags", As: "lo"},
		{Fn: AggMax, Col: "Tags", As: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != 2 {
		t.Fatalf("groups = %d", agg.Len())
	}
	brain := agg.Select(agg.ColEq("Type", S("brain"))).Rows[0]
	if brain[1].Int() != 3 {
		t.Errorf("count = %v", brain[1])
	}
	if brain[2].Float() != 52371+31063+12000 {
		t.Errorf("sum = %v", brain[2])
	}
	if brain[4].Float() != 12000 || brain[5].Float() != 52371 {
		t.Errorf("min/max = %v %v", brain[4], brain[5])
	}
	if _, err := tbl.Aggregate([]string{"nope"}, nil); err == nil {
		t.Error("Aggregate(bad group): expected error")
	}
	if _, err := tbl.Aggregate(nil, []Agg{{Fn: AggSum, Col: "nope"}}); err == nil {
		t.Error("Aggregate(bad col): expected error")
	}
}

func TestAggregateGlobalAndNulls(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "v", Kind: KindFloat}})
	tbl.MustInsert(F(1))
	tbl.MustInsert(Null)
	tbl.MustInsert(F(3))
	agg, err := tbl.Aggregate(nil, []Agg{
		{Fn: AggCount, As: "n"},
		{Fn: AggAvg, Col: "v", As: "avg"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != 1 {
		t.Fatalf("global agg groups = %d", agg.Len())
	}
	if agg.Rows[0][0].Int() != 3 { // count counts rows
		t.Errorf("count = %v", agg.Rows[0][0])
	}
	if agg.Rows[0][1].Float() != 2 { // avg skips NULL
		t.Errorf("avg = %v", agg.Rows[0][1])
	}

	allNull := NewTable("t2", Schema{{Name: "v", Kind: KindFloat}})
	allNull.MustInsert(Null)
	agg2, err := allNull.Aggregate(nil, []Agg{{Fn: AggSum, Col: "v", As: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	if !agg2.Rows[0][0].IsNull() {
		t.Errorf("sum of all-NULL group = %v, want NULL", agg2.Rows[0][0])
	}
}

func TestAggregateDefaultName(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "v", Kind: KindFloat}})
	tbl.MustInsert(F(1))
	agg, err := tbl.Aggregate(nil, []Agg{{Fn: AggSum, Col: "v"}})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Schema[0].Name != "sum_v" {
		t.Errorf("default agg name = %q", agg.Schema[0].Name)
	}
}

func TestTableString(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "Tag", Kind: KindString}, {Name: "Gap", Kind: KindFloat}})
	tbl.MustInsert(S("AAAA"), F(-1.5))
	tbl.MustInsert(S("C"), Null)
	s := tbl.String()
	if !strings.Contains(s, "Tag") || !strings.Contains(s, "-1.5") || !strings.Contains(s, "NULL") {
		t.Errorf("String output missing parts:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("String has %d lines", len(lines))
	}
}

func TestAggFuncString(t *testing.T) {
	if AggCount.String() != "count" || AggMax.String() != "max" {
		t.Error("AggFunc strings wrong")
	}
	if AggFunc(9).String() != "AggFunc(9)" {
		t.Error("unknown AggFunc string wrong")
	}
}

// Package relational is the embedded relational engine underneath the GEA —
// the role IBM DB2 played in the thesis. It provides typed schemas, tables,
// relational algebra (select, project, join, aggregate, sort, set
// operations), sorted column indexes with range scans, a named-table store
// with gob persistence, and the rotated physical layout used for the TAGS
// relation (thesis Section 4.6.1).
//
// The extensional world of the GEA "is relational [so] the relational
// algebra, extended with standard aggregation operations such as sum,
// average, etc. and sorting, is sufficient" (Section 3.2.4); this package is
// that world's machinery.
package relational

import (
	"fmt"
	"strconv"
)

// Kind is the type of a column or value.
type Kind int

// Column kinds.
const (
	KindString Kind = iota
	KindInt
	KindFloat
	KindNull // only values, not columns: SQL-style NULL (e.g. overlap gaps)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindNull:
		return "null"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single typed cell. The zero Value is NULL.
type Value struct {
	K Kind
	S string
	I int64
	F float64
}

// Null is the NULL value.
var Null = Value{K: KindNull}

// S returns a string value.
func S(s string) Value { return Value{K: KindString, S: s} }

// I returns an int value.
func I(i int64) Value { return Value{K: KindInt, I: i} }

// F returns a float value.
func F(f float64) Value { return Value{K: KindFloat, F: f} }

// B returns an int value 1 or 0; the engine follows the thesis's schema
// (Appendix IV) in modelling booleans as integers.
func B(b bool) Value {
	if b {
		return I(1)
	}
	return I(0)
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Float returns the numeric value of an int or float cell.
func (v Value) Float() float64 {
	switch v.K {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// Int returns the integer value of an int cell (truncating floats).
func (v Value) Int() int64 {
	switch v.K {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// Str returns the string of a string cell, or the rendered form otherwise.
func (v Value) Str() string {
	if v.K == KindString {
		return v.S
	}
	return v.String()
}

// String renders the value for display.
func (v Value) String() string {
	switch v.K {
	case KindString:
		return v.S
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return "NULL"
	}
}

// numericKinds reports whether both values are numeric (int or float).
func numericKinds(a, b Value) bool {
	return (a.K == KindInt || a.K == KindFloat) && (b.K == KindInt || b.K == KindFloat)
}

// Compare orders two values: -1, 0 or +1. NULL sorts before everything;
// numeric values compare by magnitude across int/float; otherwise values of
// different kinds compare by kind, and strings lexicographically. Comparing
// is total so it can back sorting and sorted indexes.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKinds(a, b) {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	// Both strings.
	switch {
	case a.S < b.S:
		return -1
	case a.S > b.S:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare. NULL equals NULL
// here (group-by semantics), unlike SQL's three-valued logic.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

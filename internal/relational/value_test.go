package relational

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := S("hi"); v.K != KindString || v.Str() != "hi" {
		t.Errorf("S = %+v", v)
	}
	if v := I(42); v.K != KindInt || v.Int() != 42 || v.Float() != 42 {
		t.Errorf("I = %+v", v)
	}
	if v := F(2.5); v.K != KindFloat || v.Float() != 2.5 || v.Int() != 2 {
		t.Errorf("F = %+v", v)
	}
	if !Null.IsNull() || S("x").IsNull() {
		t.Error("IsNull wrong")
	}
	if B(true).Int() != 1 || B(false).Int() != 0 {
		t.Error("B wrong")
	}
	if Null.Float() != 0 || Null.Int() != 0 {
		t.Error("Null numeric accessors should be 0")
	}
	if S("x").Float() != 0 {
		t.Error("string Float should be 0")
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{S("abc"), "abc"},
		{I(-7), "-7"},
		{F(2.5), "2.5"},
		{Null, "NULL"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String(%+v) = %q, want %q", tt.v, got, tt.want)
		}
	}
	if Null.Str() != "NULL" {
		t.Errorf("Null.Str() = %q", Null.Str())
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{I(1), I(2), -1},
		{I(2), I(2), 0},
		{F(3), I(2), 1},
		{I(2), F(2.0), 0}, // numeric across kinds
		{S("a"), S("b"), -1},
		{S("b"), S("b"), 0},
		{Null, I(0), -1}, // NULL sorts first
		{I(0), Null, 1},
		{Null, Null, 0},
		{S("z"), I(5), 1}, // different kinds order by kind: string < int is false (KindString=0 < KindInt=1) -> -1? see below
	}
	// Fix expectation for the mixed-kind case: KindString(0) < KindInt(1).
	tests[len(tests)-1].want = -1
	for _, tt := range tests {
		if got := Compare(tt.a, tt.b); got != tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
	if !Equal(I(3), F(3)) || Equal(I(3), I(4)) {
		t.Error("Equal wrong")
	}
}

func randValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return S(string(rune('a' + rng.Intn(5))))
	case 1:
		return I(int64(rng.Intn(10)))
	case 2:
		return F(float64(rng.Intn(10)) / 2)
	default:
		return Null
	}
}

// Compare must be antisymmetric and transitive (a total preorder) so sorting
// and indexes behave.
func TestCompareIsTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randValue(rng), randValue(rng), randValue(rng)
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		// transitivity: a<=b && b<=c => a<=c
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindString: "string", KindInt: "int", KindFloat: "float", KindNull: "null",
	} {
		if k.String() != want {
			t.Errorf("Kind %d = %q", k, k.String())
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind = %q", Kind(9).String())
	}
}

package rescache

import (
	"container/list"
	"context"
	"sync"

	"gea/internal/obs"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxEntries = 256
	DefaultMaxBytes   = 64 << 20
)

// Options configures a Cache; the zero value selects the defaults.
type Options struct {
	// MaxEntries bounds the number of cached results; the least
	// recently used entry is evicted past it. Zero means
	// DefaultMaxEntries.
	MaxEntries int
	// MaxBytes bounds the approximate retained result bytes (as
	// reported by each compute); zero means DefaultMaxBytes.
	MaxBytes int64
	// Metrics optionally records the cache.* series; nil disables
	// instrumentation.
	Metrics *obs.Registry
}

// Computed is one operator result as the cache stores it: the immutable
// value, its approximate size, the work units the computing run
// charged, whether the run was budget-stopped, and the span record of
// the run — so a hit can still account for the work that produced it.
type Computed struct {
	Value any
	// Bytes is the compute's size estimate, charged against MaxBytes.
	Bytes int64
	// Units is the exec work the computing run charged; hits report it
	// so cached and fresh responses stay reconcilable.
	Units int64
	// Partial marks a budget-stopped result. Partials are returned to
	// the caller (and its flight) but never stored.
	Partial bool
	// Record is the computing run's span record, when a collector was
	// installed; served alongside hits for trace reconciliation.
	Record *obs.Record
}

// Source reports where a Do result came from.
type Source int

const (
	// SourceComputed: this caller ran the compute (a miss).
	SourceComputed Source = iota
	// SourceHit: served from a stored entry.
	SourceHit
	// SourceShared: joined an in-flight compute for the same key.
	SourceShared
)

func (s Source) String() string {
	switch s {
	case SourceComputed:
		return "computed"
	case SourceHit:
		return "hit"
	case SourceShared:
		return "shared"
	}
	return "unknown"
}

// Cached reports whether the caller's result was produced without
// running its own compute.
func (s Source) Cached() bool { return s != SourceComputed }

// flight is one in-progress compute; followers block on done and then
// read res/err, which are written before done is closed.
type flight struct {
	done chan struct{}
	res  Computed
	err  error
}

// entry is one stored result on the LRU list.
type entry struct {
	key Key
	gen uint64
	res Computed
}

// cacheMeters bundles the cache.* metric handles; every handle is a
// no-op when no registry was supplied.
type cacheMeters struct {
	hits, misses, shared, evicted, swept, uncacheable *obs.Counter
	entries, bytes                                    *obs.Gauge
}

// Cache is the bounded, generation-keyed result cache. Safe for
// concurrent use; computes run outside the cache lock.
type Cache struct {
	maxEntries int
	maxBytes   int64
	m          cacheMeters

	mu      sync.Mutex
	byKey   map[Key]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
	flights map[Key]*flight

	hits, misses, sharedN, evictedN, sweptN, uncacheableN int64
}

// New builds a cache from opts; zero fields select the defaults.
func New(opts Options) *Cache {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	r := opts.Metrics
	return &Cache{
		maxEntries: opts.MaxEntries,
		maxBytes:   opts.MaxBytes,
		m: cacheMeters{
			hits:        r.Counter("cache.hits"),
			misses:      r.Counter("cache.misses"),
			shared:      r.Counter("cache.singleflight_shared"),
			evicted:     r.Counter("cache.evicted"),
			swept:       r.Counter("cache.swept"),
			uncacheable: r.Counter("cache.uncacheable_partial"),
			entries:     r.Gauge("cache.entries"),
			bytes:       r.Gauge("cache.bytes"),
		},
		byKey:   map[Key]*list.Element{},
		lru:     list.New(),
		flights: map[Key]*flight{},
	}
}

// Do returns the cached result for key, joins an in-flight compute for
// it, or — as the key's single flight leader — runs fn and stores the
// result. fn runs outside the cache lock. An error or a Partial result
// is handed to the leader and every follower but never stored. A
// follower whose ctx dies while waiting returns the context error; the
// leader's compute is not cancelled by followers leaving.
func (c *Cache) Do(ctx context.Context, key Key, gen uint64, fn func() (Computed, error)) (Computed, Source, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		res := el.Value.(*entry).res
		c.hits++
		c.m.hits.Add(1)
		c.mu.Unlock()
		return res, SourceHit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return Computed{}, SourceShared, ctx.Err()
		}
		c.mu.Lock()
		c.sharedN++
		c.m.shared.Add(1)
		c.mu.Unlock()
		return f.res, SourceShared, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	c.m.misses.Add(1)
	c.mu.Unlock()

	res, err := fn()

	c.mu.Lock()
	delete(c.flights, key)
	f.res, f.err = res, err
	close(f.done)
	if err == nil {
		if res.Partial {
			c.uncacheableN++
			c.m.uncacheable.Add(1)
		} else {
			c.insertLocked(key, gen, res)
		}
	}
	c.mu.Unlock()
	return res, SourceComputed, err
}

// Get returns the stored result for key without computing; intended
// for tests and introspection.
func (c *Cache) Get(key Key) (Computed, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return Computed{}, false
	}
	return el.Value.(*entry).res, true
}

// insertLocked stores one result at the LRU front and evicts from the
// back until both bounds hold again. An oversized single result is
// inserted and immediately evicted — effectively uncacheable.
func (c *Cache) insertLocked(key Key, gen uint64, res Computed) {
	if res.Bytes < 1 {
		res.Bytes = 1
	}
	el := c.lru.PushFront(&entry{key: key, gen: gen, res: res})
	c.byKey[key] = el
	c.bytes += res.Bytes
	for (c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.lru.Len() > 0 {
		c.removeLocked(c.lru.Back())
		c.evictedN++
		c.m.evicted.Add(1)
	}
	c.noteLocked()
}

// removeLocked unlinks one LRU element and releases its bytes.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.byKey, e.key)
	c.bytes -= e.res.Bytes
}

// EvictBelow proactively frees every entry stored at a generation older
// than gen and reports how many it swept. Entries below gen are already
// unreachable — the generation is part of the key — so this is a memory
// release on a generation bump, not a correctness mechanism.
func (c *Cache) EvictBelow(gen uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*entry).gen < gen {
			c.removeLocked(el)
			n++
		}
		el = next
	}
	if n > 0 {
		c.sweptN += int64(n)
		c.m.swept.Add(int64(n))
		c.noteLocked()
	}
	return n
}

// noteLocked refreshes the size gauges.
func (c *Cache) noteLocked() {
	c.m.entries.Set(int64(c.lru.Len()))
	c.m.bytes.Set(c.bytes)
}

// Stats is a point-in-time snapshot of the cache, JSON-ready for
// /healthz.
type Stats struct {
	Entries            int   `json:"entries"`
	Bytes              int64 `json:"bytes"`
	MaxEntries         int   `json:"max_entries"`
	MaxBytes           int64 `json:"max_bytes"`
	InFlight           int   `json:"in_flight"`
	Hits               int64 `json:"hits"`
	Misses             int64 `json:"misses"`
	Shared             int64 `json:"shared"`
	Evicted            int64 `json:"evicted"`
	Swept              int64 `json:"swept"`
	UncacheablePartial int64 `json:"uncacheable_partial"`
}

// Stats snapshots the cache's counters and bounds.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:            c.lru.Len(),
		Bytes:              c.bytes,
		MaxEntries:         c.maxEntries,
		MaxBytes:           c.maxBytes,
		InFlight:           len(c.flights),
		Hits:               c.hits,
		Misses:             c.misses,
		Shared:             c.sharedN,
		Evicted:            c.evictedN,
		Swept:              c.sweptN,
		UncacheablePartial: c.uncacheableN,
	}
}

// Len reports the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

package rescache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gea/internal/obs"
)

func mustKey(t *testing.T, gen uint64, op string, params any) Key {
	t.Helper()
	k, err := Canonical(gen, op, params)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCacheHitReturnsSameValue(t *testing.T) {
	c := New(Options{})
	k := mustKey(t, 1, "mine", map[string]string{"tissue": "brain"})
	val := []int{1, 2, 3}
	res, src, err := c.Do(context.Background(), k, 1, func() (Computed, error) {
		return Computed{Value: val, Bytes: 24, Units: 7}, nil
	})
	if err != nil || src != SourceComputed {
		t.Fatalf("first Do: src=%v err=%v", src, err)
	}
	res2, src2, err := c.Do(context.Background(), k, 1, func() (Computed, error) {
		t.Fatal("hit path ran the compute")
		return Computed{}, nil
	})
	if err != nil || src2 != SourceHit {
		t.Fatalf("second Do: src=%v err=%v", src2, err)
	}
	// Identity, not just equality: a hit serves the very object the
	// compute returned, which is what makes DeepEqual trivially hold.
	if &res.Value.([]int)[0] != &res2.Value.([]int)[0] {
		t.Error("hit returned a different backing object than the compute")
	}
	if res2.Units != 7 {
		t.Errorf("hit lost the compute's units: %d", res2.Units)
	}
	if !src2.Cached() || src.Cached() {
		t.Errorf("Cached(): computed=%v hit=%v", src.Cached(), src2.Cached())
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := New(Options{Metrics: obs.NewRegistry()})
	k := mustKey(t, 1, "aggregate", 42)
	var computes atomic.Int64
	gate := make(chan struct{})
	const followers = 16
	var wg sync.WaitGroup
	results := make([]Source, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, src, err := c.Do(context.Background(), k, 1, func() (Computed, error) {
				computes.Add(1)
				<-gate
				return Computed{Value: "v", Bytes: 1}, nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			results[i] = src
		}(i)
	}
	// Let every goroutine reach the cache before releasing the leader.
	for c.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("single-flight ran %d computes, want 1", n)
	}
	var leaders, shared int
	for _, s := range results {
		switch s {
		case SourceComputed:
			leaders++
		case SourceShared:
			shared++
		}
	}
	if leaders != 1 {
		t.Errorf("want exactly 1 leader, got %d (shared=%d)", leaders, shared)
	}
	if st := c.Stats(); st.InFlight != 0 {
		t.Errorf("flight leaked: %d in flight after completion", st.InFlight)
	}
}

func TestCacheSharedError(t *testing.T) {
	c := New(Options{})
	k := mustKey(t, 1, "diff", "x")
	boom := errors.New("boom")
	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Do(context.Background(), k, 1, func() (Computed, error) {
				<-gate
				return Computed{}, boom
			})
		}(i)
	}
	for c.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("caller %d: err=%v, want boom", i, err)
		}
	}
	if c.Len() != 0 {
		t.Errorf("errored compute was stored: %d entries", c.Len())
	}
	// The key must be retryable after the failed flight.
	_, src, err := c.Do(context.Background(), k, 1, func() (Computed, error) {
		return Computed{Value: "ok", Bytes: 1}, nil
	})
	if err != nil || src != SourceComputed {
		t.Fatalf("retry after error: src=%v err=%v", src, err)
	}
}

func TestCachePartialNeverStored(t *testing.T) {
	c := New(Options{})
	k := mustKey(t, 1, "mine", "partial")
	res, src, err := c.Do(context.Background(), k, 1, func() (Computed, error) {
		return Computed{Value: "half", Bytes: 4, Partial: true}, nil
	})
	if err != nil || src != SourceComputed || !res.Partial {
		t.Fatalf("partial compute: res=%+v src=%v err=%v", res, src, err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("budget-stopped partial result was cached")
	}
	if st := c.Stats(); st.UncacheablePartial != 1 {
		t.Errorf("uncacheable_partial=%d, want 1", st.UncacheablePartial)
	}
	// The next caller with headroom computes the full result and that
	// one is stored.
	_, src, err = c.Do(context.Background(), k, 1, func() (Computed, error) {
		return Computed{Value: "full", Bytes: 4}, nil
	})
	if err != nil || src != SourceComputed {
		t.Fatalf("full recompute: src=%v err=%v", src, err)
	}
	if got, ok := c.Get(k); !ok || got.Value != "full" {
		t.Fatalf("full result not stored: %+v ok=%v", got, ok)
	}
}

func TestCacheFollowerContextCancel(t *testing.T) {
	c := New(Options{})
	k := mustKey(t, 1, "slow", 1)
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, err := c.Do(context.Background(), k, 1, func() (Computed, error) {
			<-gate
			return Computed{Value: "v", Bytes: 1}, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	for c.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, k, 1, func() (Computed, error) {
		t.Error("cancelled follower ran the compute")
		return Computed{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err=%v, want context.Canceled", err)
	}
	// The leader is unaffected by the follower leaving.
	close(gate)
	<-leaderDone
	if _, ok := c.Get(k); !ok {
		t.Error("leader's result was not stored after follower cancellation")
	}
}

func TestCacheEntryBound(t *testing.T) {
	c := New(Options{MaxEntries: 3})
	for i := 0; i < 5; i++ {
		k := mustKey(t, 1, "op", i)
		if _, _, err := c.Do(context.Background(), k, 1, func() (Computed, error) {
			return Computed{Value: i, Bytes: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("entries=%d, want 3", c.Len())
	}
	// Oldest two evicted, newest three retained.
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(mustKey(t, 1, "op", i)); ok {
			t.Errorf("entry %d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := c.Get(mustKey(t, 1, "op", i)); !ok {
			t.Errorf("entry %d should be retained", i)
		}
	}
	if st := c.Stats(); st.Evicted != 2 {
		t.Errorf("evicted=%d, want 2", st.Evicted)
	}
}

func TestCacheLRUTouchOnHit(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	ka := mustKey(t, 1, "op", "a")
	kb := mustKey(t, 1, "op", "b")
	kc := mustKey(t, 1, "op", "c")
	store := func(k Key, v string) {
		if _, _, err := c.Do(context.Background(), k, 1, func() (Computed, error) {
			return Computed{Value: v, Bytes: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	store(ka, "a")
	store(kb, "b")
	if _, _, err := c.Do(context.Background(), ka, 1, nil); err != nil {
		t.Fatal(err) // hit: fn never called, nil is fine
	}
	store(kc, "c") // evicts b (LRU), not a (just touched)
	if _, ok := c.Get(ka); !ok {
		t.Error("recently used entry a was evicted")
	}
	if _, ok := c.Get(kb); ok {
		t.Error("least recently used entry b survived")
	}
}

func TestCacheByteBound(t *testing.T) {
	c := New(Options{MaxEntries: 100, MaxBytes: 10})
	for i := 0; i < 4; i++ {
		k := mustKey(t, 1, "op", i)
		if _, _, err := c.Do(context.Background(), k, 1, func() (Computed, error) {
			return Computed{Value: i, Bytes: 4}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > 10 {
		t.Errorf("bytes=%d exceeds bound 10", st.Bytes)
	}
	if st.Entries != 2 {
		t.Errorf("entries=%d, want 2 (4-byte entries under a 10-byte cap)", st.Entries)
	}
	// A single result larger than the whole budget must not wedge the
	// cache: it is swept straight out and later inserts still work.
	big := mustKey(t, 1, "op", "big")
	if _, _, err := c.Do(context.Background(), big, 1, func() (Computed, error) {
		return Computed{Value: "big", Bytes: 1 << 20}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(big); ok {
		t.Error("oversized entry was retained")
	}
	if st := c.Stats(); st.Bytes > 10 {
		t.Errorf("bytes=%d after oversized insert", st.Bytes)
	}
}

func TestCacheEvictBelow(t *testing.T) {
	c := New(Options{})
	for gen := uint64(1); gen <= 3; gen++ {
		for i := 0; i < 2; i++ {
			k := mustKey(t, gen, "op", i)
			if _, _, err := c.Do(context.Background(), k, gen, func() (Computed, error) {
				return Computed{Value: fmt.Sprintf("g%d-%d", gen, i), Bytes: 8}, nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := c.EvictBelow(3); n != 4 {
		t.Fatalf("EvictBelow swept %d, want 4", n)
	}
	if c.Len() != 2 {
		t.Fatalf("entries=%d after sweep, want 2", c.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(mustKey(t, 3, "op", i)); !ok {
			t.Errorf("current-generation entry %d swept", i)
		}
	}
	st := c.Stats()
	if st.Swept != 4 {
		t.Errorf("swept=%d, want 4", st.Swept)
	}
	if st.Bytes != 16 {
		t.Errorf("bytes=%d after sweep, want 16", st.Bytes)
	}
	if n := c.EvictBelow(3); n != 0 {
		t.Errorf("idempotent sweep removed %d", n)
	}
}

func TestCacheMetrics(t *testing.T) {
	r := obs.NewRegistry()
	c := New(Options{MaxEntries: 1, Metrics: r})
	k1 := mustKey(t, 1, "op", 1)
	k2 := mustKey(t, 1, "op", 2)
	do := func(k Key) {
		if _, _, err := c.Do(context.Background(), k, 1, func() (Computed, error) {
			return Computed{Value: "v", Bytes: 2}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	do(k1)
	do(k1) // hit
	do(k2) // miss, evicts k1
	snap := r.Snapshot()
	want := map[string]int64{
		"cache.hits":    1,
		"cache.misses":  2,
		"cache.evicted": 1,
		"cache.entries": 1,
		"cache.bytes":   2,
	}
	got := map[string]int64{}
	for _, m := range snap.Counters {
		got[m.Name] = m.Value
	}
	for _, m := range snap.Gauges {
		got[m.Name] = m.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s=%d, want %d", name, got[name], v)
		}
	}
}

// Package rescache is the generation-keyed result cache behind the
// serving layer: key = canonicalized (corpus generation, operator,
// params), value = the immutable result plus the span record of the run
// that computed it. An ingestion commit that bumps the generation token
// makes every prior entry unreachable (the generation is part of the
// key), the cache is LRU-bounded by entry count and approximate bytes,
// and identical concurrent requests are single-flighted so N callers
// cost one compute.
//
// Two invariants the rest of the system leans on:
//
//   - A cached value is the very object the compute returned, so a hit
//     is reflect.DeepEqual-identical to a fresh computation at the same
//     generation (results are immutable by the algebra's contract).
//   - A budget-stopped partial result is returned to its caller (and to
//     the callers sharing its flight) but is never stored: the next
//     request with headroom computes the full result.
package rescache

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Key is a canonicalized (generation, operator, params) cache key. Keys
// are plain strings so they work as map keys and read well in logs and
// test failures.
type Key string

// maxDepth bounds the canonicalization walk so a cyclic params value
// errors instead of recursing forever.
const maxDepth = 64

// workersField is the parameter name excluded from canonicalization:
// the shard substrate guarantees results are bit-identical at any
// worker count, so a worker setting must not split the key space.
const workersField = "workers"

// Canonical builds the cache key for one operator invocation. The
// encoding is deterministic and injective over the supported kinds:
// map entries are sorted by encoded key, struct fields by name, strings
// are length-prefixed, floats are encoded by their exact bit pattern.
// Struct fields and map keys named "Workers" (any case) are excluded —
// worker count never changes a result. Funcs, channels and other
// non-data kinds return an error, which callers treat as "uncacheable".
func Canonical(gen uint64, op string, params any) (Key, error) {
	var b strings.Builder
	b.WriteString("g")
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteString("|")
	b.WriteString(op)
	b.WriteString("|")
	if err := encode(&b, reflect.ValueOf(params), maxDepth); err != nil {
		return "", fmt.Errorf("rescache: canonicalizing %s params: %w", op, err)
	}
	return Key(b.String()), nil
}

// encode writes one value's canonical form. Every emitted form carries
// a kind tag so values of different kinds can never collide (e.g. the
// string "1" encodes as `s1:1`, the int 1 as `i1`).
func encode(b *strings.Builder, v reflect.Value, depth int) error {
	if depth <= 0 {
		return fmt.Errorf("value nests deeper than %d levels (cycle?)", maxDepth)
	}
	if !v.IsValid() {
		b.WriteString("_")
		return nil
	}
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			b.WriteString("b1")
		} else {
			b.WriteString("b0")
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		b.WriteString("i")
		b.WriteString(strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		b.WriteString("u")
		b.WriteString(strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		// The exact bit pattern: two floats produce the same encoding
		// iff they are the same value (NaNs collapse per their bits).
		b.WriteString("f")
		b.WriteString(strconv.FormatUint(math.Float64bits(v.Float()), 16))
	case reflect.String:
		s := v.String()
		b.WriteString("s")
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteString(":")
		b.WriteString(s)
	case reflect.Slice, reflect.Array:
		b.WriteString("l[")
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				b.WriteString(",")
			}
			if err := encode(b, v.Index(i), depth-1); err != nil {
				return err
			}
		}
		b.WriteString("]")
	case reflect.Map:
		ents, err := mapEntries(v, depth)
		if err != nil {
			return err
		}
		b.WriteString("m{")
		for i, e := range ents {
			if i > 0 {
				b.WriteString(";")
			}
			b.WriteString(e.k)
			b.WriteString("=")
			b.WriteString(e.v)
		}
		b.WriteString("}")
	case reflect.Struct:
		t := v.Type()
		fields := make([]int, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" || strings.EqualFold(f.Name, workersField) {
				continue
			}
			fields = append(fields, i)
		}
		sort.Slice(fields, func(a, c int) bool { return t.Field(fields[a]).Name < t.Field(fields[c]).Name })
		b.WriteString("t")
		b.WriteString(t.String())
		b.WriteString("{")
		for i, fi := range fields {
			if i > 0 {
				b.WriteString(";")
			}
			b.WriteString(t.Field(fi).Name)
			b.WriteString("=")
			if err := encode(b, v.Field(fi), depth-1); err != nil {
				return err
			}
		}
		b.WriteString("}")
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			b.WriteString("_")
			return nil
		}
		return encode(b, v.Elem(), depth-1)
	default:
		return fmt.Errorf("kind %v is not canonicalizable", v.Kind())
	}
	return nil
}

// mapEntries encodes a map's entries and sorts them by encoded key, so
// iteration order — randomized by the runtime — never reaches the key.
// Map keys named "Workers" (any case) are excluded like struct fields.
type mapEntry struct{ k, v string }

func mapEntries(v reflect.Value, depth int) ([]mapEntry, error) {
	ents := make([]mapEntry, 0, v.Len())
	iter := v.MapRange()
	for iter.Next() {
		if k := iter.Key(); k.Kind() == reflect.String && strings.EqualFold(k.String(), workersField) {
			continue
		}
		var kb, vb strings.Builder
		if err := encode(&kb, iter.Key(), depth-1); err != nil {
			return nil, err
		}
		if err := encode(&vb, iter.Value(), depth-1); err != nil {
			return nil, err
		}
		ents = append(ents, mapEntry{kb.String(), vb.String()})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].k < ents[j].k })
	return ents, nil
}

package rescache

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// The cache key is load-bearing: a collision serves one query's result
// for another, an instability (same logical params, different key)
// silently kills the hit rate. These are property tests over the
// canonicalization, not example tests: each property is checked across
// randomized inputs.

// TestCanonicalParamOrderInsensitive pins map-order insensitivity: the
// runtime randomizes map iteration, so the same logical params must
// canonicalize identically across many constructions.
func TestCanonicalParamOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(8)
		keys := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("p%02d", i)
		}
		build := func() map[string]string {
			m := map[string]string{}
			for i, k := range keys {
				m[k] = fmt.Sprintf("v%d", i)
			}
			return m
		}
		want, err := Canonical(1, "op", build())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for rep := 0; rep < 5; rep++ {
			got, err := Canonical(1, "op", build())
			if err != nil {
				t.Fatalf("round %d rep %d: %v", round, rep, err)
			}
			if got != want {
				t.Fatalf("round %d: same params canonicalized differently:\n  %s\n  %s", round, want, got)
			}
		}
	}
}

// TestCanonicalWorkersExcluded pins the worker-count exclusion: results
// are bit-identical at any worker setting, so Workers — as a struct
// field or a map key, any case — must not split the key space.
func TestCanonicalWorkersExcluded(t *testing.T) {
	type req struct {
		Tissue  string
		K       int
		Workers int
	}
	a, err := Canonical(3, "mine", req{Tissue: "brain", K: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonical(3, "mine", req{Tissue: "brain", K: 10, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("struct Workers field changed the key:\n  %s\n  %s", a, b)
	}
	c, err := Canonical(3, "mine", map[string]string{"tissue": "brain", "workers": "1"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Canonical(3, "mine", map[string]string{"tissue": "brain", "Workers": "8"})
	if err != nil {
		t.Fatal(err)
	}
	if c != d {
		t.Errorf("map workers key changed the key:\n  %s\n  %s", c, d)
	}
	// But a field that is not Workers must count.
	e, err := Canonical(3, "mine", req{Tissue: "brain", K: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a == e {
		t.Errorf("K change did not change the key: %s", a)
	}
}

// TestCanonicalGenerationMonotonicity pins the generation axis: the
// same (op, params) at different generations must always produce
// distinct keys — that is the entire invalidation mechanism — and the
// same generation must reproduce the same key.
func TestCanonicalGenerationMonotonicity(t *testing.T) {
	params := map[string]string{"tissue": "brain"}
	seen := map[Key]uint64{}
	for gen := uint64(1); gen <= 64; gen++ {
		k, err := Canonical(gen, "aggregate", params)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[k]; ok {
			t.Fatalf("generations %d and %d collided on key %s", prev, gen, k)
		}
		seen[k] = gen
		again, err := Canonical(gen, "aggregate", params)
		if err != nil {
			t.Fatal(err)
		}
		if again != k {
			t.Fatalf("generation %d key not stable: %s vs %s", gen, k, again)
		}
	}
}

// TestCanonicalTypeTagging pins kind-tag injectivity on the edges where
// naive string concatenation would collide.
func TestCanonicalTypeTagging(t *testing.T) {
	pairs := [][2]any{
		{"1", 1},
		{[]string{"ab"}, []string{"a", "b"}},
		{map[string]string{"a": "b=c"}, map[string]string{"a=b": "c"}},
		{[]any{"x", ""}, []any{"", "x"}},
		{1, uint(1)},
		{true, "true"},
	}
	for i, p := range pairs {
		a, err := Canonical(1, "op", p[0])
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		b, err := Canonical(1, "op", p[1])
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if a == b {
			t.Errorf("pair %d collided: %#v vs %#v -> %s", i, p[0], p[1], a)
		}
	}
}

// TestCanonicalRejectsNonData pins the uncacheable kinds: a params
// value smuggling a func or channel must error, not silently encode.
func TestCanonicalRejectsNonData(t *testing.T) {
	if _, err := Canonical(1, "op", func() {}); err == nil {
		t.Error("func canonicalized without error")
	}
	if _, err := Canonical(1, "op", map[string]any{"ch": make(chan int)}); err == nil {
		t.Error("channel canonicalized without error")
	}
	type cyclic struct{ Self *cyclic }
	c := &cyclic{}
	c.Self = c
	if _, err := Canonical(1, "op", c); err == nil {
		t.Error("cyclic value canonicalized without error")
	}
}

// randomParams builds a random params struct-and-map tree for the
// no-collision fuzz. The generator returns both the value and a
// fingerprint string that uniquely identifies the logical content, so
// distinct fingerprints must yield distinct keys.
func randomParams(rng *rand.Rand, depth int) (any, string) {
	kind := rng.Intn(6)
	if depth <= 0 {
		kind = rng.Intn(3)
	}
	switch kind {
	case 0:
		v := rng.Intn(1000)
		return v, fmt.Sprintf("i%d", v)
	case 1:
		v := fmt.Sprintf("s%d", rng.Intn(1000))
		return v, "s:" + v
	case 2:
		v := float64(rng.Intn(100)) / 4
		return v, fmt.Sprintf("f%g", v)
	case 3:
		n := rng.Intn(4)
		vals := make([]any, n)
		fps := make([]string, n)
		for i := range vals {
			vals[i], fps[i] = randomParams(rng, depth-1)
		}
		return vals, "l[" + strings.Join(fps, ",") + "]"
	case 4:
		n := rng.Intn(4)
		m := map[string]any{}
		fps := make([]string, 0, n)
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%d", i)
			var fp string
			m[k], fp = randomParams(rng, depth-1)
			fps = append(fps, k+"="+fp)
		}
		return m, "m{" + strings.Join(fps, ";") + "}"
	default:
		type leafStruct struct {
			A int
			B string
		}
		v := leafStruct{A: rng.Intn(100), B: fmt.Sprintf("b%d", rng.Intn(100))}
		return v, fmt.Sprintf("st{%d,%s}", v.A, v.B)
	}
}

// TestCanonicalNoCollisionFuzz generates thousands of randomized param
// structures and checks that two of them share a key only when their
// logical fingerprints agree.
func TestCanonicalNoCollisionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	byKey := map[Key]string{}
	for i := 0; i < 5000; i++ {
		params, fp := randomParams(rng, 3)
		k, err := Canonical(1, "op", params)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if prev, ok := byKey[k]; ok && prev != fp {
			t.Fatalf("collision: %q and %q both canonicalize to %s", prev, fp, k)
		}
		byKey[k] = fp
	}
}

// FuzzCanonicalStability is the fuzz-native form: for seed-derived
// params the canonicalization must be deterministic and must respect
// the generation axis.
func FuzzCanonicalStability(f *testing.F) {
	f.Add(int64(1), uint64(1))
	f.Add(int64(42), uint64(9))
	f.Fuzz(func(t *testing.T, seed int64, gen uint64) {
		params, _ := randomParams(rand.New(rand.NewSource(seed)), 3)
		a, err := Canonical(gen, "op", params)
		if err != nil {
			t.Skip() // non-data kinds are not generated, but stay safe
		}
		b, err := Canonical(gen, "op", params)
		if err != nil || a != b {
			t.Fatalf("unstable canonicalization: %s vs %s (err=%v)", a, b, err)
		}
		c, err := Canonical(gen+1, "op", params)
		if err != nil {
			t.Fatal(err)
		}
		if a == c {
			t.Fatalf("generation bump did not change the key: %s", a)
		}
	})
}

package sage

import (
	"os"
	"path/filepath"
	"testing"

	"gea/internal/atomicio"
)

// TestBinaryFileEveryByteFlip corrupts each byte of a saved ".b" tissue
// file in turn. Every flip must be detected at load — as a checksum or
// format error, never a panic and never a silently wrong dataset.
func TestBinaryFileEveryByteFlip(t *testing.T) {
	c := buildTestCorpus()
	ds := Build(c)
	metaByName := map[string]LibraryMeta{}
	for _, l := range c.Libraries {
		metaByName[l.Meta.Name] = l.Meta
	}

	path := filepath.Join(t.TempDir(), "brain.b")
	if err := SaveBinaryFile(atomicio.OS{}, path, ds); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBinaryFile(atomicio.OS{}, path, metaByName); err != nil {
		t.Fatalf("clean file must load: %v", err)
	}

	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0xFF
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBinaryFile(atomicio.OS{}, path, metaByName); err == nil {
			t.Errorf("flip of byte %d/%d went undetected", i, len(orig))
		}
	}
}

// TestMetaFileEveryByteFlip does the same for the ".meta" tolerance file.
func TestMetaFileEveryByteFlip(t *testing.T) {
	tol := map[TagID]float64{
		MustParseTag("AAAAAAAAAA"): 1,
		MustParseTag("ACGTACGTAC"): 2.5,
	}
	path := filepath.Join(t.TempDir(), "brain.meta")
	if err := SaveMetaFile(atomicio.OS{}, path, tol); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0xFF
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadMetaFile(atomicio.OS{}, path); err == nil {
			t.Errorf("flip of byte %d/%d went undetected", i, len(orig))
		}
	}
}

// TestCorpusLibraryByteFlipSalvages corrupts one library file of a saved
// corpus: the strict load must fail, while the salvaging load must return
// the remaining libraries and report exactly what was skipped.
func TestCorpusLibraryByteFlipSalvages(t *testing.T) {
	dir := t.TempDir()
	c := buildTestCorpus()
	if err := SaveCorpus(dir, c); err != nil {
		t.Fatal(err)
	}
	gen, err := atomicio.CurrentGen(atomicio.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, gen, "B2.sage")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadCorpus(dir); err == nil {
		t.Error("strict load accepted a corrupt library")
	}
	got, problems, err := LoadCorpusSalvage(atomicio.OS{}, dir)
	if err != nil {
		t.Fatalf("salvage load failed outright: %v", err)
	}
	if len(problems) != 1 || filepath.Base(problems[0].Path) != "B2.sage" {
		t.Fatalf("problems = %v, want exactly B2.sage", problems)
	}
	if len(got.Libraries) != 2 {
		t.Fatalf("salvaged %d libraries, want 2", len(got.Libraries))
	}
	for _, l := range got.Libraries {
		if l.Meta.Name == "B2" {
			t.Error("corrupt library made it into the salvaged corpus")
		}
	}
}

package sage

import (
	"fmt"
	"sort"
)

// Dataset is the dense form of a set of SAGE libraries over a common tag
// universe: the conceptual relation of Figure 3.2, with libraries as rows and
// tags as columns. All GEA operators (mine, aggregate, populate, diff) run
// against a Dataset; it corresponds to a "degenerate cluster" holding the
// whole (or a tissue-type slice of the) cleaned SAGE data.
//
// Physically, DB2 could not hold 60,000 columns, so the thesis stores the
// TAGS relation rotated (tags as rows; Section 4.6.1). The Dataset keeps the
// expression matrix row-major by library; the relational package provides the
// rotated view for the storage layer.
type Dataset struct {
	// Tags is the sorted tag universe; Tags[j] is the tag of column j.
	Tags []TagID
	// Libs holds per-library metadata; Libs[i] describes row i.
	Libs []LibraryMeta
	// Expr is the expression matrix: Expr[i][j] is the count of tag Tags[j]
	// in library Libs[i].
	Expr [][]float64

	tagCol map[TagID]int
	libRow map[string]int
}

// Build assembles a dense Dataset from a corpus over the union of its tags.
func Build(c *Corpus) *Dataset {
	return BuildWithTags(c, c.UnionTags())
}

// BuildWithTags assembles a dense Dataset whose columns are exactly tags
// (which must be sorted and duplicate-free); counts for tags outside a
// library are zero, matching the thesis's normalization rule that "genes that
// do not exist will remain as zero".
func BuildWithTags(c *Corpus, tags []TagID) *Dataset {
	ds := &Dataset{
		Tags:   tags,
		Libs:   make([]LibraryMeta, len(c.Libraries)),
		Expr:   make([][]float64, len(c.Libraries)),
		tagCol: make(map[TagID]int, len(tags)),
		libRow: make(map[string]int, len(c.Libraries)),
	}
	for j, t := range tags {
		ds.tagCol[t] = j
	}
	for i, l := range c.Libraries {
		ds.Libs[i] = l.Meta
		row := make([]float64, len(tags))
		for t, cnt := range l.Counts {
			if j, ok := ds.tagCol[t]; ok {
				row[j] = cnt
			}
		}
		ds.Expr[i] = row
		ds.libRow[l.Meta.Name] = i
	}
	return ds
}

// NumLibraries returns the number of rows.
func (d *Dataset) NumLibraries() int { return len(d.Libs) }

// NumTags returns the number of columns.
func (d *Dataset) NumTags() int { return len(d.Tags) }

// TagColumn returns the column index of tag and whether it is present.
func (d *Dataset) TagColumn(tag TagID) (int, bool) {
	j, ok := d.tagCol[tag]
	return j, ok
}

// LibraryRow returns the row index of the named library and whether it exists.
func (d *Dataset) LibraryRow(name string) (int, bool) {
	i, ok := d.libRow[name]
	return i, ok
}

// Value returns the expression level of tag in the library at row i; it
// returns 0 for tags outside the universe.
func (d *Dataset) Value(i int, tag TagID) float64 {
	if j, ok := d.tagCol[tag]; ok {
		return d.Expr[i][j]
	}
	return 0
}

// Column copies the expression values of column j across all libraries.
func (d *Dataset) Column(j int) []float64 {
	col := make([]float64, len(d.Expr))
	for i, row := range d.Expr {
		col[i] = row[j]
	}
	return col
}

// RowsByTissue returns the row indices of libraries of the given tissue type.
// It implements the relational selection E_brain = σ_tissueType='brain'(SAGE)
// of case study 1.
func (d *Dataset) RowsByTissue(tissue string) []int {
	var rows []int
	for i, m := range d.Libs {
		if m.Tissue == tissue {
			rows = append(rows, i)
		}
	}
	return rows
}

// RowsWhere returns the row indices whose metadata satisfies pred.
func (d *Dataset) RowsWhere(pred func(LibraryMeta) bool) []int {
	var rows []int
	for i, m := range d.Libs {
		if pred(m) {
			rows = append(rows, i)
		}
	}
	return rows
}

// TissueTypes returns the distinct tissue types among the rows, sorted.
func (d *Dataset) TissueTypes() []string {
	seen := map[string]bool{}
	for _, m := range d.Libs {
		seen[m.Tissue] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Subset returns a new Dataset restricted to the given rows (in the given
// order) over the same tag universe. Row data is shared, not copied; callers
// must not mutate Expr through a subset.
func (d *Dataset) Subset(rows []int) (*Dataset, error) {
	sub := &Dataset{
		Tags:   d.Tags,
		Libs:   make([]LibraryMeta, len(rows)),
		Expr:   make([][]float64, len(rows)),
		tagCol: d.tagCol,
		libRow: make(map[string]int, len(rows)),
	}
	for k, i := range rows {
		if i < 0 || i >= len(d.Libs) {
			return nil, fmt.Errorf("sage: row %d out of range [0,%d)", i, len(d.Libs))
		}
		sub.Libs[k] = d.Libs[i]
		sub.Expr[k] = d.Expr[i]
		sub.libRow[d.Libs[i].Name] = k
	}
	return sub, nil
}

// SubsetByTissue returns the tissue-type slice of the dataset, the
// "system-defined tissue type" data sets of Figure 4.4.
func (d *Dataset) SubsetByTissue(tissue string) (*Dataset, error) {
	rows := d.RowsByTissue(tissue)
	if len(rows) == 0 {
		return nil, fmt.Errorf("sage: no libraries of tissue type %q", tissue)
	}
	return d.Subset(rows)
}

// SubsetByNames returns the user-defined tissue-type data set of Figure 4.15:
// an arbitrary combination of libraries chosen by name.
func (d *Dataset) SubsetByNames(names []string) (*Dataset, error) {
	rows := make([]int, 0, len(names))
	for _, n := range names {
		i, ok := d.libRow[n]
		if !ok {
			return nil, fmt.Errorf("sage: unknown library %q", n)
		}
		rows = append(rows, i)
	}
	return d.Subset(rows)
}

// ToCorpus converts the dataset back to sparse libraries (dropping zeros).
func (d *Dataset) ToCorpus() *Corpus {
	c := &Corpus{}
	for i, m := range d.Libs {
		l := NewLibrary(m)
		for j, v := range d.Expr[i] {
			if v != 0 {
				l.Counts[d.Tags[j]] = v
			}
		}
		c.Libraries = append(c.Libraries, l)
	}
	return c
}

package sage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"gea/internal/atomicio"
	"gea/internal/iofault"
)

// faultCorpus builds a small corpus of n libraries whose counts are offset
// by bump, so "old" and "new" corpora are cheaply distinguishable.
func faultCorpus(n int, bump float64) *Corpus {
	c := &Corpus{}
	for i := 1; i <= n; i++ {
		l := NewLibrary(testMeta(i, fmt.Sprintf("SAGE_lib%02d", i), "brain", Cancer, BulkTissue))
		l.Add(MustParseTag("AAAAAAAAAC"), float64(10*i)+bump)
		l.Add(MustParseTag("ACGTACGTAC"), 3+bump)
		l.RefreshMeta()
		c.Libraries = append(c.Libraries, l)
	}
	return c
}

func corporaEqual(a, b *Corpus) bool {
	if len(a.Libraries) != len(b.Libraries) {
		return false
	}
	for i, la := range a.Libraries {
		lb := b.Libraries[i]
		if la.Meta.Name != lb.Meta.Name || la.Unique() != lb.Unique() {
			return false
		}
		for tag, count := range la.Counts {
			if lb.Count(tag) != count {
				return false
			}
		}
	}
	return true
}

// copyTree replicates a saved corpus/session directory so each crash
// iteration starts from the same committed old state.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copyTree %s -> %s: %v", src, dst, err)
	}
}

// TestSaveCorpusCrashWalk enumerates every filesystem operation of
// SaveCorpus — each library write, the index write, the CURRENT commit and
// the generation cleanup — and for a crash injected at each one asserts the
// directory then loads as either the complete old corpus or the complete
// new corpus, never a mix.
func TestSaveCorpusCrashWalk(t *testing.T) {
	oldC := faultCorpus(3, 0)
	newC := faultCorpus(4, 100) // one more library AND different counts

	seed := filepath.Join(t.TempDir(), "corpus")
	if err := SaveCorpus(seed, oldC); err != nil {
		t.Fatal(err)
	}

	// Count the operations of one full overwrite save.
	counter := iofault.New(atomicio.OS{}, iofault.Config{})
	{
		dir := filepath.Join(t.TempDir(), "corpus")
		copyTree(t, seed, dir)
		if err := SaveCorpusFS(counter, dir, newC); err != nil {
			t.Fatal(err)
		}
	}
	total := counter.Ops()
	// 4 libraries + index = 5 atomic file commits of 6 ops each, plus the
	// generation bookkeeping; anything shallow means the walk is not really
	// enumerating the save.
	if total < 30 {
		t.Fatalf("implausible op count %d (trace %v)", total, counter.Trace())
	}

	sawOld, sawNew := false, false
	for crash := 1; crash <= total; crash++ {
		dir := filepath.Join(t.TempDir(), "corpus")
		copyTree(t, seed, dir)
		fsys := iofault.New(atomicio.OS{}, iofault.Config{CrashAt: crash})
		saveErr := SaveCorpusFS(fsys, dir, newC)

		got, err := LoadCorpus(dir)
		if err != nil {
			t.Fatalf("crash at op %d: load after crash failed: %v", crash, err)
		}
		switch {
		case corporaEqual(got, oldC):
			sawOld = true
			if saveErr == nil {
				t.Errorf("crash at op %d: save reported success but old corpus loaded", crash)
			}
		case corporaEqual(got, newC):
			sawNew = true
		default:
			t.Fatalf("crash at op %d: loaded neither old nor new corpus (%d libraries)",
				crash, len(got.Libraries))
		}

		// Recovery: a clean retry after the crash lands the new corpus.
		if err := SaveCorpus(dir, newC); err != nil {
			t.Fatalf("crash at op %d: retry save failed: %v", crash, err)
		}
		if got, err := LoadCorpus(dir); err != nil || !corporaEqual(got, newC) {
			t.Fatalf("crash at op %d: retry did not restore new corpus (%v)", crash, err)
		}
	}
	if !sawOld {
		t.Error("no crash point preserved the old corpus — commit happens too early")
	}
	if !sawNew {
		t.Error("no crash point yielded the new corpus — commit never became visible")
	}
}

// TestSaveCorpusENOSPCAndShortWrite injects recoverable single-operation
// faults (disk full, short write) at every step: the save may fail, but the
// directory must always hold a complete corpus and a retry must succeed.
func TestSaveCorpusENOSPCAndShortWrite(t *testing.T) {
	oldC := faultCorpus(3, 0)
	newC := faultCorpus(4, 100)
	seed := filepath.Join(t.TempDir(), "corpus")
	if err := SaveCorpus(seed, oldC); err != nil {
		t.Fatal(err)
	}
	counter := iofault.New(atomicio.OS{}, iofault.Config{})
	{
		dir := filepath.Join(t.TempDir(), "corpus")
		copyTree(t, seed, dir)
		if err := SaveCorpusFS(counter, dir, newC); err != nil {
			t.Fatal(err)
		}
	}
	for _, kind := range []string{"enospc", "shortwrite"} {
		for op := 1; op <= counter.Ops(); op++ {
			cfg := iofault.Config{FailAt: op, FailErr: iofault.ErrNoSpace}
			if kind == "shortwrite" {
				cfg = iofault.Config{ShortWriteAt: op}
			}
			dir := filepath.Join(t.TempDir(), "corpus")
			copyTree(t, seed, dir)
			saveErr := SaveCorpusFS(iofault.New(atomicio.OS{}, cfg), dir, newC)

			got, err := LoadCorpus(dir)
			if err != nil {
				t.Fatalf("%s at op %d: load failed: %v", kind, op, err)
			}
			isOld, isNew := corporaEqual(got, oldC), corporaEqual(got, newC)
			if !isOld && !isNew {
				t.Fatalf("%s at op %d: torn corpus (%d libraries)", kind, op, len(got.Libraries))
			}
			if saveErr == nil && !isNew {
				t.Fatalf("%s at op %d: successful save lost the new corpus", kind, op)
			}
			if err := SaveCorpus(dir, newC); err != nil {
				t.Fatalf("%s at op %d: retry failed: %v", kind, op, err)
			}
			if got, err := LoadCorpus(dir); err != nil || !corporaEqual(got, newC) {
				t.Fatalf("%s at op %d: retry did not restore new corpus (%v)", kind, op, err)
			}
		}
	}
}

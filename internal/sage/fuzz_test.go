package sage

import (
	"bytes"
	"testing"
)

// FuzzBinaryRoundTrip throws arbitrary bytes at the ".b" codec. ReadBinary
// must never panic; whenever it accepts an input, re-encoding the dataset
// and reading it back must reproduce it exactly. The checked-in seeds under
// testdata/fuzz cover a valid file, truncations and header damage, and run
// as ordinary tests under plain "go test".
func FuzzBinaryRoundTrip(f *testing.F) {
	valid := func(c *Corpus) []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, Build(c)); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	full := valid(buildTestCorpus())
	f.Add(full)
	f.Add(full[:len(full)/2])                                     // truncated body
	f.Add(full[:7])                                               // truncated header
	f.Add([]byte{})                                               // empty
	f.Add([]byte("GEAB"))                                         // magic only
	f.Add(bytes.Replace(full, []byte("GEAB"), []byte("GEAX"), 1)) // bad magic
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadBinary(bytes.NewReader(data), nil)
		if err != nil {
			return // rejected input; only panics and silent corruption are bugs
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, d); err != nil {
			t.Fatalf("accepted dataset failed to encode: %v", err)
		}
		d2, err := ReadBinary(bytes.NewReader(out.Bytes()), nil)
		if err != nil {
			t.Fatalf("our own encoding failed to read back: %v", err)
		}
		if d2.NumLibraries() != d.NumLibraries() || d2.NumTags() != d.NumTags() {
			t.Fatalf("round trip changed dimensions: %dx%d -> %dx%d",
				d.NumLibraries(), d.NumTags(), d2.NumLibraries(), d2.NumTags())
		}
		for j, tag := range d.Tags {
			if d2.Tags[j] != tag {
				t.Fatalf("round trip changed tag %d: %v -> %v", j, tag, d2.Tags[j])
			}
		}
		for i := range d.Expr {
			if d2.Libs[i].Name != d.Libs[i].Name {
				t.Fatalf("round trip changed library %d name", i)
			}
			for j := range d.Expr[i] {
				if d2.Expr[i][j] != d.Expr[i][j] {
					t.Fatalf("round trip changed Expr[%d][%d]: %v -> %v",
						i, j, d.Expr[i][j], d2.Expr[i][j])
				}
			}
		}
	})
}

package sage

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// Targeted error-path tests for hostile persisted input: duplicate keys,
// non-finite numbers and unusable names must be rejected by every reader,
// not absorbed into the session.

func TestReadLibraryHostileInput(t *testing.T) {
	cases := map[string]string{
		"duplicate tag": "AAAAAAAAAA\t3\nAAAAAAAAAA\t4\n",
		"NaN count":     "AAAAAAAAAA\tNaN\n",
		"+Inf count":    "AAAAAAAAAA\t+Inf\n",
		"-Inf count":    "AAAAAAAAAA\t-Inf\n",
	}
	for name, in := range cases {
		if _, err := ReadLibrary(strings.NewReader(in), LibraryMeta{Name: "L"}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadIndexHostileInput(t *testing.T) {
	cases := map[string]string{
		"duplicate name": "A\tbrain\t1\t0\t5\t1\nA\tbrain\t1\t0\t5\t1\n",
		"NaN total":      "A\tbrain\t1\t0\tNaN\t1\n",
		"Inf total":      "A\tbrain\t1\t0\tInf\t1\n",
		"negative total": "A\tbrain\t1\t0\t-5\t1\n",
		"path separator": "a/b\tbrain\t1\t0\t5\t1\n",
		"empty name":     "\tbrain\t1\t0\t5\t1\n",
	}
	for name, in := range cases {
		if _, err := ReadIndex(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadMetaHostileInput(t *testing.T) {
	cases := map[string]string{
		"duplicate tag": "AAAAAAAAAA\t1\nAAAAAAAAAA\t2\n",
		"NaN value":     "AAAAAAAAAA\tNaN\n",
		"Inf value":     "AAAAAAAAAA\tInf\n",
	}
	for name, in := range cases {
		if _, err := ReadMeta(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestReadBinaryHostileInput patches specific fields of a valid ".b"
// encoding: a duplicated tag in the header and a NaN expression value.
func TestReadBinaryHostileInput(t *testing.T) {
	ds := Build(buildTestCorpus())
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Layout: "GEAB" | version u32 | nLibs u32 | nTags u32 | tag u32 ×nTags |
	// per library: nameLen u16 | name | expr float64 ×nTags.
	tagsOff := 4 + 3*4
	if len(ds.Tags) < 2 {
		t.Fatal("test corpus too small")
	}

	dupTag := append([]byte(nil), valid...)
	copy(dupTag[tagsOff+4:tagsOff+8], dupTag[tagsOff:tagsOff+4])
	if _, err := ReadBinary(bytes.NewReader(dupTag), nil); err == nil ||
		!strings.Contains(err.Error(), "duplicate tag") {
		t.Errorf("duplicated header tag: got %v", err)
	}

	exprOff := tagsOff + 4*len(ds.Tags) + 2 + len(ds.Libs[0].Name)
	nanExpr := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(nanExpr[exprOff:exprOff+8], math.Float64bits(math.NaN()))
	if _, err := ReadBinary(bytes.NewReader(nanExpr), nil); err == nil ||
		!strings.Contains(err.Error(), "non-finite") {
		t.Errorf("NaN expression value: got %v", err)
	}

	infExpr := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(infExpr[exprOff:exprOff+8], math.Float64bits(math.Inf(1)))
	if _, err := ReadBinary(bytes.NewReader(infExpr), nil); err == nil {
		t.Error("Inf expression value: expected error")
	}

	hugeDims := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hugeDims[8:12], 1<<30) // nLibs
	if _, err := ReadBinary(bytes.NewReader(hugeDims), nil); err == nil ||
		!strings.Contains(err.Error(), "implausible") {
		t.Errorf("implausible dimensions: got %v", err)
	}
}

package sage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements the on-disk formats of the thesis:
//
//   - one plain-text file per library ("SageLibrary/<name>.sage"), lines of
//     "TAG<TAB>count";
//   - "sageName.txt", the corpus index holding each library's statistical
//     information (name, tissue, neoplastic state, source, total, unique);
//   - the binary ".b" tissue file the fascicle program reads ("for
//     performance purposes, reading a large amount of data from a plain text
//     file proves faster than from a database" — and binary faster still);
//   - the ".meta" tolerance-vector file (attribute name and compact tolerance
//     value in a pre-defined format).

// WriteLibrary writes one library in the plain-text format, tags sorted.
func WriteLibrary(w io.Writer, l *Library) error {
	bw := bufio.NewWriter(w)
	for _, t := range l.Tags() {
		if _, err := fmt.Fprintf(bw, "%s\t%g\n", t, l.Counts[t]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLibrary parses a plain-text library file into l (which supplies the
// metadata). Blank lines and lines starting with '#' are ignored. Duplicate
// tags and non-finite counts are rejected: both would otherwise build a
// silently wrong library (Add accumulates; NaN poisons every aggregate).
func ReadLibrary(r io.Reader, meta LibraryMeta) (*Library, error) {
	l := NewLibrary(meta)
	seen := make(map[TagID]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("sage: %s line %d: want 2 fields, got %d", meta.Name, lineNo, len(fields))
		}
		tag, err := ParseTag(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sage: %s line %d: %v", meta.Name, lineNo, err)
		}
		if seen[tag] {
			return nil, fmt.Errorf("sage: %s line %d: duplicate tag %s", meta.Name, lineNo, tag)
		}
		seen[tag] = true
		count, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("sage: %s line %d: bad count %q", meta.Name, lineNo, fields[1])
		}
		if count < 0 || math.IsNaN(count) || math.IsInf(count, 0) {
			return nil, fmt.Errorf("sage: %s line %d: invalid count %g", meta.Name, lineNo, count)
		}
		l.Add(tag, count)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	l.RefreshMeta()
	return l, nil
}

// WriteIndex writes the sageName.txt corpus index: one tab-separated line per
// library with name, tissue, state, source, total and unique tag counts.
func WriteIndex(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	for _, l := range c.Libraries {
		m := l.Meta
		state := 0
		if m.State == Cancer {
			state = 1
		}
		src := 0
		if m.Source == CellLine {
			src = 1
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%d\t%d\t%g\t%d\n",
			m.Name, m.Tissue, state, src, m.TotalTags, m.UniqueTags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteIndexWithGens writes sageName.txt for a multi-generation append
// store. Libraries whose name maps to a generation dir in gens get a
// seventh tab field naming it, so the loader can resolve their ".sage"
// file inside an older committed generation; libraries absent from gens
// (or mapped to "") are written in the plain six-field form and resolve
// inside the generation holding the index itself.
func WriteIndexWithGens(w io.Writer, c *Corpus, gens map[string]string) error {
	bw := bufio.NewWriter(w)
	for _, l := range c.Libraries {
		m := l.Meta
		state := 0
		if m.State == Cancer {
			state = 1
		}
		src := 0
		if m.Source == CellLine {
			src = 1
		}
		if g := gens[m.Name]; g != "" {
			if !strings.HasPrefix(g, "gen-") || strings.ContainsAny(g, "/\\") {
				return fmt.Errorf("sage: library %q maps to invalid generation %q", m.Name, g)
			}
			if _, err := fmt.Fprintf(bw, "%s\t%s\t%d\t%d\t%g\t%d\t%s\n",
				m.Name, m.Tissue, state, src, m.TotalTags, m.UniqueTags, g); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%d\t%d\t%g\t%d\n",
			m.Name, m.Tissue, state, src, m.TotalTags, m.UniqueTags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadIndex parses sageName.txt and returns library metadata in file order.
// IDs are assigned 1..n by position, as in the thesis's Libraries relation.
// Duplicate or empty library names and non-finite totals are rejected — a
// duplicate name would shadow another library's data file.
func ReadIndex(r io.Reader) ([]LibraryMeta, error) {
	metas, _, err := readIndex(r, false)
	return metas, err
}

// ReadIndexWithGens parses sageName.txt accepting both the plain
// six-field form and the seven-field append-store form written by
// WriteIndexWithGens. The second result is parallel to the metas: the
// generation dir recorded for each library, "" when the line had no
// seventh field (the library lives beside the index).
func ReadIndexWithGens(r io.Reader) ([]LibraryMeta, []string, error) {
	return readIndex(r, true)
}

func readIndex(r io.Reader, allowGens bool) ([]LibraryMeta, []string, error) {
	var metas []LibraryMeta
	var gens []string
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "\t")
		gen := ""
		switch {
		case len(f) == 6:
		case len(f) == 7 && allowGens:
			gen = f[6]
			if !strings.HasPrefix(gen, "gen-") || strings.ContainsAny(gen, "/\\") {
				return nil, nil, fmt.Errorf("sage: index line %d: bad generation %q", lineNo, gen)
			}
		default:
			return nil, nil, fmt.Errorf("sage: index line %d: want 6 fields, got %d", lineNo, len(f))
		}
		state, err := strconv.Atoi(f[2])
		if err != nil || (state != 0 && state != 1) {
			return nil, nil, fmt.Errorf("sage: index line %d: bad state %q", lineNo, f[2])
		}
		src, err := strconv.Atoi(f[3])
		if err != nil || (src != 0 && src != 1) {
			return nil, nil, fmt.Errorf("sage: index line %d: bad source %q", lineNo, f[3])
		}
		total, err := strconv.ParseFloat(f[4], 64)
		if err != nil || total < 0 || math.IsNaN(total) || math.IsInf(total, 0) {
			return nil, nil, fmt.Errorf("sage: index line %d: bad total %q", lineNo, f[4])
		}
		unique, err := strconv.Atoi(f[5])
		if err != nil || unique < 0 {
			return nil, nil, fmt.Errorf("sage: index line %d: bad unique %q", lineNo, f[5])
		}
		if f[0] == "" {
			return nil, nil, fmt.Errorf("sage: index line %d: empty library name", lineNo)
		}
		if strings.ContainsAny(f[0], "/\\") {
			return nil, nil, fmt.Errorf("sage: index line %d: library name %q contains a path separator", lineNo, f[0])
		}
		if seen[f[0]] {
			return nil, nil, fmt.Errorf("sage: index line %d: duplicate library name %q", lineNo, f[0])
		}
		seen[f[0]] = true
		m := LibraryMeta{
			ID: len(metas) + 1, Name: f[0], Tissue: f[1],
			TotalTags: total, UniqueTags: unique,
		}
		if state == 1 {
			m.State = Cancer
		}
		if src == 1 {
			m.Source = CellLine
		}
		metas = append(metas, m)
		gens = append(gens, gen)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return metas, gens, nil
}

// Binary ".b" format: the dense tissue file the fascicle miner consumes.
//
//	magic "GEAB" | uint32 version | uint32 nLibs | uint32 nTags
//	nTags  × uint32 tag id
//	nLibs  × (uint16 nameLen | name bytes | nTags × float64)
const (
	binaryMagic   = "GEAB"
	binaryVersion = 1
)

// WriteBinary writes the dataset in the ".b" format.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []uint32{binaryVersion, uint32(len(d.Libs)), uint32(len(d.Tags))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, t := range d.Tags {
		if err := binary.Write(bw, binary.LittleEndian, uint32(t)); err != nil {
			return err
		}
	}
	for i, m := range d.Libs {
		if len(m.Name) > math.MaxUint16 {
			return fmt.Errorf("sage: library name %q too long", m.Name)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(m.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(m.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, d.Expr[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a ".b" file. Library metadata beyond the name (tissue,
// state, source) is resolved from metaByName when present.
func ReadBinary(r io.Reader, metaByName map[string]LibraryMeta) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("sage: bad magic %q", magic)
	}
	var version, nLibs, nTags uint32
	for _, p := range []*uint32{&version, &nLibs, &nTags} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("sage: unsupported binary version %d", version)
	}
	// Sanity bound against corrupt headers: the tag space is 4^10 (~1M), so
	// a larger dimension can never be valid, and accepting one would let a
	// 16-byte header force gigabyte allocations.
	const maxDim = 1 << 20
	if nLibs > maxDim || nTags > maxDim {
		return nil, fmt.Errorf("sage: implausible dimensions %d x %d", nLibs, nTags)
	}
	tags := make([]TagID, nTags)
	seenTags := make(map[TagID]bool, nTags)
	for j := range tags {
		var v uint32
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		tags[j] = TagID(v)
		if !tags[j].Valid() {
			return nil, fmt.Errorf("sage: invalid tag id %d", v)
		}
		if seenTags[tags[j]] {
			return nil, fmt.Errorf("sage: duplicate tag %s in binary header", tags[j])
		}
		seenTags[tags[j]] = true
	}
	c := &Corpus{}
	seenNames := make(map[string]bool, nLibs)
	exprs := make([][]float64, nLibs)
	for i := 0; i < int(nLibs); i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return nil, err
		}
		name := string(nameBytes)
		if name == "" {
			return nil, fmt.Errorf("sage: library %d has an empty name", i+1)
		}
		if seenNames[name] {
			return nil, fmt.Errorf("sage: duplicate library name %q", name)
		}
		seenNames[name] = true
		row := make([]float64, nTags)
		if err := binary.Read(br, binary.LittleEndian, row); err != nil {
			return nil, err
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("sage: library %q tag %s: non-finite expression value", name, tags[j])
			}
		}
		meta := LibraryMeta{ID: i + 1, Name: name}
		if m, ok := metaByName[name]; ok {
			meta = m
		}
		l := NewLibrary(meta)
		c.Libraries = append(c.Libraries, l)
		exprs[i] = row
	}
	// Assemble directly: the corpus libraries stay empty; we build the dense
	// dataset from the rows we read.
	ds := &Dataset{
		Tags:   tags,
		Libs:   make([]LibraryMeta, nLibs),
		Expr:   exprs,
		tagCol: make(map[TagID]int, nTags),
		libRow: make(map[string]int, nLibs),
	}
	for j, t := range tags {
		ds.tagCol[t] = j
	}
	for i, l := range c.Libraries {
		ds.Libs[i] = l.Meta
		ds.libRow[l.Meta.Name] = i
	}
	return ds, nil
}

// WriteMeta writes a ".meta" tolerance-vector file: "TAG<TAB>tolerance" per
// line, in tag order.
func WriteMeta(w io.Writer, tol map[TagID]float64) error {
	tags := make([]TagID, 0, len(tol))
	for t := range tol {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	bw := bufio.NewWriter(w)
	for _, t := range tags {
		if _, err := fmt.Fprintf(bw, "%s\t%g\n", t, tol[t]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMeta parses a ".meta" tolerance-vector file. Duplicate tags and
// non-finite tolerances are rejected.
func ReadMeta(r io.Reader) (map[TagID]float64, error) {
	tol := make(map[TagID]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("sage: meta line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		tag, err := ParseTag(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sage: meta line %d: %v", lineNo, err)
		}
		if _, dup := tol[tag]; dup {
			return nil, fmt.Errorf("sage: meta line %d: duplicate tag %s", lineNo, tag)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("sage: meta line %d: bad tolerance %q", lineNo, fields[1])
		}
		tol[tag] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tol, nil
}

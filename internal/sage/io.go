package sage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file implements the on-disk formats of the thesis:
//
//   - one plain-text file per library ("SageLibrary/<name>.sage"), lines of
//     "TAG<TAB>count";
//   - "sageName.txt", the corpus index holding each library's statistical
//     information (name, tissue, neoplastic state, source, total, unique);
//   - the binary ".b" tissue file the fascicle program reads ("for
//     performance purposes, reading a large amount of data from a plain text
//     file proves faster than from a database" — and binary faster still);
//   - the ".meta" tolerance-vector file (attribute name and compact tolerance
//     value in a pre-defined format).

// WriteLibrary writes one library in the plain-text format, tags sorted.
func WriteLibrary(w io.Writer, l *Library) error {
	bw := bufio.NewWriter(w)
	for _, t := range l.Tags() {
		if _, err := fmt.Fprintf(bw, "%s\t%g\n", t, l.Counts[t]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLibrary parses a plain-text library file into l (which supplies the
// metadata). Blank lines and lines starting with '#' are ignored.
func ReadLibrary(r io.Reader, meta LibraryMeta) (*Library, error) {
	l := NewLibrary(meta)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("sage: %s line %d: want 2 fields, got %d", meta.Name, lineNo, len(fields))
		}
		tag, err := ParseTag(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sage: %s line %d: %v", meta.Name, lineNo, err)
		}
		count, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("sage: %s line %d: bad count %q", meta.Name, lineNo, fields[1])
		}
		if count < 0 {
			return nil, fmt.Errorf("sage: %s line %d: negative count %g", meta.Name, lineNo, count)
		}
		l.Add(tag, count)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	l.RefreshMeta()
	return l, nil
}

// WriteIndex writes the sageName.txt corpus index: one tab-separated line per
// library with name, tissue, state, source, total and unique tag counts.
func WriteIndex(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	for _, l := range c.Libraries {
		m := l.Meta
		state := 0
		if m.State == Cancer {
			state = 1
		}
		src := 0
		if m.Source == CellLine {
			src = 1
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%d\t%d\t%g\t%d\n",
			m.Name, m.Tissue, state, src, m.TotalTags, m.UniqueTags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadIndex parses sageName.txt and returns library metadata in file order.
// IDs are assigned 1..n by position, as in the thesis's Libraries relation.
func ReadIndex(r io.Reader) ([]LibraryMeta, error) {
	var metas []LibraryMeta
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "\t")
		if len(f) != 6 {
			return nil, fmt.Errorf("sage: index line %d: want 6 fields, got %d", lineNo, len(f))
		}
		state, err := strconv.Atoi(f[2])
		if err != nil || (state != 0 && state != 1) {
			return nil, fmt.Errorf("sage: index line %d: bad state %q", lineNo, f[2])
		}
		src, err := strconv.Atoi(f[3])
		if err != nil || (src != 0 && src != 1) {
			return nil, fmt.Errorf("sage: index line %d: bad source %q", lineNo, f[3])
		}
		total, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return nil, fmt.Errorf("sage: index line %d: bad total %q", lineNo, f[4])
		}
		unique, err := strconv.Atoi(f[5])
		if err != nil {
			return nil, fmt.Errorf("sage: index line %d: bad unique %q", lineNo, f[5])
		}
		m := LibraryMeta{
			ID: len(metas) + 1, Name: f[0], Tissue: f[1],
			TotalTags: total, UniqueTags: unique,
		}
		if state == 1 {
			m.State = Cancer
		}
		if src == 1 {
			m.Source = CellLine
		}
		metas = append(metas, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return metas, nil
}

// SaveCorpus writes the corpus to dir: sageName.txt plus one <name>.sage file
// per library. The directory is created if needed.
func SaveCorpus(dir string, c *Corpus) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	idx, err := os.Create(filepath.Join(dir, "sageName.txt"))
	if err != nil {
		return err
	}
	if err := WriteIndex(idx, c); err != nil {
		idx.Close()
		return err
	}
	if err := idx.Close(); err != nil {
		return err
	}
	for _, l := range c.Libraries {
		f, err := os.Create(filepath.Join(dir, l.Meta.Name+".sage"))
		if err != nil {
			return err
		}
		if err := WriteLibrary(f, l); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadCorpus reads a corpus previously written by SaveCorpus.
func LoadCorpus(dir string) (*Corpus, error) {
	idx, err := os.Open(filepath.Join(dir, "sageName.txt"))
	if err != nil {
		return nil, err
	}
	metas, err := ReadIndex(idx)
	idx.Close()
	if err != nil {
		return nil, err
	}
	c := &Corpus{}
	for _, m := range metas {
		f, err := os.Open(filepath.Join(dir, m.Name+".sage"))
		if err != nil {
			return nil, err
		}
		l, err := ReadLibrary(f, m)
		f.Close()
		if err != nil {
			return nil, err
		}
		c.Libraries = append(c.Libraries, l)
	}
	return c, nil
}

// Binary ".b" format: the dense tissue file the fascicle miner consumes.
//
//	magic "GEAB" | uint32 version | uint32 nLibs | uint32 nTags
//	nTags  × uint32 tag id
//	nLibs  × (uint16 nameLen | name bytes | nTags × float64)
const (
	binaryMagic   = "GEAB"
	binaryVersion = 1
)

// WriteBinary writes the dataset in the ".b" format.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []uint32{binaryVersion, uint32(len(d.Libs)), uint32(len(d.Tags))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, t := range d.Tags {
		if err := binary.Write(bw, binary.LittleEndian, uint32(t)); err != nil {
			return err
		}
	}
	for i, m := range d.Libs {
		if len(m.Name) > math.MaxUint16 {
			return fmt.Errorf("sage: library name %q too long", m.Name)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(m.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(m.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, d.Expr[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a ".b" file. Library metadata beyond the name (tissue,
// state, source) is resolved from metaByName when present.
func ReadBinary(r io.Reader, metaByName map[string]LibraryMeta) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("sage: bad magic %q", magic)
	}
	var version, nLibs, nTags uint32
	for _, p := range []*uint32{&version, &nLibs, &nTags} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("sage: unsupported binary version %d", version)
	}
	const maxDim = 1 << 26 // sanity bound against corrupt headers
	if nLibs > maxDim || nTags > maxDim {
		return nil, fmt.Errorf("sage: implausible dimensions %d x %d", nLibs, nTags)
	}
	tags := make([]TagID, nTags)
	for j := range tags {
		var v uint32
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		tags[j] = TagID(v)
		if !tags[j].Valid() {
			return nil, fmt.Errorf("sage: invalid tag id %d", v)
		}
	}
	c := &Corpus{}
	exprs := make([][]float64, nLibs)
	for i := 0; i < int(nLibs); i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return nil, err
		}
		row := make([]float64, nTags)
		if err := binary.Read(br, binary.LittleEndian, row); err != nil {
			return nil, err
		}
		meta := LibraryMeta{ID: i + 1, Name: string(nameBytes)}
		if m, ok := metaByName[meta.Name]; ok {
			meta = m
		}
		l := NewLibrary(meta)
		c.Libraries = append(c.Libraries, l)
		exprs[i] = row
	}
	// Assemble directly: the corpus libraries stay empty; we build the dense
	// dataset from the rows we read.
	ds := &Dataset{
		Tags:   tags,
		Libs:   make([]LibraryMeta, nLibs),
		Expr:   exprs,
		tagCol: make(map[TagID]int, nTags),
		libRow: make(map[string]int, nLibs),
	}
	for j, t := range tags {
		ds.tagCol[t] = j
	}
	for i, l := range c.Libraries {
		ds.Libs[i] = l.Meta
		ds.libRow[l.Meta.Name] = i
	}
	return ds, nil
}

// WriteMeta writes a ".meta" tolerance-vector file: "TAG<TAB>tolerance" per
// line, in tag order.
func WriteMeta(w io.Writer, tol map[TagID]float64) error {
	tags := make([]TagID, 0, len(tol))
	for t := range tol {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	bw := bufio.NewWriter(w)
	for _, t := range tags {
		if _, err := fmt.Fprintf(bw, "%s\t%g\n", t, tol[t]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMeta parses a ".meta" tolerance-vector file.
func ReadMeta(r io.Reader) (map[TagID]float64, error) {
	tol := make(map[TagID]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("sage: meta line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		tag, err := ParseTag(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sage: meta line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("sage: meta line %d: bad tolerance %q", lineNo, fields[1])
		}
		tol[tag] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tol, nil
}

package sage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLibraryTextRoundTrip(t *testing.T) {
	l := NewLibrary(testMeta(1, "L", "brain", Cancer, BulkTissue))
	l.Add(MustParseTag("ACGTACGTAC"), 12)
	l.Add(MustParseTag("AAAAAAAAAA"), 1843)
	l.Add(MustParseTag("TTTTTTTTTT"), 0.5)
	l.RefreshMeta()

	var buf bytes.Buffer
	if err := WriteLibrary(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLibrary(&buf, l.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if got.Unique() != 3 || got.Count(MustParseTag("AAAAAAAAAA")) != 1843 ||
		got.Count(MustParseTag("TTTTTTTTTT")) != 0.5 {
		t.Errorf("round trip mismatch: %v", got.Counts)
	}
	if got.Meta.TotalTags != l.Total() {
		t.Errorf("RefreshMeta after read: %v", got.Meta.TotalTags)
	}
}

func TestReadLibrarySkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\nAAAAAAAAAA\t3\n  \nACGTACGTAC\t2\n"
	l, err := ReadLibrary(strings.NewReader(in), LibraryMeta{Name: "L"})
	if err != nil {
		t.Fatal(err)
	}
	if l.Unique() != 2 {
		t.Errorf("Unique = %d, want 2", l.Unique())
	}
}

func TestReadLibraryErrors(t *testing.T) {
	cases := []string{
		"AAAAAAAAAA\n",       // missing count
		"AAAAAAAAAA\t1\t2\n", // extra field
		"NOTATAG!!!\t1\n",    // bad tag
		"AAAAAAAAAA\tx\n",    // bad count
		"AAAAAAAAAA\t-3\n",   // negative count
		"AAAAAAAAA\t1\n",     // short tag
	}
	for _, in := range cases {
		if _, err := ReadLibrary(strings.NewReader(in), LibraryMeta{Name: "L"}); err == nil {
			t.Errorf("ReadLibrary(%q): expected error", in)
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	c := buildTestCorpus()
	var buf bytes.Buffer
	if err := WriteIndex(&buf, c); err != nil {
		t.Fatal(err)
	}
	metas, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 3 {
		t.Fatalf("got %d metas", len(metas))
	}
	if metas[0].Name != "B1" || metas[0].Tissue != "brain" || metas[0].State != Cancer {
		t.Errorf("meta[0] = %+v", metas[0])
	}
	if metas[1].State != Normal {
		t.Errorf("meta[1] state = %v", metas[1].State)
	}
	if metas[0].ID != 1 || metas[2].ID != 3 {
		t.Error("IDs not assigned by position")
	}
	if metas[0].TotalTags != 15 || metas[0].UniqueTags != 2 {
		t.Errorf("meta[0] stats = %+v", metas[0])
	}
}

func TestReadIndexErrors(t *testing.T) {
	cases := []string{
		"A\tbrain\t1\t0\t5\n",    // 5 fields
		"A\tbrain\tx\t0\t5\t1\n", // bad state
		"A\tbrain\t2\t0\t5\t1\n", // state out of range
		"A\tbrain\t1\tx\t5\t1\n", // bad source
		"A\tbrain\t1\t0\tx\t1\n", // bad total
		"A\tbrain\t1\t0\t5\tx\n", // bad unique
	}
	for _, in := range cases {
		if _, err := ReadIndex(strings.NewReader(in)); err == nil {
			t.Errorf("ReadIndex(%q): expected error", in)
		}
	}
}

func TestSaveLoadCorpus(t *testing.T) {
	dir := t.TempDir()
	c := buildTestCorpus()
	if err := SaveCorpus(dir, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Libraries) != 3 {
		t.Fatalf("loaded %d libraries", len(got.Libraries))
	}
	for i, orig := range c.Libraries {
		l := got.Libraries[i]
		if l.Meta.Name != orig.Meta.Name || l.Meta.Tissue != orig.Meta.Tissue ||
			l.Meta.State != orig.Meta.State {
			t.Errorf("library %d meta mismatch: %+v vs %+v", i, l.Meta, orig.Meta)
		}
		for tag, v := range orig.Counts {
			if l.Count(tag) != v {
				t.Errorf("%s %v: %v vs %v", l.Meta.Name, tag, l.Count(tag), v)
			}
		}
	}
}

func TestLoadCorpusMissingDir(t *testing.T) {
	if _, err := LoadCorpus("/nonexistent/dir"); err == nil {
		t.Error("LoadCorpus(missing): expected error")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	c := buildTestCorpus()
	ds := Build(c)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	metaByName := map[string]LibraryMeta{}
	for _, l := range c.Libraries {
		metaByName[l.Meta.Name] = l.Meta
	}
	got, err := ReadBinary(&buf, metaByName)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLibraries() != ds.NumLibraries() || got.NumTags() != ds.NumTags() {
		t.Fatalf("dims changed: %d x %d", got.NumLibraries(), got.NumTags())
	}
	for i := range ds.Expr {
		if got.Libs[i].Name != ds.Libs[i].Name || got.Libs[i].Tissue != ds.Libs[i].Tissue {
			t.Errorf("lib %d meta mismatch", i)
		}
		for j := range ds.Expr[i] {
			if got.Expr[i][j] != ds.Expr[i][j] {
				t.Fatalf("Expr[%d][%d] = %v, want %v", i, j, got.Expr[i][j], ds.Expr[i][j])
			}
		}
	}
}

func TestReadBinaryWithoutMeta(t *testing.T) {
	ds := Build(buildTestCorpus())
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Without metadata the names survive but tissue defaults to empty.
	if got.Libs[0].Name != "B1" || got.Libs[0].Tissue != "" {
		t.Errorf("fallback meta = %+v", got.Libs[0])
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a binary file"), nil); err == nil {
		t.Error("expected error on bad magic")
	}
	if _, err := ReadBinary(strings.NewReader(""), nil); err == nil {
		t.Error("expected error on empty input")
	}
	// Truncated: valid magic then nothing.
	if _, err := ReadBinary(strings.NewReader("GEAB"), nil); err == nil {
		t.Error("expected error on truncated header")
	}
}

func TestMetaRoundTrip(t *testing.T) {
	tol := map[TagID]float64{
		MustParseTag("AAAAAAAAAA"): 120,
		MustParseTag("AAAAAAAAAC"): 3,
		MustParseTag("AAAAAAAAAT"): 47,
	}
	var buf bytes.Buffer
	if err := WriteMeta(&buf, tol); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d entries", len(got))
	}
	for tag, v := range tol {
		if got[tag] != v {
			t.Errorf("%v: %v, want %v", tag, got[tag], v)
		}
	}
}

func TestReadMetaErrors(t *testing.T) {
	for _, in := range []string{"AAAAAAAAAA\n", "BAD\t1\n", "AAAAAAAAAA\t-1\n", "AAAAAAAAAA\tx\n"} {
		if _, err := ReadMeta(strings.NewReader(in)); err == nil {
			t.Errorf("ReadMeta(%q): expected error", in)
		}
	}
}

func TestSaveCorpusErrorPaths(t *testing.T) {
	c := buildTestCorpus()
	// A regular file where the directory should go (permission bits are
	// useless here — tests may run as root).
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpus(blocker, c); err == nil {
		t.Error("SaveCorpus onto a file: expected error")
	}
	if err := SaveCorpus(filepath.Join(blocker, "sub"), c); err == nil {
		t.Error("SaveCorpus under a file: expected error")
	}
	// A non-empty directory squatting on the CURRENT commit pointer breaks
	// the commit rename.
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "CURRENT", "junk"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpus(dir, c); err == nil {
		t.Error("SaveCorpus with directory-shadowed CURRENT: expected error")
	}
	// A library whose name escapes the directory is rejected outright.
	bad := &Corpus{Libraries: []*Library{NewLibrary(LibraryMeta{ID: 1, Name: "../escape"})}}
	if err := SaveCorpus(t.TempDir(), bad); err == nil {
		t.Error("SaveCorpus with path-escaping library name: expected error")
	}
	// Duplicate library names would shadow each other's files.
	dup := &Corpus{Libraries: []*Library{
		NewLibrary(LibraryMeta{ID: 1, Name: "L"}),
		NewLibrary(LibraryMeta{ID: 2, Name: "L"}),
	}}
	if err := SaveCorpus(t.TempDir(), dup); err == nil {
		t.Error("SaveCorpus with duplicate library names: expected error")
	}
}

// failWriter errors after n bytes, exercising WriteBinary's error branches.
type failWriter struct {
	n int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("synthetic write failure")
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, fmt.Errorf("synthetic write failure")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteBinaryErrorPaths(t *testing.T) {
	ds := Build(buildTestCorpus())
	// Failing at several offsets exercises header, tag and row branches.
	for _, limit := range []int{0, 2, 10, 30, 60} {
		if err := WriteBinary(&failWriter{n: limit}, ds); err == nil {
			t.Errorf("WriteBinary with %d-byte budget: expected error", limit)
		}
	}
}

func TestWriteLibraryAndMetaErrorPaths(t *testing.T) {
	l := NewLibrary(LibraryMeta{Name: "L"})
	l.Add(MustParseTag("AAAAAAAAAA"), 1)
	if err := WriteLibrary(&failWriter{n: 0}, l); err == nil {
		t.Error("WriteLibrary failure: expected error")
	}
	if err := WriteMeta(&failWriter{n: 0}, map[TagID]float64{0: 1}); err == nil {
		t.Error("WriteMeta failure: expected error")
	}
	c := buildTestCorpus()
	if err := WriteIndex(&failWriter{n: 0}, c); err == nil {
		t.Error("WriteIndex failure: expected error")
	}
}

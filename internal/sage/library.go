package sage

import (
	"fmt"
	"sort"
)

// NeoplasticState records whether a library was derived from cancerous or
// normal tissue.
type NeoplasticState int

// Neoplastic states.
const (
	Normal NeoplasticState = iota
	Cancer
)

// String renders the state as in the thesis's Libraries relation.
func (s NeoplasticState) String() string {
	if s == Cancer {
		return "cancer"
	}
	return "normal"
}

// Source records how the sample was obtained: bulk tissue taken directly from
// a body, or a cell line grown in vitro.
type Source int

// Sample sources.
const (
	BulkTissue Source = iota
	CellLine
)

// String renders the source as in the thesis's Libraries relation.
func (s Source) String() string {
	if s == CellLine {
		return "cell line"
	}
	return "bulk tissue"
}

// Property is a value a fascicle purity check can be run against
// (Section 4.3.1.2: cancer, normal, bulk tissue, or cell line).
type Property int

// Purity-check properties.
const (
	PropCancer Property = iota
	PropNormal
	PropBulkTissue
	PropCellLine
)

// String names the property as the purity-check GUI does.
func (p Property) String() string {
	switch p {
	case PropCancer:
		return "cancer"
	case PropNormal:
		return "normal"
	case PropBulkTissue:
		return "bulk tissue"
	default:
		return "cell line"
	}
}

// ParseProperty parses a purity-check property name.
func ParseProperty(s string) (Property, error) {
	switch s {
	case "cancer":
		return PropCancer, nil
	case "normal":
		return PropNormal, nil
	case "bulk tissue", "bulk":
		return PropBulkTissue, nil
	case "cell line", "cellline":
		return PropCellLine, nil
	}
	return 0, fmt.Errorf("sage: unknown property %q", s)
}

// LibraryMeta is the auxiliary data stored per library in the Libraries
// relation of Appendix IV: identity, tissue type, neoplastic state, sample
// source, and the total / unique tag counts of the raw library.
type LibraryMeta struct {
	ID     int    // 1-based library ID, as in the thesis (1..100)
	Name   string // e.g. "SAGE_Duke_H1020"
	Tissue string // e.g. "brain"
	State  NeoplasticState
	Source Source
	// TotalTags is the sum of all count values in the library; UniqueTags is
	// the number of distinct tags detected.
	TotalTags  float64
	UniqueTags int
}

// HasProperty reports whether the library satisfies a purity-check property.
func (m LibraryMeta) HasProperty(p Property) bool {
	switch p {
	case PropCancer:
		return m.State == Cancer
	case PropNormal:
		return m.State == Normal
	case PropBulkTissue:
		return m.Source == BulkTissue
	default:
		return m.Source == CellLine
	}
}

// Library is one SAGE expression profile: a sparse map from tag to count.
// Counts are float64 because normalization (scaling every library to 300,000
// total tags) produces fractional values.
type Library struct {
	Meta   LibraryMeta
	Counts map[TagID]float64
}

// NewLibrary returns an empty library with the given metadata.
func NewLibrary(meta LibraryMeta) *Library {
	return &Library{Meta: meta, Counts: make(map[TagID]float64)}
}

// Add increases the count of tag by n.
func (l *Library) Add(tag TagID, n float64) {
	if n == 0 {
		return
	}
	l.Counts[tag] += n
}

// Count returns the expression level of tag (0 when absent).
func (l *Library) Count(tag TagID) float64 { return l.Counts[tag] }

// Total returns the sum of all count values (the "total number of tags").
// The sum runs in ascending tag order so the float result is bit-identical
// across processes — map-order accumulation differs in the last ulp from
// build to build, which breaks cross-process DeepEqual of derived results.
func (l *Library) Total() float64 {
	var sum float64
	for _, t := range l.Tags() {
		sum += l.Counts[t]
	}
	return sum
}

// Unique returns the number of distinct tags (the "unique number of tags").
func (l *Library) Unique() int { return len(l.Counts) }

// Tags returns the library's tags in ascending TagID order.
func (l *Library) Tags() []TagID {
	tags := make([]TagID, 0, len(l.Counts))
	for t := range l.Counts {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}

// RefreshMeta recomputes the TotalTags / UniqueTags metadata from the counts.
func (l *Library) RefreshMeta() {
	l.Meta.TotalTags = l.Total()
	l.Meta.UniqueTags = l.Unique()
}

// Clone returns a deep copy of the library.
func (l *Library) Clone() *Library {
	cp := NewLibrary(l.Meta)
	for t, c := range l.Counts {
		cp.Counts[t] = c
	}
	return cp
}

// Scale multiplies every count by factor. Scaling to a common total is the
// normalization step of Section 4.2 ("all libraries are scaled up to
// 300,000 mRNAs per cell").
func (l *Library) Scale(factor float64) {
	for t := range l.Counts {
		l.Counts[t] *= factor
	}
}

// Corpus is an ordered collection of libraries — the raw form of the SAGE
// data set before it is assembled into a dense Dataset.
type Corpus struct {
	Libraries []*Library
}

// TissueTypes returns the distinct tissue types in the corpus, sorted.
func (c *Corpus) TissueTypes() []string {
	seen := map[string]bool{}
	for _, l := range c.Libraries {
		seen[l.Meta.Tissue] = true
	}
	types := make([]string, 0, len(seen))
	for t := range seen {
		types = append(types, t)
	}
	sort.Strings(types)
	return types
}

// ByTissue returns the libraries of the given tissue type, in corpus order.
func (c *Corpus) ByTissue(tissue string) []*Library {
	var out []*Library
	for _, l := range c.Libraries {
		if l.Meta.Tissue == tissue {
			out = append(out, l)
		}
	}
	return out
}

// ByName returns the library with the given name, or nil.
func (c *Corpus) ByName(name string) *Library {
	for _, l := range c.Libraries {
		if l.Meta.Name == name {
			return l
		}
	}
	return nil
}

// ByID returns the library with the given ID, or nil.
func (c *Corpus) ByID(id int) *Library {
	for _, l := range c.Libraries {
		if l.Meta.ID == id {
			return l
		}
	}
	return nil
}

// UnionTags returns every tag that appears in at least one library, sorted.
// This is the first step of the data-cleaning pipeline of Section 4.2.
func (c *Corpus) UnionTags() []TagID {
	seen := map[TagID]bool{}
	for _, l := range c.Libraries {
		for t := range l.Counts {
			seen[t] = true
		}
	}
	tags := make([]TagID, 0, len(seen))
	for t := range seen {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}

// TotalUniqueTags returns the size of the corpus-wide tag union.
func (c *Corpus) TotalUniqueTags() int { return len(c.UnionTags()) }

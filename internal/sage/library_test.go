package sage

import (
	"testing"
)

func testMeta(id int, name, tissue string, state NeoplasticState, src Source) LibraryMeta {
	return LibraryMeta{ID: id, Name: name, Tissue: tissue, State: state, Source: src}
}

func TestLibraryBasics(t *testing.T) {
	l := NewLibrary(testMeta(1, "SAGE_test", "brain", Cancer, BulkTissue))
	a, c := MustParseTag("AAAAAAAAAA"), MustParseTag("CCCCCCCCCC")
	l.Add(a, 5)
	l.Add(a, 3)
	l.Add(c, 2)
	l.Add(c, 0) // no-op

	if got := l.Count(a); got != 8 {
		t.Errorf("Count(a) = %v, want 8", got)
	}
	if got := l.Count(MustParseTag("GGGGGGGGGG")); got != 0 {
		t.Errorf("Count(absent) = %v, want 0", got)
	}
	if got := l.Total(); got != 10 {
		t.Errorf("Total = %v, want 10", got)
	}
	if got := l.Unique(); got != 2 {
		t.Errorf("Unique = %v, want 2", got)
	}
	tags := l.Tags()
	if len(tags) != 2 || tags[0] != a || tags[1] != c {
		t.Errorf("Tags = %v", tags)
	}
}

func TestLibraryRefreshMetaCloneScale(t *testing.T) {
	l := NewLibrary(testMeta(1, "L", "brain", Normal, CellLine))
	l.Add(MustParseTag("ACGTACGTAC"), 4)
	l.RefreshMeta()
	if l.Meta.TotalTags != 4 || l.Meta.UniqueTags != 1 {
		t.Errorf("RefreshMeta = %+v", l.Meta)
	}

	cp := l.Clone()
	cp.Add(MustParseTag("ACGTACGTAC"), 1)
	if l.Count(MustParseTag("ACGTACGTAC")) != 4 {
		t.Error("Clone is not deep")
	}

	l.Scale(2.5)
	if got := l.Count(MustParseTag("ACGTACGTAC")); got != 10 {
		t.Errorf("Scale: count = %v, want 10", got)
	}
}

func TestStateSourceStrings(t *testing.T) {
	if Cancer.String() != "cancer" || Normal.String() != "normal" {
		t.Error("NeoplasticState strings wrong")
	}
	if BulkTissue.String() != "bulk tissue" || CellLine.String() != "cell line" {
		t.Error("Source strings wrong")
	}
}

func TestHasProperty(t *testing.T) {
	m := testMeta(1, "L", "brain", Cancer, CellLine)
	tests := []struct {
		p    Property
		want bool
	}{
		{PropCancer, true},
		{PropNormal, false},
		{PropBulkTissue, false},
		{PropCellLine, true},
	}
	for _, tt := range tests {
		if got := m.HasProperty(tt.p); got != tt.want {
			t.Errorf("HasProperty(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestParseProperty(t *testing.T) {
	for _, p := range []Property{PropCancer, PropNormal, PropBulkTissue, PropCellLine} {
		got, err := ParseProperty(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProperty(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseProperty("weird"); err == nil {
		t.Error("ParseProperty(weird): expected error")
	}
}

func buildTestCorpus() *Corpus {
	c := &Corpus{}
	mk := func(id int, name, tissue string, st NeoplasticState, counts map[string]float64) {
		l := NewLibrary(testMeta(id, name, tissue, st, BulkTissue))
		for s, v := range counts {
			l.Add(MustParseTag(s), v)
		}
		l.RefreshMeta()
		c.Libraries = append(c.Libraries, l)
	}
	mk(1, "B1", "brain", Cancer, map[string]float64{"AAAAAAAAAA": 10, "CCCCCCCCCC": 5})
	mk(2, "B2", "brain", Normal, map[string]float64{"AAAAAAAAAA": 2, "GGGGGGGGGG": 7})
	mk(3, "K1", "kidney", Cancer, map[string]float64{"TTTTTTTTTT": 1})
	return c
}

func TestCorpusQueries(t *testing.T) {
	c := buildTestCorpus()
	if got := c.TissueTypes(); len(got) != 2 || got[0] != "brain" || got[1] != "kidney" {
		t.Errorf("TissueTypes = %v", got)
	}
	if got := c.ByTissue("brain"); len(got) != 2 {
		t.Errorf("ByTissue(brain) = %d libs", len(got))
	}
	if c.ByName("B2") == nil || c.ByName("nope") != nil {
		t.Error("ByName wrong")
	}
	if c.ByID(3) == nil || c.ByID(99) != nil {
		t.Error("ByID wrong")
	}
	union := c.UnionTags()
	if len(union) != 4 {
		t.Errorf("UnionTags = %d tags, want 4", len(union))
	}
	for i := 1; i < len(union); i++ {
		if union[i-1] >= union[i] {
			t.Error("UnionTags not sorted/unique")
		}
	}
	if c.TotalUniqueTags() != 4 {
		t.Error("TotalUniqueTags wrong")
	}
}

func TestDatasetBuildAndAccess(t *testing.T) {
	c := buildTestCorpus()
	ds := Build(c)
	if ds.NumLibraries() != 3 || ds.NumTags() != 4 {
		t.Fatalf("dims = %d x %d", ds.NumLibraries(), ds.NumTags())
	}
	if got := ds.Value(0, MustParseTag("AAAAAAAAAA")); got != 10 {
		t.Errorf("Value = %v, want 10", got)
	}
	if got := ds.Value(2, MustParseTag("AAAAAAAAAA")); got != 0 {
		t.Errorf("Value(absent) = %v, want 0", got)
	}
	if got := ds.Value(0, MustParseTag("ACACACACAC")); got != 0 {
		t.Errorf("Value(outside universe) = %v, want 0", got)
	}
	j, ok := ds.TagColumn(MustParseTag("CCCCCCCCCC"))
	if !ok {
		t.Fatal("TagColumn missing")
	}
	col := ds.Column(j)
	if col[0] != 5 || col[1] != 0 || col[2] != 0 {
		t.Errorf("Column = %v", col)
	}
	if i, ok := ds.LibraryRow("K1"); !ok || i != 2 {
		t.Errorf("LibraryRow = %d, %v", i, ok)
	}
	if _, ok := ds.LibraryRow("missing"); ok {
		t.Error("LibraryRow found missing library")
	}
}

func TestDatasetSubsets(t *testing.T) {
	ds := Build(buildTestCorpus())

	brain, err := ds.SubsetByTissue("brain")
	if err != nil {
		t.Fatal(err)
	}
	if brain.NumLibraries() != 2 {
		t.Errorf("brain subset has %d libs", brain.NumLibraries())
	}
	if _, err := ds.SubsetByTissue("liver"); err == nil {
		t.Error("SubsetByTissue(liver): expected error")
	}

	custom, err := ds.SubsetByNames([]string{"K1", "B1"})
	if err != nil {
		t.Fatal(err)
	}
	if custom.Libs[0].Name != "K1" || custom.Libs[1].Name != "B1" {
		t.Errorf("SubsetByNames order = %v", custom.Libs)
	}
	if _, err := ds.SubsetByNames([]string{"nope"}); err == nil {
		t.Error("SubsetByNames(nope): expected error")
	}

	if _, err := ds.Subset([]int{5}); err == nil {
		t.Error("Subset(out of range): expected error")
	}

	cancerRows := ds.RowsWhere(func(m LibraryMeta) bool { return m.State == Cancer })
	if len(cancerRows) != 2 {
		t.Errorf("RowsWhere(cancer) = %v", cancerRows)
	}
	if got := ds.TissueTypes(); len(got) != 2 {
		t.Errorf("TissueTypes = %v", got)
	}
}

func TestDatasetToCorpusRoundTrip(t *testing.T) {
	c := buildTestCorpus()
	ds := Build(c)
	back := ds.ToCorpus()
	if len(back.Libraries) != len(c.Libraries) {
		t.Fatal("library count changed")
	}
	for i, orig := range c.Libraries {
		got := back.Libraries[i]
		if got.Meta.Name != orig.Meta.Name {
			t.Fatalf("library %d name changed", i)
		}
		if got.Unique() != orig.Unique() {
			t.Errorf("%s: unique %d -> %d", orig.Meta.Name, orig.Unique(), got.Unique())
		}
		for tag, v := range orig.Counts {
			if got.Count(tag) != v {
				t.Errorf("%s %v: %v -> %v", orig.Meta.Name, tag, v, got.Count(tag))
			}
		}
	}
}

package sage

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"gea/internal/atomicio"
)

// Corpus persistence, durability-hardened. A corpus directory is a
// generation store (see atomicio):
//
//	dir/CURRENT              commit pointer naming the live generation
//	dir/gen-NNNNNN/sageName.txt
//	dir/gen-NNNNNN/<name>.sage
//
// Every file carries the atomicio checksum footer. SaveCorpus writes a
// complete new generation and flips CURRENT as its single commit point, so
// a crash at any step leaves the previous corpus fully intact; stale
// generations are garbage-collected after the commit. This replaces the
// original flat layout, whose in-place os.Create rewrites could destroy a
// good corpus on a crash mid-save.

// indexFile is the corpus index name inside a generation ("sageName.txt"
// in the thesis's layout).
const indexFile = "sageName.txt"

// Load phases a Problem can surface in, named after the commit
// protocol's boundary: everything inside a generation directory was
// written before the CURRENT flip (the commitlast analyzer pins that
// ordering), so the phase tells an operator whether the artifact never
// verified off disk or verified and then failed to decode.
const (
	// PhaseRead: the framed file failed atomicio verification — missing,
	// truncated, or checksum mismatch.
	PhaseRead = "read"
	// PhaseDecode: the bytes verified but the library payload did not
	// parse — damage predates the commit, i.e. the writer produced it.
	PhaseDecode = "decode"
)

// Problem records one damaged or unreadable artifact a salvaging load
// skipped.
type Problem struct {
	// Path is the offending file.
	Path string
	// Gen is the generation directory the artifact was committed under, so
	// quarantine diagnostics can point at the exact failed commit in a
	// multi-generation append store.
	Gen string
	// Phase is the load phase that rejected the artifact: PhaseRead or
	// PhaseDecode.
	Phase string
	// Err classifies the damage (atomicio.ErrChecksum, atomicio.ErrTruncated,
	// a parse error, or a missing-file error).
	Err error
}

func (p Problem) String() string {
	ctx := ""
	switch {
	case p.Gen != "" && p.Phase != "":
		ctx = fmt.Sprintf(" (committed in %s, failed in the %s phase)", p.Gen, p.Phase)
	case p.Gen != "":
		ctx = fmt.Sprintf(" (committed in %s)", p.Gen)
	case p.Phase != "":
		ctx = fmt.Sprintf(" (failed in the %s phase)", p.Phase)
	}
	return fmt.Sprintf("%s%s: %v", p.Path, ctx, p.Err)
}

// SaveCorpus writes the corpus to dir with the crash-safe generation
// protocol. The directory is created if needed.
func SaveCorpus(dir string, c *Corpus) error {
	return SaveCorpusFS(atomicio.OS{}, dir, c)
}

// SaveCorpusFS is SaveCorpus over an injectable filesystem.
func SaveCorpusFS(fsys atomicio.FS, dir string, c *Corpus) error {
	for i, l := range c.Libraries {
		name := l.Meta.Name
		if name == "" || strings.ContainsAny(name, "/\\") {
			return fmt.Errorf("sage: library %d has unusable name %q", i+1, name)
		}
	}
	seen := make(map[string]bool, len(c.Libraries))
	for _, l := range c.Libraries {
		if seen[l.Meta.Name] {
			return fmt.Errorf("sage: duplicate library name %q", l.Meta.Name)
		}
		seen[l.Meta.Name] = true
	}
	gen, err := atomicio.NextGen(fsys, dir)
	if err != nil {
		return err
	}
	gd := filepath.Join(dir, gen)
	if err := fsys.MkdirAll(gd, 0o755); err != nil {
		return err
	}
	for _, l := range c.Libraries {
		l := l
		err := atomicio.WriteFileFunc(fsys, filepath.Join(gd, l.Meta.Name+".sage"),
			func(w io.Writer) error { return WriteLibrary(w, l) })
		if err != nil {
			return err
		}
	}
	err = atomicio.WriteFileFunc(fsys, filepath.Join(gd, indexFile),
		func(w io.Writer) error { return WriteIndex(w, c) })
	if err != nil {
		return err
	}
	if err := atomicio.Commit(fsys, dir, gen); err != nil {
		return err
	}
	atomicio.CleanupGens(fsys, dir, gen)
	return nil
}

// LoadCorpus reads a corpus previously written by SaveCorpus. It is
// strict: any damaged file fails the load. Use LoadCorpusSalvage to skip
// damaged libraries instead.
func LoadCorpus(dir string) (*Corpus, error) {
	return LoadCorpusFS(atomicio.OS{}, dir)
}

// LoadCorpusFS is LoadCorpus over an injectable filesystem.
func LoadCorpusFS(fsys atomicio.FS, dir string) (*Corpus, error) {
	c, problems, err := LoadCorpusSalvage(fsys, dir)
	if err != nil {
		return nil, err
	}
	if len(problems) > 0 {
		return nil, fmt.Errorf("sage: corpus damaged: %v", problems[0])
	}
	return c, nil
}

// LoadCorpusSalvage loads as much of a corpus as verifies. The commit
// pointer and the index are load-bearing — damage there is a hard error —
// but a damaged or missing library file only lands in the returned problem
// list, and that library is skipped. Each Problem carries the generation
// directory the broken artifact was committed under: in a multi-generation
// append store (see internal/ingest) that names the exact append whose
// files went bad, which is what the quarantine report points operators at.
func LoadCorpusSalvage(fsys atomicio.FS, dir string) (*Corpus, []Problem, error) {
	gen, err := atomicio.CurrentGen(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	gd := filepath.Join(dir, gen)
	idxPath := filepath.Join(gd, indexFile)
	idxData, err := atomicio.ReadFile(fsys, idxPath)
	if err != nil {
		return nil, nil, err
	}
	metas, gens, err := ReadIndexWithGens(bytes.NewReader(idxData))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", idxPath, err)
	}
	c := &Corpus{}
	var problems []Problem
	for i, m := range metas {
		libGen := gen
		if gens[i] != "" {
			libGen = gens[i]
		}
		path := filepath.Join(dir, libGen, m.Name+".sage")
		data, err := atomicio.ReadFile(fsys, path)
		if err != nil {
			problems = append(problems, Problem{Path: path, Gen: libGen, Phase: PhaseRead, Err: err})
			continue
		}
		l, err := ReadLibrary(bytes.NewReader(data), m)
		if err != nil {
			problems = append(problems, Problem{Path: path, Gen: libGen, Phase: PhaseDecode, Err: err})
			continue
		}
		c.Libraries = append(c.Libraries, l)
	}
	return c, problems, nil
}

// SaveBinaryFile atomically writes a checksummed ".b" tissue file.
func SaveBinaryFile(fsys atomicio.FS, path string, d *Dataset) error {
	return atomicio.WriteFileFunc(fsys, path,
		func(w io.Writer) error { return WriteBinary(w, d) })
}

// LoadBinaryFile verifies and reads a ".b" file written by SaveBinaryFile.
func LoadBinaryFile(fsys atomicio.FS, path string, metaByName map[string]LibraryMeta) (*Dataset, error) {
	data, err := atomicio.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	d, err := ReadBinary(bytes.NewReader(data), metaByName)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// SaveMetaFile atomically writes a checksummed ".meta" tolerance file.
func SaveMetaFile(fsys atomicio.FS, path string, tol map[TagID]float64) error {
	return atomicio.WriteFileFunc(fsys, path,
		func(w io.Writer) error { return WriteMeta(w, tol) })
}

// LoadMetaFile verifies and reads a ".meta" file written by SaveMetaFile.
func LoadMetaFile(fsys atomicio.FS, path string) (map[TagID]float64, error) {
	data, err := atomicio.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	tol, err := ReadMeta(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tol, nil
}

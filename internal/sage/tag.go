// Package sage defines the SAGE (Serial Analysis of Gene Expression) data
// model used throughout the GEA: 10-base-pair tags, expression libraries, and
// the dense Dataset the analytical operators run on, together with the file
// formats of the thesis (plain-text library files, the binary ".b" format the
// fascicle miner reads, ".meta" tolerance-vector files, and the
// "sageName.txt" corpus index).
package sage

import (
	"fmt"
	"strings"
)

// TagLen is the length of a SAGE tag: a nucleotide sequence of 10 base pairs
// over the alphabet {A, C, G, T}.
const TagLen = 10

// NumTags is the number of distinct SAGE tags, 4^10.
const NumTags = 1 << (2 * TagLen)

// TagID is a SAGE tag encoded 2 bits per base, most significant base first,
// so that the natural integer order of TagIDs equals the lexicographic order
// of tag strings (the order the thesis's tag-range searches rely on).
type TagID uint32

var baseChars = [4]byte{'A', 'C', 'G', 'T'}

func baseCode(c byte) (uint32, bool) {
	switch c {
	case 'A', 'a':
		return 0, true
	case 'C', 'c':
		return 1, true
	case 'G', 'g':
		return 2, true
	case 'T', 't':
		return 3, true
	}
	return 0, false
}

// ParseTag converts a 10-character tag string such as "AAAAAAAAAC" to its
// TagID. It accepts lower-case bases and returns an error for any other
// character or a wrong-length string.
func ParseTag(s string) (TagID, error) {
	if len(s) != TagLen {
		return 0, fmt.Errorf("sage: tag %q has length %d, want %d", s, len(s), TagLen)
	}
	var id uint32
	for i := 0; i < TagLen; i++ {
		code, ok := baseCode(s[i])
		if !ok {
			return 0, fmt.Errorf("sage: tag %q has invalid base %q at position %d", s, s[i], i)
		}
		id = id<<2 | code
	}
	return TagID(id), nil
}

// MustParseTag is ParseTag for known-good literals; it panics on error.
func MustParseTag(s string) TagID {
	id, err := ParseTag(s)
	if err != nil {
		panic(err)
	}
	return id
}

// String renders the tag as its 10-base sequence.
func (t TagID) String() string {
	var b strings.Builder
	b.Grow(TagLen)
	for i := TagLen - 1; i >= 0; i-- {
		b.WriteByte(baseChars[(uint32(t)>>(2*uint(i)))&3])
	}
	return b.String()
}

// Valid reports whether t is within the 4^10 tag space.
func (t TagID) Valid() bool { return uint32(t) < NumTags }

// Mutate returns the tag with the base at position pos (0-based, from the
// left) replaced according to shift (1..3 steps around the 4-letter
// alphabet). It is the sequencing-error model used by the synthetic data
// generator: a single-base miscall turns a real tag into a near-identical
// error tag, inflating the unique-tag count exactly as the thesis describes.
func (t TagID) Mutate(pos, shift int) TagID {
	if pos < 0 || pos >= TagLen {
		return t
	}
	bit := uint(2 * (TagLen - 1 - pos))
	old := (uint32(t) >> bit) & 3
	repl := (old + uint32(shift)) & 3
	return TagID(uint32(t)&^(3<<bit) | repl<<bit)
}

package sage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseTagRoundTrip(t *testing.T) {
	tests := []struct {
		s  string
		id TagID
	}{
		{"AAAAAAAAAA", 0},
		{"AAAAAAAAAC", 1},
		{"AAAAAAAAAG", 2},
		{"AAAAAAAAAT", 3},
		{"AAAAAAAACA", 4},
		{"TTTTTTTTTT", NumTags - 1},
		{"CCTTGAGTAC", MustParseTag("CCTTGAGTAC")},
	}
	for _, tt := range tests {
		got, err := ParseTag(tt.s)
		if err != nil {
			t.Fatalf("ParseTag(%q): %v", tt.s, err)
		}
		if got != tt.id {
			t.Errorf("ParseTag(%q) = %d, want %d", tt.s, got, tt.id)
		}
		if back := got.String(); back != tt.s {
			t.Errorf("TagID(%d).String() = %q, want %q", got, back, tt.s)
		}
	}
}

func TestParseTagLowerCase(t *testing.T) {
	id, err := ParseTag("acgtacgtac")
	if err != nil {
		t.Fatal(err)
	}
	if id.String() != "ACGTACGTAC" {
		t.Errorf("lower-case parse = %q", id.String())
	}
}

func TestParseTagErrors(t *testing.T) {
	for _, s := range []string{"", "ACGT", "ACGTACGTACG", "ACGTACGTAX", "ACGTACGTA "} {
		if _, err := ParseTag(s); err == nil {
			t.Errorf("ParseTag(%q): expected error", s)
		}
	}
}

func TestMustParseTagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseTag(bad) did not panic")
		}
	}()
	MustParseTag("bogus")
}

// Property: String/ParseTag round-trips for every valid id, and the integer
// order of TagIDs equals the lexicographic order of tag strings.
func TestTagOrderMatchesLexicographic(t *testing.T) {
	f := func(a, b uint32) bool {
		ta := TagID(a % NumTags)
		tb := TagID(b % NumTags)
		ra, err := ParseTag(ta.String())
		if err != nil || ra != ta {
			return false
		}
		return (ta < tb) == (ta.String() < tb.String())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMutate(t *testing.T) {
	tag := MustParseTag("AAAAAAAAAA")
	if got := tag.Mutate(9, 1); got.String() != "AAAAAAAAAC" {
		t.Errorf("Mutate(9,1) = %q", got.String())
	}
	if got := tag.Mutate(0, 3); got.String() != "TAAAAAAAAA" {
		t.Errorf("Mutate(0,3) = %q", got.String())
	}
	// shift wraps around the alphabet.
	tt := MustParseTag("TTTTTTTTTT")
	if got := tt.Mutate(5, 1); got.String() != "TTTTTATTTT" {
		t.Errorf("Mutate wrap = %q", got.String())
	}
	// out-of-range positions are no-ops.
	if got := tag.Mutate(-1, 1); got != tag {
		t.Error("Mutate(-1) changed the tag")
	}
	if got := tag.Mutate(TagLen, 1); got != tag {
		t.Error("Mutate(TagLen) changed the tag")
	}
}

// Property: a single-base mutation with shift 1..3 always yields a different,
// valid tag, and differs from the original in exactly one position.
func TestMutateChangesExactlyOneBase(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		tag := TagID(rng.Intn(NumTags))
		pos := rng.Intn(TagLen)
		shift := 1 + rng.Intn(3)
		mut := tag.Mutate(pos, shift)
		if mut == tag {
			t.Fatalf("Mutate(%v, %d, %d) returned the same tag", tag, pos, shift)
		}
		if !mut.Valid() {
			t.Fatalf("Mutate produced invalid tag %d", mut)
		}
		s1, s2 := tag.String(), mut.String()
		diff := 0
		for i := range s1 {
			if s1[i] != s2[i] {
				diff++
				if i != pos {
					t.Fatalf("Mutate changed position %d, wanted %d", i, pos)
				}
			}
		}
		if diff != 1 {
			t.Fatalf("Mutate changed %d positions", diff)
		}
	}
}

package sage

import "sync"

// Derived-view cache
//
// Physical-layer packages (internal/columnar today) build expensive
// derived representations of a Dataset — encoded blocks, zone maps —
// that operators want to look up by the Dataset they were built from.
// Storing them inside Dataset would change its shape and break the
// many reflect.DeepEqual comparisons the test suite makes over
// Datasets and the structs embedding them, so the cache lives beside
// the type instead: a process-wide map keyed by Dataset identity
// (pointer), bounded FIFO so long-running sessions that churn through
// subsets cannot grow it without limit.

const maxViews = 64

var viewMu sync.Mutex
var views = map[*Dataset]any{}
var viewOrder []*Dataset // insertion order, for FIFO eviction

// AttachView associates a derived view with d, replacing any previous
// one. When the cache is full the oldest attachment is evicted.
func AttachView(d *Dataset, view any) {
	if d == nil {
		return
	}
	viewMu.Lock()
	defer viewMu.Unlock()
	if _, ok := views[d]; !ok {
		if len(viewOrder) >= maxViews {
			evict := viewOrder[0]
			viewOrder = viewOrder[1:]
			delete(views, evict)
		}
		viewOrder = append(viewOrder, d)
	}
	views[d] = view
}

// ViewOf returns the derived view attached to d, or nil.
func ViewOf(d *Dataset) any {
	if d == nil {
		return nil
	}
	viewMu.Lock()
	defer viewMu.Unlock()
	return views[d]
}

// DropView removes any derived view attached to d.
func DropView(d *Dataset) {
	if d == nil {
		return
	}
	viewMu.Lock()
	defer viewMu.Unlock()
	if _, ok := views[d]; ok {
		delete(views, d)
		for i, p := range viewOrder {
			if p == d {
				viewOrder = append(viewOrder[:i], viewOrder[i+1:]...)
				break
			}
		}
	}
}

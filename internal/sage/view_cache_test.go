package sage

import (
	"fmt"
	"testing"
)

// TestViewCacheBasics pins the attach/lookup/drop contract and nil
// safety of the derived-view cache.
func TestViewCacheBasics(t *testing.T) {
	d := &Dataset{}
	if ViewOf(d) != nil {
		t.Fatal("fresh dataset has a view")
	}
	AttachView(d, "v1")
	if got := ViewOf(d); got != "v1" {
		t.Fatalf("ViewOf = %v", got)
	}
	AttachView(d, "v2") // replace in place
	if got := ViewOf(d); got != "v2" {
		t.Fatalf("after replace, ViewOf = %v", got)
	}
	DropView(d)
	if ViewOf(d) != nil {
		t.Fatal("view survived DropView")
	}
	DropView(d) // idempotent

	// nil datasets are inert on every entry point.
	AttachView(nil, "x")
	if ViewOf(nil) != nil {
		t.Fatal("nil dataset acquired a view")
	}
	DropView(nil)
}

// TestViewCacheEviction pins the FIFO bound: the cache holds maxViews
// attachments, the oldest is evicted first, and replacing an existing
// attachment does not refresh its age or evict anyone.
func TestViewCacheEviction(t *testing.T) {
	// Over-fill by a whole generation first so the cache holds exactly
	// our own newest maxViews entries regardless of what earlier tests
	// left behind.
	n := maxViews
	ds := make([]*Dataset, 2*n+2)
	for i := range ds {
		ds[i] = &Dataset{}
	}
	defer func() {
		for _, d := range ds {
			DropView(d)
		}
	}()
	for i := 0; i < 2*n; i++ {
		AttachView(ds[i], fmt.Sprintf("v%d", i))
	}
	if ViewOf(ds[n-1]) != nil {
		t.Fatal("over-filling did not evict the first generation")
	}
	if ViewOf(ds[n]) != fmt.Sprintf("v%d", n) {
		t.Fatal("newest generation missing from the cache")
	}

	// Replacing a full cache's entry must neither evict nor refresh
	// the entry's age.
	AttachView(ds[n], "replaced")
	if ViewOf(ds[n]) != "replaced" || ViewOf(ds[n+1]) != fmt.Sprintf("v%d", n+1) {
		t.Fatal("in-place replacement disturbed the cache")
	}
	// One past the bound evicts exactly the oldest — the replaced entry,
	// since replacement kept its original position.
	AttachView(ds[2*n], "new")
	if ViewOf(ds[n]) != nil {
		t.Fatal("oldest attachment not evicted at the bound")
	}
	if ViewOf(ds[n+1]) == nil || ViewOf(ds[2*n]) != "new" {
		t.Fatal("eviction removed the wrong entry")
	}
	// And the next eviction takes the next-oldest.
	AttachView(ds[2*n+1], "newer")
	if ViewOf(ds[n+1]) != nil {
		t.Fatal("second eviction did not take the next-oldest")
	}
	if ViewOf(ds[n+2]) == nil || ViewOf(ds[2*n+1]) != "newer" {
		t.Fatal("second eviction removed the wrong entry")
	}
}

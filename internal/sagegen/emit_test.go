package sagegen

import "testing"

// TestEmitBatchesConcatenation pins the streaming contract: the batches
// concatenate, in order, to exactly the corpus Generate yields — same
// libraries, same positions — so ingesting them reproduces the one-shot
// corpus bit for bit.
func TestEmitBatchesConcatenation(t *testing.T) {
	cfg := SmallConfig()
	whole, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 4, 1000} {
		batches, res, err := EmitBatches(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		if n <= len(whole.Corpus.Libraries) && len(batches) != n {
			t.Fatalf("split %d yielded %d batches", n, len(batches))
		}
		i := 0
		for _, b := range batches {
			if len(b) == 0 {
				t.Fatalf("split %d produced an empty batch", n)
			}
			for _, l := range b {
				want := whole.Corpus.Libraries[i]
				if l.Meta.Name != want.Meta.Name || l.Total() != want.Total() || l.Unique() != want.Unique() {
					t.Fatalf("split %d: library %d is %q, want %q", n, i, l.Meta.Name, want.Meta.Name)
				}
				if res.Corpus.Libraries[i] != l {
					t.Fatalf("split %d: batch library %d is not the result corpus's library", n, i)
				}
				i++
			}
		}
		if i != len(whole.Corpus.Libraries) {
			t.Fatalf("split %d covered %d of %d libraries", n, i, len(whole.Corpus.Libraries))
		}
	}
	if _, _, err := EmitBatches(cfg, 0); err == nil {
		t.Error("batch count 0 accepted")
	}
}

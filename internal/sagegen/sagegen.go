// Package sagegen generates synthetic SAGE corpora with the statistical
// shape of the NCBI SAGE data set analyzed in the thesis. The real corpus
// (100 libraries over 9 tissue types, ~350,000 raw unique tags collapsing to
// ~60,000 after cleaning) is not redistributable, so the GEA is exercised on
// synthetic data that plants the same structures the case studies look for:
//
//   - a Zipf-like abundance profile with a handful of extremely abundant
//     housekeeping genes expressed in every library;
//   - tissue-specific genes expressed in only one tissue type;
//   - per-tissue cancer signatures: a designated "fascicle core" subset of the
//     cancerous libraries agrees tightly (within fascicle tolerance) on a set
//     of signature tags whose levels differ from normal tissue — this is what
//     mine() discovers and diff() contrasts in case studies 1-4;
//   - named marker genes reproducing the figures: RIBOSOMAL PROTEIN L12
//     (Fig 4.2, ~275 in cancerous-in-fascicle brain vs ~100 in normal), ALPHA
//     TUBULIN (Fig 4.3, ~0 vs ~90) and ADP PROTEIN (Fig 4.11, far lower
//     inside the fascicle than outside);
//   - sequencing errors: ~10% of each library's total tag count is spent on
//     error tags (scattered across the tag space, with a minority of
//     single-base mutants of real tags), almost all with frequency 1, which
//     inflates the raw unique-tag count exactly as Section 4.2 describes.
//
// Generation is deterministic for a given Config (including Seed).
package sagegen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gea/internal/sage"
)

// Marker gene names used by the figure reproductions.
const (
	GeneRibosomalL12 = "RIBOSOMAL PROTEIN L12"
	GeneAlphaTubulin = "ALPHA TUBULIN"
	GeneADPProtein   = "ADP PROTEIN"
)

// TissueSpec describes one tissue type in the corpus.
type TissueSpec struct {
	Name          string
	CancerLibs    int // number of cancerous libraries
	NormalLibs    int // number of normal libraries
	FascicleCore  int // cancerous libraries forming the plantable fascicle (<= CancerLibs)
	SignatureTags int // cancer-signature genes for this tissue
}

// Config controls corpus generation.
type Config struct {
	Seed int64
	// Genes is the number of real gene tags in the universe.
	Genes int
	// Housekeeping is the number of genes expressed in every library.
	Housekeeping int
	// TissueSpecific is the number of genes private to each tissue type.
	TissueSpecific int
	// PanCancerTags is the number of signature genes shared by every
	// tissue's cancer (what case study 3 hunts for: genes always higher or
	// lower in cancerous tissue across tissue types).
	PanCancerTags int
	// Tissues lays out the library panel.
	Tissues []TissueSpec
	// MinTotal/MaxTotal bound each library's total tag count before errors,
	// matching the thesis's 1,000-32,000 unique tags per library at SAGE
	// sampling depth.
	MinTotal, MaxTotal int
	// ErrorRate is the fraction of a library's total count emitted as
	// single-base sequencing-error tags (the thesis estimates 10%).
	ErrorRate float64
	// CellLineFraction of libraries are cell lines rather than bulk tissue.
	CellLineFraction float64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Genes <= 0 {
		return fmt.Errorf("sagegen: Genes must be positive")
	}
	if len(c.Tissues) == 0 {
		return fmt.Errorf("sagegen: at least one tissue required")
	}
	need := c.Housekeeping + c.PanCancerTags + 8 // 8 slots reserved for named markers and spares
	for _, ts := range c.Tissues {
		if ts.CancerLibs < 0 || ts.NormalLibs < 0 {
			return fmt.Errorf("sagegen: tissue %s has negative library counts", ts.Name)
		}
		if ts.FascicleCore > ts.CancerLibs {
			return fmt.Errorf("sagegen: tissue %s: FascicleCore %d > CancerLibs %d",
				ts.Name, ts.FascicleCore, ts.CancerLibs)
		}
		need += c.TissueSpecific + ts.SignatureTags
	}
	if need > c.Genes {
		return fmt.Errorf("sagegen: %d genes too few for %d structured slots", c.Genes, need)
	}
	if c.MinTotal <= 0 || c.MaxTotal < c.MinTotal {
		return fmt.Errorf("sagegen: bad total-count bounds [%d, %d]", c.MinTotal, c.MaxTotal)
	}
	if c.PanCancerTags < 0 {
		return fmt.Errorf("sagegen: negative PanCancerTags")
	}
	if c.ErrorRate < 0 || c.ErrorRate >= 1 {
		return fmt.Errorf("sagegen: ErrorRate %v out of [0, 1)", c.ErrorRate)
	}
	return nil
}

// DefaultConfig mirrors the thesis corpus: 100 libraries across nine tissue
// types (24 of them brain), ~60,000 real gene tags, 10% sequencing error.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Genes:          60000,
		Housekeeping:   40,
		TissueSpecific: 300,
		PanCancerTags:  200,
		Tissues: []TissueSpec{
			{Name: "brain", CancerLibs: 16, NormalLibs: 8, FascicleCore: 8, SignatureTags: 120},
			{Name: "breast", CancerLibs: 8, NormalLibs: 4, FascicleCore: 4, SignatureTags: 100},
			{Name: "prostate", CancerLibs: 6, NormalLibs: 4, FascicleCore: 3, SignatureTags: 80},
			{Name: "ovary", CancerLibs: 6, NormalLibs: 3, FascicleCore: 3, SignatureTags: 80},
			{Name: "colon", CancerLibs: 8, NormalLibs: 4, FascicleCore: 4, SignatureTags: 100},
			{Name: "pancreas", CancerLibs: 6, NormalLibs: 3, FascicleCore: 3, SignatureTags: 80},
			{Name: "vascular", CancerLibs: 4, NormalLibs: 3, FascicleCore: 2, SignatureTags: 60},
			{Name: "skin", CancerLibs: 4, NormalLibs: 3, FascicleCore: 2, SignatureTags: 60},
			{Name: "kidney", CancerLibs: 6, NormalLibs: 4, FascicleCore: 3, SignatureTags: 80},
		},
		// The thesis's libraries carry 1,000-32,000 tags each.
		MinTotal:         8000,
		MaxTotal:         32000,
		ErrorRate:        0.10,
		CellLineFraction: 0.3,
	}
}

// SmallConfig is a fast configuration for tests and examples.
func SmallConfig() Config {
	return Config{
		Seed:           1,
		Genes:          800,
		Housekeeping:   10,
		TissueSpecific: 30,
		PanCancerTags:  30,
		Tissues: []TissueSpec{
			{Name: "brain", CancerLibs: 8, NormalLibs: 4, FascicleCore: 4, SignatureTags: 120},
			{Name: "breast", CancerLibs: 6, NormalLibs: 3, FascicleCore: 3, SignatureTags: 80},
			{Name: "kidney", CancerLibs: 4, NormalLibs: 3, FascicleCore: 2, SignatureTags: 60},
		},
		MinTotal:         4000,
		MaxTotal:         9000,
		ErrorRate:        0.10,
		CellLineFraction: 0.3,
	}
}

// GeneRole classifies how a gene behaves in the synthetic model.
type GeneRole int

// Gene roles.
const (
	RoleBackground GeneRole = iota
	RoleHousekeeping
	RoleTissueSpecific
	RoleCancerUp   // higher in cancerous (fascicle-core) libraries
	RoleCancerDown // lower in cancerous (fascicle-core) libraries
)

// String names the role.
func (r GeneRole) String() string {
	switch r {
	case RoleBackground:
		return "background"
	case RoleHousekeeping:
		return "housekeeping"
	case RoleTissueSpecific:
		return "tissue-specific"
	case RoleCancerUp:
		return "cancer-up"
	case RoleCancerDown:
		return "cancer-down"
	default:
		return fmt.Sprintf("GeneRole(%d)", int(r))
	}
}

// Gene is one entry of the generated gene catalog.
type Gene struct {
	Tag    sage.TagID
	Name   string
	Role   GeneRole
	Tissue string // for tissue-specific and signature genes
	// Baseline is the expected count at SAGE depth in libraries that
	// express the gene, before state factors.
	Baseline float64
}

// Catalog maps the synthetic gene universe; it seeds the genedb package.
type Catalog struct {
	Genes  []Gene
	byTag  map[sage.TagID]int
	byName map[string]int
}

// ByTag returns the gene for a tag, if it is a real (non-error) tag.
func (c *Catalog) ByTag(t sage.TagID) (Gene, bool) {
	i, ok := c.byTag[t]
	if !ok {
		return Gene{}, false
	}
	return c.Genes[i], true
}

// ByName returns the gene with the given name.
func (c *Catalog) ByName(name string) (Gene, bool) {
	i, ok := c.byName[name]
	if !ok {
		return Gene{}, false
	}
	return c.Genes[i], true
}

// Result bundles the generated corpus with its ground truth.
type Result struct {
	Corpus  *sage.Corpus
	Catalog *Catalog
	// FascicleCore[tissue] lists the library names planted as the pure
	// cancerous fascicle of that tissue — the ground truth mine() should
	// rediscover.
	FascicleCore map[string][]string
}

// Generate builds a synthetic corpus from cfg.
func Generate(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	catalog := buildCatalog(cfg, rng)
	res := &Result{
		Corpus:       &sage.Corpus{},
		Catalog:      catalog,
		FascicleCore: map[string][]string{},
	}

	expTotals := expectedTotals(cfg, catalog)

	libID := 0
	for _, ts := range cfg.Tissues {
		// Per-library expression multipliers make libraries individual.
		for i := 0; i < ts.CancerLibs+ts.NormalLibs; i++ {
			libID++
			cancer := i < ts.CancerLibs
			inCore := cancer && i < ts.FascicleCore
			state := sage.Normal
			tag := "normal"
			if cancer {
				state = sage.Cancer
				tag = "cancer"
			}
			src := sage.BulkTissue
			if rng.Float64() < cfg.CellLineFraction {
				src = sage.CellLine
			}
			name := fmt.Sprintf("SAGE_%s_%s_%02d", ts.Name, tag, i+1)
			meta := sage.LibraryMeta{
				ID: libID, Name: name, Tissue: ts.Name, State: state, Source: src,
			}
			lib := generateLibrary(cfg, rng, catalog, meta, ts, inCore, expTotals[ts.Name])
			res.Corpus.Libraries = append(res.Corpus.Libraries, lib)
			if inCore {
				res.FascicleCore[ts.Name] = append(res.FascicleCore[ts.Name], name)
			}
		}
	}
	return res, nil
}

// buildCatalog lays out the gene universe and assigns roles.
func buildCatalog(cfg Config, rng *rand.Rand) *Catalog {
	tags := distinctTags(cfg.Genes, rng)
	cat := &Catalog{
		byTag:  make(map[sage.TagID]int, cfg.Genes),
		byName: make(map[string]int, cfg.Genes),
	}
	add := func(g Gene) {
		cat.byTag[g.Tag] = len(cat.Genes)
		cat.byName[g.Name] = len(cat.Genes)
		cat.Genes = append(cat.Genes, g)
	}

	next := 0
	take := func() sage.TagID { t := tags[next]; next++; return t }

	// Named markers: planted in the brain signature so the figure pipelines
	// find them. Baselines here are the *normal-tissue* levels; state factors
	// below move the fascicle-core levels to the figures' values.
	brain := cfg.Tissues[0].Name
	add(Gene{Tag: take(), Name: GeneRibosomalL12, Role: RoleCancerUp, Tissue: brain, Baseline: 100})
	add(Gene{Tag: take(), Name: GeneAlphaTubulin, Role: RoleCancerDown, Tissue: brain, Baseline: 90})
	add(Gene{Tag: take(), Name: GeneADPProtein, Role: RoleCancerDown, Tissue: brain, Baseline: 80})

	for i := 0; i < cfg.Housekeeping; i++ {
		add(Gene{
			Tag:  take(),
			Name: fmt.Sprintf("HOUSEKEEPING_%03d", i),
			Role: RoleHousekeeping,
			// Housekeeping genes dominate the profile (cf. the thesis's
			// AAAAAAAAAA counts in the thousands).
			Baseline: 200 + 1800*rng.Float64()*rng.Float64(),
		})
	}
	// Pan-cancer signature genes: Tissue == "" means the gene responds to
	// cancer in every tissue type. Case study 3 intersects per-tissue GAP
	// tables looking for exactly these.
	for i := 0; i < cfg.PanCancerTags; i++ {
		role := RoleCancerUp
		if i%2 == 1 {
			role = RoleCancerDown
		}
		add(Gene{
			Tag:      take(),
			Name:     fmt.Sprintf("PANCANCER_SIG_%03d", i),
			Role:     role,
			Tissue:   "",
			Baseline: zipfBaseline(rng, 5, 60),
		})
	}
	for _, ts := range cfg.Tissues {
		for i := 0; i < cfg.TissueSpecific; i++ {
			add(Gene{
				Tag:      take(),
				Name:     fmt.Sprintf("%s_SPECIFIC_%03d", upper(ts.Name), i),
				Role:     RoleTissueSpecific,
				Tissue:   ts.Name,
				Baseline: zipfBaseline(rng, 5, 300),
			})
		}
		for i := 0; i < ts.SignatureTags; i++ {
			role := RoleCancerUp
			if i%2 == 1 {
				role = RoleCancerDown
			}
			add(Gene{
				Tag:    take(),
				Name:   fmt.Sprintf("%s_SIG_%03d", upper(ts.Name), i),
				Role:   role,
				Tissue: ts.Name,
				// Kept modest so the signature does not dominate the
				// library's composition (Sum f_i stays well below 1).
				Baseline: zipfBaseline(rng, 5, 60),
			})
		}
	}
	for next < len(tags) {
		add(Gene{
			Tag:      take(),
			Name:     fmt.Sprintf("GENE_%06d", next),
			Role:     RoleBackground,
			Baseline: zipfBaseline(rng, 1, 120),
		})
	}
	return cat
}

// zipfBaseline draws a heavy-tailed baseline in [lo, hi].
func zipfBaseline(rng *rand.Rand, lo, hi float64) float64 {
	u := rng.Float64()
	// Inverse-power transform: most mass near lo, a long tail toward hi.
	v := lo * math.Pow(hi/lo, u*u*u)
	return v
}

// distinctTags draws n distinct random TagIDs, sorted.
func distinctTags(n int, rng *rand.Rand) []sage.TagID {
	seen := make(map[sage.TagID]bool, n)
	out := make([]sage.TagID, 0, n)
	for len(out) < n {
		t := sage.TagID(rng.Intn(sage.NumTags))
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// expectedTotals computes, per tissue, the expected sum of gene means for a
// normal library of that tissue. Fascicle-core signature fractions are
// pinned relative to this total so that core levels land at the intended
// fold change of the *realized* per-library composition (pinning to
// nominalTotal would misscale whenever the catalog's baselines do not sum
// to it).
func expectedTotals(cfg Config, cat *Catalog) map[string]float64 {
	out := make(map[string]float64, len(cfg.Tissues))
	var shared float64
	perTissue := make(map[string]float64, len(cfg.Tissues))
	for _, g := range cat.Genes {
		switch {
		case g.Role == RoleHousekeeping:
			shared += g.Baseline
		case g.Role == RoleBackground:
			shared += 0.2 * g.Baseline // expressed in ~20% of libraries
		case g.Tissue == "": // pan-cancer signature: present everywhere
			shared += g.Baseline
		default:
			perTissue[g.Tissue] += g.Baseline
		}
	}
	for _, ts := range cfg.Tissues {
		out[ts.Name] = shared + perTissue[ts.Name]
	}
	return out
}

// generateLibrary samples one library.
//
// Fascicle-core libraries are generated in two phases: all non-signature
// genes first, then the tissue's signature genes at exact *relative
// abundances* of the final total. Fascicles are mined on normalized data
// (every library scaled to a common total), so what must agree across the
// core is the fraction each signature tag contributes — pinning the fraction
// directly is the generative counterpart of the compactness the case studies
// rely on. Everything else carries role-dependent noise: housekeeping genes
// are stable, signature genes outside the core are loose, and background
// genes are heavy-tailed so that a tag's corpus-wide range is dominated by a
// couple of high-expressing libraries (the real-SAGE property that makes the
// 10%-of-width tolerance exceed typical inter-library differences).
func generateLibrary(cfg Config, rng *rand.Rand, cat *Catalog, meta sage.LibraryMeta,
	ts TissueSpec, inCore bool, expTotal float64) *sage.Library {

	lib := sage.NewLibrary(meta)
	total := cfg.MinTotal + rng.Intn(cfg.MaxTotal-cfg.MinTotal+1)
	// Scale baselines so the library's realized real total lands near the
	// configured draw: the expected sum of means for this tissue maps to
	// the drawn total.
	depth := float64(total) / expTotal

	var deferred []Gene // core signature genes, added in phase two
	for _, g := range cat.Genes {
		if inCore && (g.Role == RoleCancerUp || g.Role == RoleCancerDown) &&
			(g.Tissue == meta.Tissue || g.Tissue == "") {
			deferred = append(deferred, g)
			continue
		}
		mean := expectedLevel(g, meta, ts, inCore, rng)
		if mean <= 0 {
			continue
		}
		mean *= depth
		var noise float64
		switch g.Role {
		case RoleHousekeeping:
			noise = 0.03
		case RoleBackground:
			noise = 1.5
		default:
			noise = 0.35
		}
		v := mean * math.Exp(rng.NormFloat64()*noise)
		count := math.Floor(v)
		if rng.Float64() < v-count {
			count++
		}
		if count <= 0 {
			continue
		}
		lib.Add(g.Tag, count)
	}

	if len(deferred) > 0 {
		// Phase two: target fractions f_i of the final real total. With
		// T_other generated, count_i = f_i / (1 - sum f) * T_other makes
		// count_i / (T_other + sum counts) equal f_i exactly.
		tOther := lib.Total()
		fracs := make([]float64, len(deferred))
		var fsum float64
		for i, g := range deferred {
			level := g.Baseline * upFactor
			if g.Role == RoleCancerDown {
				level = g.Baseline * downFactor
			}
			fracs[i] = level / expTotal
			fsum += fracs[i]
		}
		if fsum < 0.9 { // guard: signature mass must not dominate the library
			for i, g := range deferred {
				v := fracs[i] / (1 - fsum) * tOther * math.Exp(rng.NormFloat64()*0.01)
				count := math.Floor(v)
				if rng.Float64() < v-count {
					count++
				}
				if count > 0 {
					lib.Add(g.Tag, count)
				}
			}
		}
	}

	addSequencingErrors(cfg, rng, lib)
	lib.RefreshMeta()
	return lib
}

// upFactor and downFactor are the fold changes of signature genes in
// fascicle-core libraries: RIBOSOMAL PROTEIN L12 (Fig 4.2) goes 100 -> 275;
// ALPHA TUBULIN (Fig 4.3) goes ~90 -> "close to 0".
const (
	upFactor   = 2.75
	downFactor = 0.02
)

// expectedLevel computes a gene's expected pre-depth level in a library.
func expectedLevel(g Gene, meta sage.LibraryMeta, ts TissueSpec, inCore bool, rng *rand.Rand) float64 {
	switch g.Role {
	case RoleHousekeeping:
		return g.Baseline
	case RoleTissueSpecific:
		if g.Tissue != meta.Tissue {
			return 0
		}
		return g.Baseline
	case RoleCancerUp, RoleCancerDown:
		if g.Tissue != "" && g.Tissue != meta.Tissue {
			return 0
		}
		up := g.Role == RoleCancerUp
		switch {
		case inCore && up:
			return g.Baseline * upFactor // e.g. L12: 100 -> 275 (Fig 4.2)
		case inCore && !up:
			return g.Baseline * downFactor // e.g. tubulin: 90 -> ~2 (Fig 4.3)
		case meta.State == sage.Cancer && up:
			// Cancer outside the core trends the same way but looser
			// ("although not all of the cancerous libraries cluster into a
			// fascicle, the average expression level is higher than normal").
			return g.Baseline * (1.2 + 1.2*rng.Float64())
		case meta.State == sage.Cancer && !up:
			return g.Baseline * (0.2 + 0.7*rng.Float64())
		default:
			return g.Baseline
		}
	default: // background
		// Background genes are expressed sporadically: in ~20% of libraries.
		if rng.Float64() > 0.2 {
			return 0
		}
		return g.Baseline
	}
}

// addSequencingErrors spends ~ErrorRate of the library's real total on
// single-base mutations of tags already present, overwhelmingly frequency 1.
//
// Most error tags (85%) are drawn uniformly from the whole 4^10 tag space;
// the rest are single-base mutants of expressed tags. A purely
// mutation-based model cannot reproduce the thesis's statistics ("more than
// 80% of the unique tags have a frequency of 1"; the min-tolerance filter
// removes ~83% of raw tags): the gene universe occupies ~6% of the tag
// space, so every 1-base mutant is reachable from ~2-3 real genes and the
// same error tags recur across libraries with counts above 1. Scattering
// the bulk of the error budget across the space reproduces the documented
// singleton-dominated regime while the mutant minority keeps some realistic
// near-miss structure.
func addSequencingErrors(cfg Config, rng *rand.Rand, lib *sage.Library) {
	if cfg.ErrorRate == 0 || len(lib.Counts) == 0 {
		return
	}
	realTotal := lib.Total()
	budget := realTotal * cfg.ErrorRate / (1 - cfg.ErrorRate)
	tags := lib.Tags()
	for budget >= 1 {
		var errTag sage.TagID
		if rng.Float64() < 0.85 {
			errTag = sage.TagID(rng.Intn(sage.NumTags))
		} else {
			src := tags[rng.Intn(len(tags))]
			errTag = src.Mutate(rng.Intn(sage.TagLen), 1+rng.Intn(3))
		}
		n := 1.0
		if rng.Float64() < 0.01 {
			n = 2
		}
		lib.Add(errTag, n)
		budget -= n
	}
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// EmitBatches is the streaming emission mode: it generates the exact
// corpus Generate(cfg) would produce and slices its libraries into n
// contiguous append batches, in order, so concatenating the batches
// reproduces the full corpus library for library. Ingestion tests and
// geabench -ingest use this as a deterministic feed — the same seed
// yields the same batches, and replaying them through the append path
// must converge on the same corpus a one-shot generation would load.
// The generator's single random stream threads through every library in
// sequence, so batches cannot be produced independently; the full result
// is returned alongside as the ground truth.
func EmitBatches(cfg Config, n int) ([][]*sage.Library, *Result, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("sagegen: batch count %d < 1", n)
	}
	res, err := Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	libs := res.Corpus.Libraries
	if n > len(libs) {
		n = len(libs)
	}
	batches := make([][]*sage.Library, 0, n)
	for k := 0; k < n; k++ {
		lo := k * len(libs) / n
		hi := (k + 1) * len(libs) / n
		if lo == hi {
			continue
		}
		batches = append(batches, libs[lo:hi:hi])
	}
	return batches, res, nil
}

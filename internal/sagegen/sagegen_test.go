package sagegen

import (
	"testing"

	"gea/internal/sage"
)

func TestValidate(t *testing.T) {
	ok := SmallConfig()
	if err := ok.Validate(); err != nil {
		t.Fatalf("SmallConfig invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Genes = 0 },
		func(c *Config) { c.Tissues = nil },
		func(c *Config) { c.Tissues[0].FascicleCore = c.Tissues[0].CancerLibs + 1 },
		func(c *Config) { c.Tissues[0].CancerLibs = -1 },
		func(c *Config) { c.Genes = 10 }, // too few for structure
		func(c *Config) { c.MinTotal = 0 },
		func(c *Config) { c.MaxTotal = c.MinTotal - 1 },
		func(c *Config) { c.ErrorRate = -0.1 },
		func(c *Config) { c.ErrorRate = 1 },
	}
	for i, mutate := range cases {
		cfg := SmallConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SmallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Corpus.Libraries) != len(b.Corpus.Libraries) {
		t.Fatal("library counts differ between identical runs")
	}
	for i := range a.Corpus.Libraries {
		la, lb := a.Corpus.Libraries[i], b.Corpus.Libraries[i]
		if la.Meta.Name != lb.Meta.Name || la.Total() != lb.Total() || la.Unique() != lb.Unique() {
			t.Fatalf("library %d differs between identical runs", i)
		}
	}
}

func TestGeneratePanelLayout(t *testing.T) {
	cfg := SmallConfig()
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, ts := range cfg.Tissues {
		want += ts.CancerLibs + ts.NormalLibs
	}
	if got := len(res.Corpus.Libraries); got != want {
		t.Fatalf("generated %d libraries, want %d", got, want)
	}
	// Tissue-by-tissue counts and states.
	for _, ts := range cfg.Tissues {
		libs := res.Corpus.ByTissue(ts.Name)
		if len(libs) != ts.CancerLibs+ts.NormalLibs {
			t.Errorf("%s: %d libs, want %d", ts.Name, len(libs), ts.CancerLibs+ts.NormalLibs)
		}
		cancer := 0
		for _, l := range libs {
			if l.Meta.State == sage.Cancer {
				cancer++
			}
		}
		if cancer != ts.CancerLibs {
			t.Errorf("%s: %d cancer libs, want %d", ts.Name, cancer, ts.CancerLibs)
		}
		if got := len(res.FascicleCore[ts.Name]); got != ts.FascicleCore {
			t.Errorf("%s: %d core libs, want %d", ts.Name, got, ts.FascicleCore)
		}
	}
	// IDs are 1..n in order.
	for i, l := range res.Corpus.Libraries {
		if l.Meta.ID != i+1 {
			t.Fatalf("library %d has ID %d", i, l.Meta.ID)
		}
	}
}

func TestCatalogLookups(t *testing.T) {
	res, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cat := res.Catalog
	for _, name := range []string{GeneRibosomalL12, GeneAlphaTubulin, GeneADPProtein} {
		g, ok := cat.ByName(name)
		if !ok {
			t.Fatalf("marker %q missing from catalog", name)
		}
		back, ok := cat.ByTag(g.Tag)
		if !ok || back.Name != name {
			t.Errorf("ByTag round trip failed for %q", name)
		}
	}
	if _, ok := cat.ByName("NOT A GENE"); ok {
		t.Error("ByName(bogus) = ok")
	}
	if _, ok := cat.ByTag(sage.TagID(0)); ok {
		// TagID 0 is only a real gene with vanishing probability under seed 1;
		// if this ever flakes the seed changed.
		t.Log("TagID 0 happens to be a gene; ignoring")
	}
}

func TestMarkerLevelsMatchFigures(t *testing.T) {
	res, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	core := map[string]bool{}
	for _, n := range res.FascicleCore["brain"] {
		core[n] = true
	}
	l12, _ := res.Catalog.ByName(GeneRibosomalL12)
	tub, _ := res.Catalog.ByName(GeneAlphaTubulin)

	avg := func(tag sage.TagID, pred func(*sage.Library) bool) float64 {
		var sum float64
		var n int
		for _, l := range res.Corpus.ByTissue("brain") {
			if pred(l) {
				// Compare at a common depth so library size does not mask the signal.
				sum += l.Count(tag) / l.Total()
				n++
			}
		}
		return sum / float64(n)
	}
	isCore := func(l *sage.Library) bool { return core[l.Meta.Name] }
	isNormal := func(l *sage.Library) bool { return l.Meta.State == sage.Normal }

	// Fig 4.2: L12 much higher in fascicle-core cancer than normal.
	if c, n := avg(l12.Tag, isCore), avg(l12.Tag, isNormal); c < 1.5*n {
		t.Errorf("L12: core %.5f not >> normal %.5f", c, n)
	}
	// Fig 4.3: tubulin near zero in core, high in normal.
	if c, n := avg(tub.Tag, isCore), avg(tub.Tag, isNormal); c > 0.2*n {
		t.Errorf("tubulin: core %.5f not << normal %.5f", c, n)
	}
}

func TestSequencingErrorShape(t *testing.T) {
	cfg := SmallConfig()
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Raw unique tags far exceed the gene universe (error inflation).
	raw := res.Corpus.TotalUniqueTags()
	if raw < 2*cfg.Genes {
		t.Errorf("raw unique tags %d; expected error inflation beyond %d genes", raw, cfg.Genes)
	}
	// Error budget: each library spends roughly ErrorRate of its total on
	// tags that are not in the catalog.
	for _, l := range res.Corpus.Libraries[:3] {
		var errCount float64
		for tag, c := range l.Counts {
			if _, ok := res.Catalog.ByTag(tag); !ok {
				errCount += c
			}
		}
		frac := errCount / l.Total()
		if frac < 0.03 || frac > 0.20 {
			t.Errorf("%s: error fraction %.3f outside [0.03, 0.20]", l.Meta.Name, frac)
		}
	}
}

func TestGenerateZeroErrorRate(t *testing.T) {
	cfg := SmallConfig()
	cfg.ErrorRate = 0
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Corpus.Libraries {
		for tag := range l.Counts {
			if _, ok := res.Catalog.ByTag(tag); !ok {
				t.Fatalf("%s contains non-catalog tag %v with ErrorRate=0", l.Meta.Name, tag)
			}
		}
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	cfg := SmallConfig()
	cfg.Genes = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("Generate(invalid): expected error")
	}
}

func TestGeneRoleString(t *testing.T) {
	for r, want := range map[GeneRole]string{
		RoleBackground:     "background",
		RoleHousekeeping:   "housekeeping",
		RoleTissueSpecific: "tissue-specific",
		RoleCancerUp:       "cancer-up",
		RoleCancerDown:     "cancer-down",
	} {
		if r.String() != want {
			t.Errorf("role %d = %q", r, r.String())
		}
	}
	if GeneRole(42).String() != "GeneRole(42)" {
		t.Error("unknown role string wrong")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	libs := 0
	for _, ts := range cfg.Tissues {
		libs += ts.CancerLibs + ts.NormalLibs
	}
	if libs != 100 {
		t.Errorf("DefaultConfig has %d libraries, want 100 (the thesis corpus)", libs)
	}
	if len(cfg.Tissues) != 9 {
		t.Errorf("DefaultConfig has %d tissues, want 9", len(cfg.Tissues))
	}
}

package session

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"gea/internal/admission"
	"gea/internal/atomicio"
	"gea/internal/ingest"
	"gea/internal/obs"
	"gea/internal/rescache"
	"gea/internal/sagegen"
	"gea/internal/system"
)

// newChaosSystem builds an ingest-enabled, cached, tenant-governed
// system over an empty append store, plus the batches to stream in.
func newChaosSystem(t *testing.T) (*system.System, []ingest.Batch, *obs.Registry) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	retry := ingest.DefaultRetry()
	retry.Sleep = func(time.Duration) {}
	st, corpus, _, err := ingest.Open(atomicio.OS{}, dir, retry)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sys, err := system.New(corpus, system.Options{
		User:        "chaos",
		Ingest:      &system.IngestOptions{Store: st, Metrics: reg},
		ResultCache: &rescache.Options{Metrics: reg},
		TenantPolicy: &admission.TenantPolicy{
			Envelope: 1 << 40, // throttling correctness is pinned in admission; chaos pins cache/generation safety
			Metrics:  reg,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	libs, _, err := sagegen.EmitBatches(sagegen.SmallConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	batches := make([]ingest.Batch, len(libs))
	for i, ls := range libs {
		batches[i] = ingest.BatchFromLibraries(ls)
	}
	return sys, batches, reg
}

// TestChaosConcurrentTenantsDuringAppends is the chaos layer: several
// tenants fire identical and distinct requests while ingestion commits
// new generations underneath them. Run under -race. It pins:
//
//   - no cross-generation serving: every response's generation lies in
//     the [before, after] window of its own request, and all responses
//     for the same (params, generation) are DeepEqual-identical;
//   - accounting closes: hits + misses + shared == total requests, and
//     misses never exceed distinct (params, generation) keys;
//   - no leaks after the storm: zero in-flight computes, entries within
//     bounds, superseded generations swept, zero live sessions after
//     the drain.
func TestChaosConcurrentTenantsDuringAppends(t *testing.T) {
	sys, batches, reg := newChaosSystem(t)
	if _, err := sys.IngestAppend(batches[0]); err != nil {
		t.Fatal(err)
	}
	m := NewManager(sys, Options{Metrics: reg})
	ctx := context.Background()

	const tenants = 4
	const goroutinesPerTenant = 2
	const runsEach = 12
	for i := 0; i < tenants; i++ {
		if _, err := m.Create(fmt.Sprintf("t%d", i), fmt.Sprintf("acme%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the cache at the current generation so the appends below have
	// entries to sweep — EvictBelow coverage must not depend on timing.
	if _, err := m.Run(ctx, "t0", Request{Op: "select", Params: map[string]string{"minmean": "5"}}); err != nil {
		t.Fatal(err)
	}

	type obsn struct {
		params string
		gen    uint64
		value  any
	}
	var (
		mu        sync.Mutex
		seen      []obsn
		firstErr  error
		wg        sync.WaitGroup
		appenderW sync.WaitGroup
	)
	record := func(params string, gen uint64, value any, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if err == nil {
			seen = append(seen, obsn{params, gen, value})
		}
	}

	appenderW.Add(1)
	go func() {
		defer appenderW.Done()
		for _, b := range batches[1:] {
			if _, err := sys.IngestAppend(b); err != nil {
				record("", 0, nil, err)
			}
		}
	}()
	for i := 0; i < tenants; i++ {
		for g := 0; g < goroutinesPerTenant; g++ {
			wg.Add(1)
			go func(tenant int) {
				defer wg.Done()
				id := fmt.Sprintf("t%d", tenant)
				for r := 0; r < runsEach; r++ {
					// Half the load is fleet-identical (single-flight and
					// cross-tenant sharing), half is tenant-distinct.
					minmean := "5"
					if r%2 == 1 {
						minmean = fmt.Sprintf("%d", 6+tenant)
					}
					req := Request{Op: "select", Params: map[string]string{"minmean": minmean}}
					g0 := sys.Generation()
					resp, err := m.Run(ctx, id, req)
					g1 := sys.Generation()
					if err != nil {
						record(minmean, 0, nil, err)
						continue
					}
					if resp.Generation < g0 || resp.Generation > g1 {
						record(minmean, 0, nil,
							fmt.Errorf("cross-generation serve: got gen %d outside request window [%d, %d]",
								resp.Generation, g0, g1))
						continue
					}
					record(minmean, resp.Generation, resp.Result, nil)
				}
			}(i)
		}
	}
	wg.Wait()
	appenderW.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// Every response for the same (params, generation) must be
	// identical — the cache may never blend generations.
	canon := map[string]any{}
	distinct := map[string]bool{}
	for _, o := range seen {
		key := fmt.Sprintf("%s@%d", o.params, o.gen)
		distinct[key] = true
		if prev, ok := canon[key]; !ok {
			canon[key] = o.value
		} else if !reflect.DeepEqual(prev, o.value) {
			t.Fatalf("two responses for %s diverge", key)
		}
	}

	stats := sys.ResultCacheStats()
	if stats.InFlight != 0 {
		t.Errorf("in-flight computes leaked: %d", stats.InFlight)
	}
	total := int64(len(seen)) // includes the warmup run via seen? no — warmup not recorded
	total++                   // the warmup run
	if got := stats.Hits + stats.Misses + stats.Shared; got != total {
		t.Errorf("accounting leak: hits %d + misses %d + shared %d = %d, want %d requests",
			stats.Hits, stats.Misses, stats.Shared, got, total)
	}
	if stats.Misses > int64(len(distinct))+1 { // +1 for the warmup key
		t.Errorf("misses %d exceed %d distinct (params, generation) keys — single-flight or keying broke",
			stats.Misses, len(distinct)+1)
	}
	if stats.Swept < 1 {
		t.Errorf("swept = %d; appends retired generations but nothing was evicted", stats.Swept)
	}
	if stats.Entries > rescache.DefaultMaxEntries {
		t.Errorf("entries %d exceed the bound %d", stats.Entries, rescache.DefaultMaxEntries)
	}

	// Drain: close every session and verify nothing lingers.
	for i := 0; i < tenants; i++ {
		if err := m.Close(fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Active() != 0 {
		t.Errorf("sessions leaked after drain: %d", m.Active())
	}
	if got := gaugeOf(reg.Snapshot(), "session.active"); got != 0 {
		t.Errorf("session.active gauge = %d after drain, want 0", got)
	}
	for i := 0; i < tenants; i++ {
		if sys.Lineage.Has(fmt.Sprintf("session/t%d", i)) {
			t.Errorf("session t%d lineage survived the drain", i)
		}
	}
}

// TestChaosSingleFlightExactlyOneCompute deterministically pins the
// single-flight contract at the session layer: a burst of identical
// requests on a fresh key produces exactly one compute.
func TestChaosSingleFlightExactlyOneCompute(t *testing.T) {
	sys, batches, _ := newChaosSystem(t)
	if _, err := sys.IngestAppend(batches[0]); err != nil {
		t.Fatal(err)
	}
	m := NewManager(sys, Options{})
	if _, err := m.Create("sf", "acme"); err != nil {
		t.Fatal(err)
	}
	before := sys.ResultCacheStats()

	const burst = 8
	var wg sync.WaitGroup
	errs := make(chan error, burst)
	start := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := m.Run(context.Background(), "sf",
				Request{Op: "aggregate", Params: map[string]string{"tissue": "brain", "median": "true"}})
			errs <- err
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	after := sys.ResultCacheStats()
	if got := after.Misses - before.Misses; got != 1 {
		t.Errorf("burst of %d identical requests computed %d times, want exactly 1", burst, got)
	}
	if got := (after.Hits + after.Shared) - (before.Hits + before.Shared); got != burst-1 {
		t.Errorf("hits+shared = %d, want %d", got, burst-1)
	}
	if after.InFlight != 0 {
		t.Errorf("in-flight leaked: %d", after.InFlight)
	}
}

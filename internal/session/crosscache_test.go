package session

import (
	"context"
	"reflect"
	"testing"

	"gea/internal/obs"
	"gea/internal/rescache"
	"gea/internal/sagegen"
	"gea/internal/system"
)

// crossCachePair builds two managers over identical corpora (same
// deterministic generator seed): one serving through the result cache,
// one always computing cold. Comparing their results pins the
// tentpole's core invariant — a cached result is reflect.DeepEqual-
// identical to a fresh computation of the same request.
func crossCachePair(t *testing.T) (cached, cold *Manager, reg *obs.Registry) {
	t.Helper()
	build := func(opts system.Options) *system.System {
		res, err := sagegen.Generate(sagegen.SmallConfig())
		if err != nil {
			t.Fatal(err)
		}
		sys, err := system.New(res.Corpus, opts)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	reg = obs.NewRegistry()
	cachedSys := build(system.Options{User: "crosscache", ResultCache: &rescache.Options{Metrics: reg}})
	coldSys := build(system.Options{User: "crosscache"})
	cached = NewManager(cachedSys, Options{})
	cold = NewManager(coldSys, Options{})
	if _, err := cached.Create("cc", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Create("cc", ""); err != nil {
		t.Fatal(err)
	}
	return cached, cold, reg
}

// crossCacheOps is every operator family a session can run, with params
// that exercise it on the small corpus.
var crossCacheOps = []struct {
	name   string
	params map[string]string
}{
	{"mine", map[string]string{"tissue": "brain", "minsize": "2"}},
	{"aggregate", map[string]string{"tissue": "brain", "median": "true"}},
	{"diff", map[string]string{"a": "brain", "b": "breast"}},
	{"populate", map[string]string{"tissue": "kidney"}},
	{"select", map[string]string{"tissue": "breast", "minmean": "5"}},
	{"rangesearch", map[string]string{"a": "brain", "b": "breast", "lo": "0", "hi": "50"}},
	{"topgap", map[string]string{"a": "brain", "b": "kidney", "x": "5"}},
}

// TestCrossCacheDeepEqual is the acceptance suite: for every operator
// family, at worker counts 1 and 4, the cold computation, the cache-
// filling computation and the cache hit are all DeepEqual-identical,
// and the hit reports the producing run's units.
func TestCrossCacheDeepEqual(t *testing.T) {
	cached, cold, _ := crossCachePair(t)
	ctx := context.Background()
	for _, op := range crossCacheOps {
		for _, workers := range []int{1, 4} {
			t.Run(op.name+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				req := Request{Op: op.name, Params: op.params, Workers: workers}
				coldResp, err := cold.Run(ctx, "cc", req)
				if err != nil {
					t.Fatal(err)
				}
				if coldResp.Cached || coldResp.Source != "computed" {
					t.Fatalf("cache-less manager served source=%q", coldResp.Source)
				}
				warm, err := cached.Run(ctx, "cc", req)
				if err != nil {
					t.Fatal(err)
				}
				hit, err := cached.Run(ctx, "cc", req)
				if err != nil {
					t.Fatal(err)
				}
				// The first warm run at workers=1 computes; at workers=4 the
				// workers=1 pass already filled the key (workers are excluded
				// from the key by design), so both warm and hit must be hits.
				if hit.Source != "hit" || !hit.Cached {
					t.Fatalf("repeat run source = %q, want hit", hit.Source)
				}
				if !reflect.DeepEqual(warm.Result, hit.Result) {
					t.Errorf("%s: cache hit diverges from the computation that filled it", op.name)
				}
				if !reflect.DeepEqual(coldResp.Result, hit.Result) {
					t.Errorf("%s workers=%d: cached result diverges from a cold computation", op.name, workers)
				}
				if hit.Units != warm.Units {
					t.Errorf("%s: hit units %d != producing units %d", op.name, hit.Units, warm.Units)
				}
				if hit.Generation != warm.Generation {
					t.Errorf("%s: hit generation %d != producing generation %d", op.name, hit.Generation, warm.Generation)
				}
				if hit.Partial || warm.Partial || coldResp.Partial {
					t.Errorf("%s: unbudgeted run flagged partial", op.name)
				}
			})
		}
	}
}

// TestCrossCacheWorkersExcludedFromKey pins the key contract end to
// end: the same request at a different worker count is the same cache
// entry (workers shape execution, never results).
func TestCrossCacheWorkersExcludedFromKey(t *testing.T) {
	cached, _, reg := crossCachePair(t)
	ctx := context.Background()
	req := func(w int) Request {
		return Request{Op: "aggregate", Params: map[string]string{"tissue": "brain"}, Workers: w}
	}
	first, err := cached.Run(ctx, "cc", req(1))
	if err != nil {
		t.Fatal(err)
	}
	second, err := cached.Run(ctx, "cc", req(4))
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != "computed" || second.Source != "hit" {
		t.Fatalf("sources = %q, %q; want computed then hit across worker counts", first.Source, second.Source)
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Error("workers=4 hit diverges from workers=1 fill")
	}
	if got := counterOf(reg.Snapshot(), "cache.misses"); got != 1 {
		t.Errorf("cache.misses = %d, want exactly 1 across both worker counts", got)
	}
}

// TestCrossCachePartialNeverCached is the acceptance proof that budget-
// flagged partials never enter the cache: a budget-starved aggregate
// returns partial, the next full-budget identical request computes
// fresh (a hit would have served the truncation), and only then does
// the key serve hits.
func TestCrossCachePartialNeverCached(t *testing.T) {
	cached, _, reg := crossCachePair(t)
	ctx := context.Background()
	params := map[string]string{"tissue": "brain"}

	starved, err := cached.Run(ctx, "cc", Request{Op: "aggregate", Params: params, Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !starved.Partial {
		t.Fatalf("budget 3 aggregate not partial (units=%d); the starvation lever broke", starved.Units)
	}
	if starved.Cached {
		t.Fatal("partial result reported as cached")
	}

	full, err := cached.Run(ctx, "cc", Request{Op: "aggregate", Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if full.Source != "computed" {
		t.Fatalf("full-budget run after partial: source=%q — the partial was cached", full.Source)
	}
	if full.Partial {
		t.Fatal("full-budget run flagged partial")
	}

	hit, err := cached.Run(ctx, "cc", Request{Op: "aggregate", Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if hit.Source != "hit" {
		t.Fatalf("third run source=%q, want hit", hit.Source)
	}
	if !reflect.DeepEqual(full.Result, hit.Result) {
		t.Error("hit diverges from the full computation")
	}
	if hit.Partial {
		t.Error("cache served a partial")
	}

	stats := counterOf(reg.Snapshot(), "cache.uncacheable_partial")
	if stats < 1 {
		t.Errorf("cache.uncacheable_partial = %d, want >= 1", stats)
	}
	// A different budget is the same key: Budget, like Workers, shapes
	// execution only. The starved run must not have poisoned the key,
	// and the hit above proves the full run filled it.
	if mi := counterOf(reg.Snapshot(), "cache.misses"); mi != 2 {
		t.Errorf("cache.misses = %d, want 2 (starved + refill)", mi)
	}
}

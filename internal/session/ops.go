package session

import (
	"context"
	"fmt"
	"strconv"

	"gea/internal/clean"
	"gea/internal/core"
	"gea/internal/exec"
	"gea/internal/fascicle"
	"gea/internal/interval"
	"gea/internal/lineage"
	"gea/internal/sage"
)

// Request is one operator invocation against a session. Params are
// operator-specific strings (parsed and canonicalized per op); Budget
// and Workers shape execution only and never reach the cache key —
// results are bit-identical at any worker count, and budget-stopped
// partials are never cached.
type Request struct {
	Op      string            `json:"op"`
	Params  map[string]string `json:"params,omitempty"`
	Budget  int64             `json:"budget,omitempty"`
	Workers int               `json:"workers,omitempty"`
}

// Response reports one run with the accounting that keeps cached and
// computed responses reconcilable.
type Response struct {
	Session    string `json:"session"`
	Op         string `json:"op"`
	Generation uint64 `json:"generation"`
	Units      int64  `json:"units"`
	Partial    bool   `json:"partial,omitempty"`
	// Source is "computed", "hit" or "shared"; Cached is its boolean
	// shorthand (true unless computed).
	Source    string `json:"source"`
	Cached    bool   `json:"cached"`
	Throttled bool   `json:"throttled,omitempty"`
	// WallNS is the server-side dispatch wall — admission, shaping and
	// the compute-or-cache-lookup — excluding response encoding, which
	// costs the same whether the result was computed or served from
	// cache. It is what a cold-vs-cached comparison should compare.
	WallNS int64 `json:"wall_ns"`
	// Node is the lineage node this run recorded.
	Node   string `json:"node"`
	Result any    `json:"result"`
}

// computeFn is what an op hands to System.CachedQueryCtx: a pure
// function of the metered Ctl and the generation's dataset snapshot.
type computeFn = func(c *exec.Ctl, data *sage.Dataset) (any, int64, bool, error)

// opSpec is one entry of the operator catalog: build parses the raw
// request params into (canonical key params, compute closure). The key
// params must be plain data — the closure (which may capture
// predicates and other funcs) never reaches the canonicalizer.
type opSpec struct {
	kind  lineage.Kind
	build func(raw map[string]string) (any, computeFn, error)
}

// Ops lists the operators a session can run, sorted by name.
func Ops() []string {
	return []string{"aggregate", "diff", "mine", "populate", "rangesearch", "select", "topgap"}
}

var opTable = map[string]opSpec{
	"mine":        {kind: lineage.KindFascicle, build: buildMine},
	"aggregate":   {kind: lineage.KindSumy, build: buildAggregate},
	"diff":        {kind: lineage.KindGap, build: buildDiff},
	"populate":    {kind: lineage.KindEnum, build: buildPopulate},
	"select":      {kind: lineage.KindSumy, build: buildSelect},
	"rangesearch": {kind: lineage.KindCompare, build: buildRangeSearch},
	"topgap":      {kind: lineage.KindTopGap, build: buildTopGap},
}

// Run executes one operator for a session through the result cache,
// records a lineage node under the session's root, and returns the
// reconciled response. The session's idle timer is touched.
func (m *Manager) Run(ctx context.Context, id string, req Request) (*Response, error) {
	m.mu.Lock()
	s, err := m.lookupLocked(id)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	tenant := s.Tenant
	s.runs++
	runN := s.runs
	m.mu.Unlock()

	spec, ok := opTable[req.Op]
	if !ok {
		return nil, &ParamError{Param: "op", Reason: fmt.Sprintf("unknown operator %q (have %v)", req.Op, Ops())}
	}
	params, compute, err := spec.build(req.Params)
	if err != nil {
		return nil, err
	}
	m.runs.Add(1)

	lim := exec.Limits{Budget: req.Budget, Workers: req.Workers}
	dispatchStart := m.now()
	qr, err := m.sys.CachedQueryCtx(ctx, tenant, "session."+req.Op, params, lim, compute)
	if err != nil {
		return nil, err
	}
	wallNS := m.now().Sub(dispatchStart).Nanoseconds()

	node := fmt.Sprintf("%s/%s#%d", lineageRoot(id), req.Op, runN)
	lparams := map[string]string{
		"generation": fmt.Sprint(qr.Generation),
		"source":     qr.Source.String(),
	}
	if qr.Partial {
		lparams["partial"] = "true"
	}
	// Best-effort: a concurrent Close may have cascaded the root away.
	_ = m.sys.RecordQueryRun(node, spec.kind, req.Op, lparams, qr.Record, lineageRoot(id))

	return &Response{
		Session:    id,
		Op:         req.Op,
		Generation: qr.Generation,
		Units:      qr.Units,
		Partial:    qr.Partial,
		Source:     qr.Source.String(),
		Cached:     qr.Source.Cached(),
		Throttled:  qr.Throttled,
		WallNS:     wallNS,
		Node:       node,
		Result:     qr.Value,
	}, nil
}

// ---- parsing helpers ----------------------------------------------------

func paramInt(raw map[string]string, key string, def int) (int, error) {
	v, ok := raw[key]
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, &ParamError{Param: key, Reason: fmt.Sprintf("not an integer: %q", v)}
	}
	return n, nil
}

func paramFloat(raw map[string]string, key string, def float64) (float64, error) {
	v, ok := raw[key]
	if !ok || v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, &ParamError{Param: key, Reason: fmt.Sprintf("not a number: %q", v)}
	}
	return f, nil
}

func paramBool(raw map[string]string, key string) (bool, error) {
	v, ok := raw[key]
	if !ok || v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, &ParamError{Param: key, Reason: fmt.Sprintf("not a boolean: %q", v)}
	}
	return b, nil
}

func paramAlgorithm(raw map[string]string) (core.Algorithm, string, error) {
	switch raw["algorithm"] {
	case "", "greedy":
		return core.GreedyAlgorithm, "greedy", nil
	case "lattice":
		return core.LatticeAlgorithm, "lattice", nil
	default:
		return 0, "", &ParamError{Param: "algorithm", Reason: fmt.Sprintf("unknown algorithm %q (greedy or lattice)", raw["algorithm"])}
	}
}

// subsetOf scopes the snapshot to one tissue; an empty tissue is the
// whole corpus. An unknown tissue is a caller fault.
func subsetOf(data *sage.Dataset, tissue string) (*sage.Dataset, error) {
	if tissue == "" {
		return data, nil
	}
	sub, err := data.SubsetByTissue(tissue)
	if err != nil {
		return nil, &ParamError{Param: "tissue", Reason: err.Error()}
	}
	return sub, nil
}

// Rough retained-size estimates, charged against the cache's byte
// bound. Approximate by design — the bound is a memory-pressure valve,
// not an accountant.
func sumyBytes(s *core.Sumy) int64 { return int64(len(s.Rows))*64 + 128 }
func gapBytes(g *core.Gap) int64   { return int64(len(g.Rows))*48 + 128 }
func enumBytes(e *core.Enum) int64 { return int64(len(e.Rows)+len(e.Cols))*8 + 64 }

// aggregateSnapshot is the shared "tissue → SUMY" step several ops
// build on. Result names are pure functions of the params so repeated
// computes are DeepEqual-identical.
func aggregateSnapshot(c *exec.Ctl, data *sage.Dataset, tissue string, withMedian bool) (*core.Sumy, bool, error) {
	sub, err := subsetOf(data, tissue)
	if err != nil {
		return nil, false, err
	}
	label := tissue
	if label == "" {
		label = "corpus"
	}
	e := core.FullEnum("session.enum:"+label, sub)
	return core.AggregateWith(c, "session.agg:"+label, e, core.AggregateOptions{WithMedian: withMedian})
}

// ---- operator builders ---------------------------------------------------

type mineParams struct {
	Tissue    string
	K         int
	MinSize   int
	TolPct    float64
	Algorithm string
}

func buildMine(raw map[string]string) (any, computeFn, error) {
	k, err := paramInt(raw, "k", 0)
	if err != nil {
		return nil, nil, err
	}
	minSize, err := paramInt(raw, "minsize", 3)
	if err != nil {
		return nil, nil, err
	}
	tolPct, err := paramFloat(raw, "tolerance", 10)
	if err != nil {
		return nil, nil, err
	}
	alg, algName, err := paramAlgorithm(raw)
	if err != nil {
		return nil, nil, err
	}
	p := mineParams{Tissue: raw["tissue"], K: k, MinSize: minSize, TolPct: tolPct, Algorithm: algName}
	compute := func(c *exec.Ctl, data *sage.Dataset) (any, int64, bool, error) {
		sub, err := subsetOf(data, p.Tissue)
		if err != nil {
			return nil, 0, false, err
		}
		tol, err := clean.ToleranceVector(sub, p.TolPct)
		if err != nil {
			return nil, 0, false, err
		}
		k := p.K
		if k <= 0 {
			k = sub.NumTags() * 60 / 100
		}
		label := p.Tissue
		if label == "" {
			label = "corpus"
		}
		results, partial, err := core.MineWith(c, fmt.Sprintf("session.mine:%s.%dk", label, k),
			sub, fascicle.Params{K: k, Tolerance: tol, MinSize: p.MinSize}, alg)
		if err != nil {
			return nil, 0, false, err
		}
		var bytes int64
		//lint:gea ctlcharge -- O(fascicles) size estimation after the metered mine
		for i := range results {
			bytes += sumyBytes(results[i].Sumy) + enumBytes(results[i].Enum)
		}
		return results, bytes, partial, nil
	}
	return p, compute, nil
}

type aggregateParams struct {
	Tissue     string
	WithMedian bool
}

func buildAggregate(raw map[string]string) (any, computeFn, error) {
	median, err := paramBool(raw, "median")
	if err != nil {
		return nil, nil, err
	}
	p := aggregateParams{Tissue: raw["tissue"], WithMedian: median}
	compute := func(c *exec.Ctl, data *sage.Dataset) (any, int64, bool, error) {
		sm, partial, err := aggregateSnapshot(c, data, p.Tissue, p.WithMedian)
		if err != nil {
			return nil, 0, false, err
		}
		return sm, sumyBytes(sm), partial, nil
	}
	return p, compute, nil
}

type diffParams struct {
	TissueA, TissueB string
}

func buildDiff(raw map[string]string) (any, computeFn, error) {
	a, b := raw["a"], raw["b"]
	if a == "" || b == "" || a == b {
		return nil, nil, &ParamError{Param: "a/b", Reason: "diff needs two distinct tissues"}
	}
	p := diffParams{TissueA: a, TissueB: b}
	compute := func(c *exec.Ctl, data *sage.Dataset) (any, int64, bool, error) {
		sa, pa, err := aggregateSnapshot(c, data, p.TissueA, false)
		if err != nil {
			return nil, 0, false, err
		}
		sb, pb, err := aggregateSnapshot(c, data, p.TissueB, false)
		if err != nil {
			return nil, 0, false, err
		}
		g, pg, err := core.DiffWith(c, fmt.Sprintf("session.gap:%s|%s", p.TissueA, p.TissueB), sa, sb)
		if err != nil {
			return nil, 0, false, err
		}
		return g, gapBytes(g), pa || pb || pg, nil
	}
	return p, compute, nil
}

type populateParams struct {
	Tissue string
}

// PopulateResult pairs the populated ENUM with its evaluation stats.
type PopulateResult struct {
	Enum  *core.Enum         `json:"enum"`
	Stats core.PopulateStats `json:"stats"`
}

func buildPopulate(raw map[string]string) (any, computeFn, error) {
	if raw["tissue"] == "" {
		return nil, nil, &ParamError{Param: "tissue", Reason: "populate needs a tissue to profile"}
	}
	p := populateParams{Tissue: raw["tissue"]}
	compute := func(c *exec.Ctl, data *sage.Dataset) (any, int64, bool, error) {
		sm, pa, err := aggregateSnapshot(c, data, p.Tissue, false)
		if err != nil {
			return nil, 0, false, err
		}
		e, stats, pp, err := core.PopulateWith(c, "session.pop:"+p.Tissue, sm, data, nil, core.PopulateOptions{})
		if err != nil {
			return nil, 0, false, err
		}
		return PopulateResult{Enum: e, Stats: stats}, enumBytes(e), pa || pp, nil
	}
	return p, compute, nil
}

type selectParams struct {
	Tissue  string
	MinMean float64
}

func buildSelect(raw map[string]string) (any, computeFn, error) {
	minMean, err := paramFloat(raw, "minmean", 0)
	if err != nil {
		return nil, nil, err
	}
	p := selectParams{Tissue: raw["tissue"], MinMean: minMean}
	compute := func(c *exec.Ctl, data *sage.Dataset) (any, int64, bool, error) {
		sm, pa, err := aggregateSnapshot(c, data, p.Tissue, false)
		if err != nil {
			return nil, 0, false, err
		}
		// The predicate is built here, from numeric params only — funcs
		// never reach the cache key.
		out, ps, err := core.SelectSumyWith(c, fmt.Sprintf("session.sel:%s>=%g", p.Tissue, p.MinMean),
			sm, func(r core.SumyRow) bool { return r.Mean >= p.MinMean })
		if err != nil {
			return nil, 0, false, err
		}
		return out, sumyBytes(out), pa || ps, nil
	}
	return p, compute, nil
}

type rangeSearchParams struct {
	TissueA, TissueB  string
	Lo, Hi            float64
	FirstTag, LastTag int
}

func buildRangeSearch(raw map[string]string) (any, computeFn, error) {
	lo, err := paramFloat(raw, "lo", 0)
	if err != nil {
		return nil, nil, err
	}
	hi, err := paramFloat(raw, "hi", 0)
	if err != nil {
		return nil, nil, err
	}
	if hi < lo {
		return nil, nil, &ParamError{Param: "lo/hi", Reason: fmt.Sprintf("inverted query range [%g, %g]", lo, hi)}
	}
	first, err := paramInt(raw, "firsttag", 0)
	if err != nil {
		return nil, nil, err
	}
	last, err := paramInt(raw, "lasttag", 0)
	if err != nil {
		return nil, nil, err
	}
	p := rangeSearchParams{TissueA: raw["a"], TissueB: raw["b"], Lo: lo, Hi: hi, FirstTag: first, LastTag: last}
	compute := func(c *exec.Ctl, data *sage.Dataset) (any, int64, bool, error) {
		var sumys []*core.Sumy
		partial := false
		for _, tissue := range []string{p.TissueA, p.TissueB} {
			if tissue == "" && len(sumys) > 0 {
				continue
			}
			sm, pa, err := aggregateSnapshot(c, data, tissue, false)
			if err != nil {
				return nil, 0, false, err
			}
			partial = partial || pa
			sumys = append(sumys, sm)
		}
		last := sage.TagID(p.LastTag)
		if p.LastTag <= 0 && data.NumTags() > 0 {
			last = data.Tags[len(data.Tags)-1]
		}
		rows, pr, err := core.RangeSearchWith(c, sumys, sage.TagID(p.FirstTag), last,
			core.BroadOverlap(interval.New(p.Lo, p.Hi)))
		if err != nil {
			return nil, 0, false, err
		}
		return rows, int64(len(rows))*64 + 64, partial || pr, nil
	}
	return p, compute, nil
}

type topGapParams struct {
	TissueA, TissueB string
	X                int
}

func buildTopGap(raw map[string]string) (any, computeFn, error) {
	a, b := raw["a"], raw["b"]
	if a == "" || b == "" || a == b {
		return nil, nil, &ParamError{Param: "a/b", Reason: "topgap needs two distinct tissues"}
	}
	x, err := paramInt(raw, "x", 10)
	if err != nil {
		return nil, nil, err
	}
	if x <= 0 {
		return nil, nil, &ParamError{Param: "x", Reason: fmt.Sprintf("top count must be positive, got %d", x)}
	}
	p := topGapParams{TissueA: a, TissueB: b, X: x}
	compute := func(c *exec.Ctl, data *sage.Dataset) (any, int64, bool, error) {
		sa, pa, err := aggregateSnapshot(c, data, p.TissueA, false)
		if err != nil {
			return nil, 0, false, err
		}
		sb, pb, err := aggregateSnapshot(c, data, p.TissueB, false)
		if err != nil {
			return nil, 0, false, err
		}
		g, pg, err := core.DiffWith(c, fmt.Sprintf("session.gap:%s|%s", p.TissueA, p.TissueB), sa, sb)
		if err != nil {
			return nil, 0, false, err
		}
		top, err := core.TopGaps(fmt.Sprintf("session.top:%s|%s.%d", p.TissueA, p.TissueB, p.X), g, 0, p.X)
		if err != nil {
			return nil, 0, false, err
		}
		return top, gapBytes(top), pa || pb || pg, nil
	}
	return p, compute, nil
}

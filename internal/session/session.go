// Package session is the HTTP-facing session lifecycle over a
// system.System: a client creates a named session (scoped to a
// tenant), runs read-only algebra operators by name through the
// generation-keyed result cache, fetches the lineage its runs
// recorded, and is expired after sitting idle. Sessions are a serving
// construct — they own no corpus data, only identity, accounting and
// lineage scope — so an expired session costs nothing to abandon.
//
// Error contract (what the serve layer maps to statuses):
//
//   - ErrSessionUnknown (errors.Is): the ID was never created → 404
//   - ErrSessionExpired (errors.Is): the ID existed and is gone → 410
//   - *ErrSessionExists (errors.As): double create → 409
//   - *ParamError (errors.As): caller-fault request → 400
//   - *admission.ErrOverload (errors.As): session table full → 503
package session

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gea/internal/admission"
	"gea/internal/obs"
	"gea/internal/system"
)

// Lifecycle defaults.
const (
	// DefaultExpiry is the idle lifetime before a session is expired.
	DefaultExpiry = 15 * time.Minute
	// DefaultMaxSessions bounds live sessions; creation past it is an
	// overload, not an error in the request.
	DefaultMaxSessions = 64
)

// ErrSessionUnknown reports an ID that was never created. Typed for
// errors.Is; the serve layer maps it to 404.
var ErrSessionUnknown = errors.New("session: unknown session")

// ErrSessionExpired reports an ID that existed but was expired or
// closed. Typed for errors.Is; the serve layer maps it to 410.
var ErrSessionExpired = errors.New("session: session expired")

// ErrSessionExists reports a create for an ID that is already live.
// Typed for errors.As; the serve layer maps it to 409.
type ErrSessionExists struct{ ID string }

func (e *ErrSessionExists) Error() string {
	return fmt.Sprintf("session: %q already exists", e.ID)
}

// ParamError reports a caller-fault request parameter. Typed for
// errors.As; the serve layer maps it to 400.
type ParamError struct {
	Param  string
	Reason string
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("session: bad parameter %q: %s", e.Param, e.Reason)
}

// Options configures a Manager; zero fields select the defaults.
type Options struct {
	// Expiry is the idle lifetime; zero means DefaultExpiry.
	Expiry time.Duration
	// MaxSessions bounds live sessions; zero means DefaultMaxSessions.
	MaxSessions int
	// Metrics optionally records the session.* series.
	Metrics *obs.Registry
	// Clock overrides time.Now, for deterministic expiry tests.
	Clock func() time.Time
}

// Session is one live session. Fields are written only under the
// manager's lock; Info snapshots them safely.
type Session struct {
	ID        string
	Tenant    string
	CreatedAt time.Time

	lastUsed time.Time
	runs     int
}

// Info is a Session snapshot, JSON-ready for the serve layer.
type Info struct {
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	LastUsed  time.Time `json:"last_used"`
	Runs      int       `json:"runs"`
}

// Manager owns the session table: create, lookup-with-touch, idle
// expiry with tombstones (so an expired ID answers 410, not 404), and
// operator dispatch through the System's cached query path.
type Manager struct {
	sys    *system.System
	expiry time.Duration
	max    int
	now    func() time.Time

	created, expired, closed, runs *obs.Counter
	active                         *obs.Gauge

	mu       sync.Mutex
	sessions map[string]*Session
	// tombstones remembers expired/closed IDs so their reads fail
	// typed as expired rather than unknown.
	tombstones map[string]bool
	seq        int
}

// NewManager builds a session manager over sys.
func NewManager(sys *system.System, opts Options) *Manager {
	if opts.Expiry <= 0 {
		opts.Expiry = DefaultExpiry
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	r := opts.Metrics
	return &Manager{
		sys:        sys,
		expiry:     opts.Expiry,
		max:        opts.MaxSessions,
		now:        opts.Clock,
		created:    r.Counter("session.created"),
		expired:    r.Counter("session.expired"),
		closed:     r.Counter("session.closed"),
		runs:       r.Counter("session.runs"),
		active:     r.Gauge("session.active"),
		sessions:   map[string]*Session{},
		tombstones: map[string]bool{},
	}
}

// lineageRoot is the session's lineage namespace: every run node hangs
// off it, so closing the session cascades all of them away.
func lineageRoot(id string) string { return "session/" + id }

// Create registers a session. An empty ID gets a generated one. A live
// duplicate fails with *ErrSessionExists; a full table fails with
// *admission.ErrOverload whose RetryAfter estimates when the oldest
// session will expire. Re-creating an expired ID is allowed — the
// tombstone is released.
func (m *Manager) Create(id, tenant string) (Info, error) {
	m.mu.Lock()
	now := m.now()
	m.sweepLocked(now)
	if id == "" {
		m.seq++
		id = fmt.Sprintf("s%d", m.seq)
	}
	if _, ok := m.sessions[id]; ok {
		m.mu.Unlock()
		return Info{}, &ErrSessionExists{ID: id}
	}
	if len(m.sessions) >= m.max {
		retry := m.oldestExpiryLocked(now)
		m.mu.Unlock()
		return Info{}, &admission.ErrOverload{QueueLen: m.max, RetryAfter: retry}
	}
	delete(m.tombstones, id)
	s := &Session{ID: id, Tenant: tenant, CreatedAt: now, lastUsed: now}
	m.sessions[id] = s
	m.created.Add(1)
	m.active.Set(int64(len(m.sessions)))
	info := m.infoLocked(s)
	m.mu.Unlock()

	// The lineage root is best-effort: a collision (e.g. a recreated
	// expired ID whose cascade already removed the node) just reuses it.
	_ = m.sys.RecordQueryRun(lineageRoot(id), 0, "session-create",
		map[string]string{"tenant": tenant}, nil)
	return info, nil
}

// Get returns a session's snapshot, touching its idle timer.
func (m *Manager) Get(id string) (Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, err := m.lookupLocked(id)
	if err != nil {
		return Info{}, err
	}
	return m.infoLocked(s), nil
}

// Close ends a session explicitly. Its ID tombstones like an expiry
// (subsequent reads answer expired) and its lineage subtree is
// cascaded away.
func (m *Manager) Close(id string) error {
	m.mu.Lock()
	s, err := m.lookupLocked(id)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	delete(m.sessions, s.ID)
	m.tombstones[s.ID] = true
	m.closed.Add(1)
	m.active.Set(int64(len(m.sessions)))
	m.mu.Unlock()
	_, _ = m.sys.DeleteCascade(lineageRoot(id))
	return nil
}

// Sweep expires every idle session now; returns how many went.
// Expiry is otherwise lazy (checked on each lookup and create).
func (m *Manager) Sweep() int {
	m.mu.Lock()
	gone := m.sweepLocked(m.now())
	m.mu.Unlock()
	for _, id := range gone {
		_, _ = m.sys.DeleteCascade(lineageRoot(id))
	}
	return len(gone)
}

// Active reports the live session count.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// List snapshots every live session, for /healthz.
func (m *Manager) List() []Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Info, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, m.infoLocked(s))
	}
	return out
}

// lookupLocked resolves an ID, expiring it first if its idle timer ran
// out, and touching it otherwise.
func (m *Manager) lookupLocked(id string) (*Session, error) {
	now := m.now()
	s, ok := m.sessions[id]
	if !ok {
		if m.tombstones[id] {
			return nil, fmt.Errorf("session %q: %w", id, ErrSessionExpired)
		}
		return nil, fmt.Errorf("session %q: %w", id, ErrSessionUnknown)
	}
	if now.Sub(s.lastUsed) > m.expiry {
		delete(m.sessions, id)
		m.tombstones[id] = true
		m.expired.Add(1)
		m.active.Set(int64(len(m.sessions)))
		return nil, fmt.Errorf("session %q: %w", id, ErrSessionExpired)
	}
	s.lastUsed = now
	return s, nil
}

// sweepLocked expires every over-idle session, returning their IDs so
// the caller can cascade lineage outside the lock.
func (m *Manager) sweepLocked(now time.Time) []string {
	var gone []string
	for id, s := range m.sessions {
		if now.Sub(s.lastUsed) > m.expiry {
			delete(m.sessions, id)
			m.tombstones[id] = true
			m.expired.Add(1)
			gone = append(gone, id)
		}
	}
	if len(gone) > 0 {
		m.active.Set(int64(len(m.sessions)))
	}
	return gone
}

// oldestExpiryLocked estimates when the next session will free a slot.
func (m *Manager) oldestExpiryLocked(now time.Time) time.Duration {
	best := m.expiry
	for _, s := range m.sessions {
		if left := s.lastUsed.Add(m.expiry).Sub(now); left < best {
			best = left
		}
	}
	if best < time.Second {
		best = time.Second
	}
	return best
}

func (m *Manager) infoLocked(s *Session) Info {
	return Info{ID: s.ID, Tenant: s.Tenant, CreatedAt: s.CreatedAt,
		LastUsed: s.lastUsed, Runs: s.runs}
}

// LineageNode is one recorded run of a session, JSON-ready.
type LineageNode struct {
	Name      string            `json:"name"`
	Operation string            `json:"operation"`
	Params    map[string]string `json:"params,omitempty"`
	Runs      int               `json:"runs"`
}

// Lineage lists the session's recorded run nodes, oldest-first by
// name. The session's idle timer is touched like any other use.
func (m *Manager) Lineage(id string) ([]LineageNode, error) {
	m.mu.Lock()
	_, err := m.lookupLocked(id)
	m.mu.Unlock()
	if err != nil {
		return nil, err
	}
	children, err := m.sys.Lineage.Children(lineageRoot(id))
	if err != nil {
		return nil, err
	}
	out := make([]LineageNode, 0, len(children))
	for _, name := range children {
		node, err := m.sys.Lineage.Get(name)
		if err != nil {
			continue // raced with a concurrent close
		}
		out = append(out, LineageNode{
			Name:      node.Name,
			Operation: node.Operation,
			Params:    node.Params,
			Runs:      len(node.Runs),
		})
	}
	return out, nil
}

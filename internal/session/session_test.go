package session

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gea/internal/admission"
	"gea/internal/obs"
	"gea/internal/rescache"
	"gea/internal/sagegen"
	"gea/internal/system"
)

// newSessionSystem builds a cached, tenant-governed system over the
// small synthetic corpus. The registry carries the cache.*, tenant.*
// and (via NewManager) session.* series.
func newSessionSystem(t *testing.T) (*system.System, *obs.Registry) {
	t.Helper()
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sys, err := system.New(res.Corpus, system.Options{
		User:        "session-test",
		ResultCache: &rescache.Options{Metrics: reg},
		TenantPolicy: &admission.TenantPolicy{
			Envelope: 1 << 40, // effectively unlimited: lifecycle tests aren't about throttling
			Metrics:  reg,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, reg
}

func counterOf(snap obs.Snapshot, name string) int64 {
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return -1
}

func gaugeOf(snap obs.Snapshot, name string) int64 {
	for _, g := range snap.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return -1
}

// TestSessionLifecycleConformance walks the whole error contract:
// create, duplicate create, get, close, unknown vs expired reads.
func TestSessionLifecycleConformance(t *testing.T) {
	sys, reg := newSessionSystem(t)
	m := NewManager(sys, Options{Metrics: reg})

	info, err := m.Create("alpha", "acme")
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "alpha" || info.Tenant != "acme" || info.Runs != 0 {
		t.Fatalf("created info = %+v", info)
	}

	// Double create is a conflict, typed for errors.As.
	_, err = m.Create("alpha", "acme")
	var exists *ErrSessionExists
	if !errors.As(err, &exists) || exists.ID != "alpha" {
		t.Fatalf("duplicate create: err=%v, want *ErrSessionExists{alpha}", err)
	}

	// Unknown reads are 404-shaped, not 410-shaped.
	if _, err := m.Get("ghost"); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("unknown get: err=%v, want ErrSessionUnknown", err)
	}
	if err := m.Close("ghost"); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("unknown close: err=%v, want ErrSessionUnknown", err)
	}

	if got, err := m.Get("alpha"); err != nil || got.ID != "alpha" {
		t.Fatalf("get = %+v, %v", got, err)
	}
	if err := m.Close("alpha"); err != nil {
		t.Fatal(err)
	}
	// Closed IDs answer expired (410), never unknown (404).
	if _, err := m.Get("alpha"); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("closed get: err=%v, want ErrSessionExpired", err)
	}
	if _, err := m.Lineage("alpha"); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("closed lineage: err=%v, want ErrSessionExpired", err)
	}
	if m.Active() != 0 {
		t.Fatalf("active = %d after close, want 0", m.Active())
	}

	snap := reg.Snapshot()
	if got := counterOf(snap, "session.created"); got != 1 {
		t.Errorf("session.created = %d, want 1", got)
	}
	if got := counterOf(snap, "session.closed"); got != 1 {
		t.Errorf("session.closed = %d, want 1", got)
	}
	if got := gaugeOf(snap, "session.active"); got != 0 {
		t.Errorf("session.active = %d, want 0", got)
	}
}

// TestSessionGeneratedIDs pins that empty IDs get distinct generated
// names.
func TestSessionGeneratedIDs(t *testing.T) {
	sys, _ := newSessionSystem(t)
	m := NewManager(sys, Options{})
	a, err := m.Create("", "t1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Create("", "t2")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == "" || b.ID == "" || a.ID == b.ID {
		t.Fatalf("generated IDs %q, %q must be distinct and non-empty", a.ID, b.ID)
	}
	if !strings.HasPrefix(a.ID, "s") {
		t.Errorf("generated ID %q not in the s<N> namespace", a.ID)
	}
}

// TestSessionExpiryAndRecreate drives the idle clock: an over-idle
// session expires typed, its ID can be re-created (tombstone released),
// and a touch resets the timer.
func TestSessionExpiryAndRecreate(t *testing.T) {
	sys, reg := newSessionSystem(t)
	at := time.Unix(1000, 0)
	clock := func() time.Time { return at }
	m := NewManager(sys, Options{Expiry: time.Minute, Metrics: reg, Clock: clock})

	if _, err := m.Create("idle", "acme"); err != nil {
		t.Fatal(err)
	}
	// A touch inside the window keeps it alive past the original deadline.
	at = at.Add(45 * time.Second)
	if _, err := m.Get("idle"); err != nil {
		t.Fatalf("in-window get: %v", err)
	}
	at = at.Add(45 * time.Second)
	if _, err := m.Get("idle"); err != nil {
		t.Fatalf("touched session expired early: %v", err)
	}

	// Now let it rot past the whole window.
	at = at.Add(2 * time.Minute)
	if _, err := m.Get("idle"); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("expired get: err=%v, want ErrSessionExpired", err)
	}
	if got := counterOf(reg.Snapshot(), "session.expired"); got != 1 {
		t.Errorf("session.expired = %d, want 1", got)
	}

	// The ID is reusable after expiry.
	if _, err := m.Create("idle", "acme"); err != nil {
		t.Fatalf("recreate expired ID: %v", err)
	}
	if _, err := m.Get("idle"); err != nil {
		t.Fatalf("recreated session get: %v", err)
	}

	// Sweep expires in bulk.
	at = at.Add(2 * time.Minute)
	if n := m.Sweep(); n != 1 {
		t.Fatalf("Sweep() = %d, want 1", n)
	}
	if m.Active() != 0 {
		t.Fatalf("active = %d after sweep, want 0", m.Active())
	}
}

// TestSessionTableFullOverload pins the 503 path: creation past
// MaxSessions fails with *admission.ErrOverload carrying a positive
// Retry-After estimate.
func TestSessionTableFullOverload(t *testing.T) {
	sys, _ := newSessionSystem(t)
	m := NewManager(sys, Options{MaxSessions: 2})
	for _, id := range []string{"a", "b"} {
		if _, err := m.Create(id, ""); err != nil {
			t.Fatal(err)
		}
	}
	_, err := m.Create("c", "")
	var over *admission.ErrOverload
	if !errors.As(err, &over) {
		t.Fatalf("full table: err=%v, want *admission.ErrOverload", err)
	}
	if over.RetryAfter <= 0 {
		t.Errorf("overload RetryAfter = %v, want > 0", over.RetryAfter)
	}
	// Freeing a slot makes creation work again.
	if err := m.Close("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("c", ""); err != nil {
		t.Fatalf("create after close: %v", err)
	}
}

// TestSessionRunRejectsBadParams pins that caller faults come back as
// *ParamError (the serve layer's 400) before any compute is admitted.
func TestSessionRunRejectsBadParams(t *testing.T) {
	sys, _ := newSessionSystem(t)
	m := NewManager(sys, Options{})
	if _, err := m.Create("s", ""); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown op", Request{Op: "transmogrify"}},
		{"bad int", Request{Op: "mine", Params: map[string]string{"k": "many"}}},
		{"bad float", Request{Op: "select", Params: map[string]string{"minmean": "lots"}}},
		{"bad algorithm", Request{Op: "mine", Params: map[string]string{"algorithm": "quantum"}}},
		{"diff same tissue", Request{Op: "diff", Params: map[string]string{"a": "brain", "b": "brain"}}},
		{"topgap missing tissue", Request{Op: "topgap", Params: map[string]string{"a": "brain"}}},
		{"topgap zero x", Request{Op: "topgap", Params: map[string]string{"a": "brain", "b": "breast", "x": "0"}}},
		{"inverted range", Request{Op: "rangesearch", Params: map[string]string{"lo": "9", "hi": "1"}}},
		{"populate no tissue", Request{Op: "populate"}},
		{"unknown tissue", Request{Op: "aggregate", Params: map[string]string{"tissue": "gills"}}},
	}
	for _, tc := range cases {
		_, err := m.Run(ctx, "s", tc.req)
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Errorf("%s: err=%v, want *ParamError", tc.name, err)
		}
	}
	// Runs against dead sessions fail typed before touching the op table.
	if _, err := m.Run(ctx, "nope", Request{Op: "aggregate"}); !errors.Is(err, ErrSessionUnknown) {
		t.Errorf("run on unknown session: err=%v, want ErrSessionUnknown", err)
	}
}

// TestSessionRunRecordsLineage pins the provenance contract: every run
// hangs a node off the session's lineage root, repeated identical runs
// reuse their node, and closing the session cascades the subtree away.
func TestSessionRunRecordsLineage(t *testing.T) {
	sys, reg := newSessionSystem(t)
	m := NewManager(sys, Options{Metrics: reg})
	if _, err := m.Create("prov", "acme"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := Request{Op: "aggregate", Params: map[string]string{"tissue": "brain"}}
	r1, err := m.Run(ctx, "prov", req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Source != "computed" || r1.Cached {
		t.Fatalf("first run source = %q cached=%v, want computed/false", r1.Source, r1.Cached)
	}
	r2, err := m.Run(ctx, "prov", req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Source != "hit" || !r2.Cached {
		t.Fatalf("second run source = %q cached=%v, want hit/true", r2.Source, r2.Cached)
	}
	if r1.Node == r2.Node {
		t.Fatalf("run nodes must be distinct per invocation, both %q", r1.Node)
	}
	if !strings.HasPrefix(r1.Node, "session/prov/aggregate#") {
		t.Fatalf("node %q not under the session lineage root", r1.Node)
	}

	nodes, err := m.Lineage("prov")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("lineage lists %d nodes, want 2: %+v", len(nodes), nodes)
	}
	for _, n := range nodes {
		if n.Operation != "aggregate" {
			t.Errorf("node %s operation = %q", n.Name, n.Operation)
		}
	}

	info, err := m.Get("prov")
	if err != nil {
		t.Fatal(err)
	}
	if info.Runs != 2 {
		t.Errorf("info.Runs = %d, want 2", info.Runs)
	}
	if got := counterOf(reg.Snapshot(), "session.runs"); got != 2 {
		t.Errorf("session.runs = %d, want 2", got)
	}

	// Close cascades the subtree: the root and both run nodes vanish.
	if err := m.Close("prov"); err != nil {
		t.Fatal(err)
	}
	if sys.Lineage.Has("session/prov") {
		t.Error("session lineage root survived Close")
	}
	for _, n := range nodes {
		if sys.Lineage.Has(n.Name) {
			t.Errorf("run node %s survived Close", n.Name)
		}
	}
}

// Package stats provides the small statistical toolkit the GEA depends on:
// moments, medians, Pearson correlation (the distance function used by the
// clustering baselines), histogram entropy (used to rank tags for index
// selection, Section 3.3.2 of the thesis), and exact binomial tail
// probabilities computed in log space (used to reproduce Table 3.1).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one observation.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 if xs has fewer than
// one element. The GEA follows the thesis in using population (not sample)
// moments: a SUMY table summarizes the whole cluster, not a sample of it.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanStd returns the mean and population standard deviation in one pass.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	n := float64(len(xs))
	mean = sum / n
	v := sumSq/n - mean*mean
	if v < 0 { // guard against tiny negative values from roundoff
		v = 0
	}
	return mean, math.Sqrt(v)
}

// MinMax returns the minimum and maximum of xs. It returns ErrEmpty when xs
// is empty.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Median returns the median of xs without modifying it. It returns ErrEmpty
// when xs is empty. Cost is O(n log n); the thesis cites exactly this as the
// example of an aggregate that is more expensive than one-pass range/mean.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2], nil
	}
	return (cp[n/2-1] + cp[n/2]) / 2, nil
}

// Pearson returns the Pearson correlation coefficient of xs and ys. It
// returns 0 when either vector is constant (zero variance) and an error when
// the lengths differ or the vectors are empty.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Pearson length mismatch")
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// CorrelationDistance returns 1 - Pearson(xs, ys), the distance function used
// by Eisen et al. and by the OPTICS study of Ng et al. on SAGE data.
func CorrelationDistance(xs, ys []float64) (float64, error) {
	r, err := Pearson(xs, ys)
	if err != nil {
		return 0, err
	}
	return 1 - r, nil
}

// Euclidean returns the Euclidean distance between xs and ys.
func Euclidean(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Euclidean length mismatch")
	}
	var ss float64
	for i := range xs {
		d := xs[i] - ys[i]
		ss += d * d
	}
	return math.Sqrt(ss), nil
}

// Entropy returns the Shannon entropy (in bits) of the empirical distribution
// obtained by bucketing xs into bins equal-width bins over [min, max]. A
// constant vector has entropy 0. The thesis's index-selection heuristic picks
// the tags with the highest entropy ("highest variation").
func Entropy(xs []float64, bins int) float64 {
	if len(xs) == 0 || bins <= 0 {
		return 0
	}
	min, max, _ := MinMax(xs)
	if min == max {
		return 0
	}
	counts := make([]int, bins)
	width := (max - min) / float64(bins)
	for _, x := range xs {
		b := int((x - min) / width)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	n := float64(len(xs))
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// logChoose returns ln C(n, k) computed via lgamma, valid for large n.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p), computed in log space
// so that it remains accurate for the large n (tens of thousands of tags)
// that the index-selection analysis of Section 3.3.2 requires.
func BinomialPMF(n, k int, p float64) float64 {
	if p < 0 || p > 1 || k < 0 || k > n {
		return 0
	}
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}

// BinomialCDF returns P(X <= k) for X ~ Binomial(n, p).
func BinomialCDF(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	var sum float64
	for i := 0; i <= k; i++ {
		sum += BinomialPMF(n, i, p)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// BinomialTailAtLeast returns P(X >= k) for X ~ Binomial(n, p).
func BinomialTailAtLeast(n, k int, p float64) float64 {
	return 1 - BinomialCDF(n, k-1, p)
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, 2, -4, 4}, 0},
		{"fractional", []float64{0.5, 1.5, 2.5}, 1.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance(single) = %v, want 0", got)
	}
}

func TestMeanStdMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
		}
		m, s := MeanStd(xs)
		if !almostEqual(m, Mean(xs), 1e-8) {
			t.Fatalf("MeanStd mean mismatch: %v vs %v", m, Mean(xs))
		}
		if !almostEqual(s, StdDev(xs), 1e-6) {
			t.Fatalf("MeanStd std mismatch: %v vs %v", s, StdDev(xs))
		}
	}
}

func TestMeanStdEmpty(t *testing.T) {
	m, s := MeanStd(nil)
	if m != 0 || s != 0 {
		t.Errorf("MeanStd(nil) = %v, %v; want 0, 0", m, s)
	}
}

func TestMinMax(t *testing.T) {
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v, %v; want -1, 7", min, max)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"odd", []float64{5, 1, 3}, 3},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"single", []float64{9}, 9},
		{"repeated", []float64{2, 2, 2, 2}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Median(tt.in)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Median(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Errorf("Median(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{9, 1, 5}
	if _, err := Median(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yUp := []float64{2, 4, 6, 8, 10}
	yDown := []float64{10, 8, 6, 4, 2}
	if r, _ := Pearson(x, yUp); !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson up = %v, want 1", r)
	}
	if r, _ := Pearson(x, yDown); !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson down = %v, want -1", r)
	}
	if r, _ := Pearson(x, []float64{3, 3, 3, 3, 3}); r != 0 {
		t.Errorf("Pearson constant = %v, want 0", r)
	}
	if _, err := Pearson(x, []float64{1}); err == nil {
		t.Error("Pearson length mismatch: expected error")
	}
	if _, err := Pearson(nil, nil); err != ErrEmpty {
		t.Errorf("Pearson empty err = %v, want ErrEmpty", err)
	}
}

func TestCorrelationDistance(t *testing.T) {
	x := []float64{1, 2, 3}
	d, err := CorrelationDistance(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0, 1e-12) {
		t.Errorf("self correlation distance = %v, want 0", d)
	}
}

func TestEuclidean(t *testing.T) {
	d, err := Euclidean([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 5, 1e-12) {
		t.Errorf("Euclidean = %v, want 5", d)
	}
	if _, err := Euclidean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Euclidean length mismatch: expected error")
	}
}

func TestEntropy(t *testing.T) {
	// A constant vector carries no information.
	if h := Entropy([]float64{5, 5, 5, 5}, 10); h != 0 {
		t.Errorf("Entropy(constant) = %v, want 0", h)
	}
	// Two equally-sized buckets -> 1 bit.
	h := Entropy([]float64{0, 0, 10, 10}, 2)
	if !almostEqual(h, 1, 1e-12) {
		t.Errorf("Entropy(two buckets) = %v, want 1", h)
	}
	// More spread values have at least as much entropy as concentrated ones.
	concentrated := []float64{0, 0, 0, 0, 0, 0, 0, 10}
	spread := []float64{0, 1.5, 3, 4.5, 6, 7.5, 9, 10}
	if Entropy(spread, 8) <= Entropy(concentrated, 8) {
		t.Error("spread data should have higher entropy than concentrated data")
	}
	if h := Entropy(nil, 4); h != 0 {
		t.Errorf("Entropy(nil) = %v, want 0", h)
	}
	if h := Entropy([]float64{1, 2}, 0); h != 0 {
		t.Errorf("Entropy(bins=0) = %v, want 0", h)
	}
}

func TestEntropyBounded(t *testing.T) {
	// Property: 0 <= entropy <= log2(bins).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		bins := 1 + rng.Intn(32)
		h := Entropy(xs, bins)
		return h >= 0 && h <= math.Log2(float64(bins))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 20, 100} {
		for _, p := range []float64{0.01, 0.3, 0.5, 0.99} {
			var sum float64
			for k := 0; k <= n; k++ {
				sum += BinomialPMF(n, k, p)
			}
			if !almostEqual(sum, 1, 1e-9) {
				t.Errorf("PMF(n=%d,p=%v) sums to %v", n, p, sum)
			}
		}
	}
}

func TestBinomialPMFEdgeCases(t *testing.T) {
	if got := BinomialPMF(10, 0, 0); got != 1 {
		t.Errorf("PMF(10,0,p=0) = %v, want 1", got)
	}
	if got := BinomialPMF(10, 3, 0); got != 0 {
		t.Errorf("PMF(10,3,p=0) = %v, want 0", got)
	}
	if got := BinomialPMF(10, 10, 1); got != 1 {
		t.Errorf("PMF(10,10,p=1) = %v, want 1", got)
	}
	if got := BinomialPMF(10, 4, 1); got != 0 {
		t.Errorf("PMF(10,4,p=1) = %v, want 0", got)
	}
	if got := BinomialPMF(10, -1, 0.5); got != 0 {
		t.Errorf("PMF(k=-1) = %v, want 0", got)
	}
	if got := BinomialPMF(10, 11, 0.5); got != 0 {
		t.Errorf("PMF(k>n) = %v, want 0", got)
	}
}

func TestBinomialPMFKnownValues(t *testing.T) {
	// Binomial(4, 0.5): P(X=2) = 6/16.
	if got := BinomialPMF(4, 2, 0.5); !almostEqual(got, 0.375, 1e-12) {
		t.Errorf("PMF(4,2,0.5) = %v, want 0.375", got)
	}
	// P(X=0) for Binomial(25000, 17/60000) matches the closed form of the
	// thesis's index-miss probability.
	p := 17.0 / 60000.0
	want := math.Exp(25000 * math.Log1p(-p))
	if got := BinomialPMF(25000, 0, p); !almostEqual(got, want, 1e-12) {
		t.Errorf("PMF(25000,0,...) = %v, want %v", got, want)
	}
}

func TestBinomialCDFAndTail(t *testing.T) {
	n, p := 20, 0.3
	for k := -1; k <= n+1; k++ {
		cdf := BinomialCDF(n, k, p)
		tail := BinomialTailAtLeast(n, k+1, p)
		if !almostEqual(cdf+tail, 1, 1e-9) {
			t.Errorf("CDF(%d)+Tail(%d) = %v, want 1", k, k+1, cdf+tail)
		}
	}
	if got := BinomialCDF(10, -1, 0.5); got != 0 {
		t.Errorf("CDF(k<0) = %v, want 0", got)
	}
	if got := BinomialCDF(10, 10, 0.5); got != 1 {
		t.Errorf("CDF(k=n) = %v, want 1", got)
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		p := rng.Float64()
		prev := -1.0
		for k := 0; k <= n; k++ {
			c := BinomialCDF(n, k, p)
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Package system assembles the GEA: the cleaned dataset, the algebraic core,
// the relational catalog of thesis Appendix IV, the lineage graph, the user
// store and the auxiliary gene databases, behind a session API that mirrors
// the case-study workflow (create tissue data set -> generate metadata ->
// calculate fascicles -> purity check -> form SUMY tables -> create GAP ->
// top gaps -> compare). It also implements the usability checks of Section
// 4.4.5: redundancy checks before overwriting and confirmation results after
// destructive operations.
package system

import (
	"fmt"

	"gea/internal/relational"
	"gea/internal/sage"
)

// Catalog table names, following Appendix IV.
const (
	TblCDInfo         = "CDInfo"
	TblFasFile        = "FasFile"
	TblFasInfo        = "FasInfo"
	TblFasLib         = "fasLib"
	TblGapInfo        = "GapInfo"
	TblGapCompInfo    = "GapCompInfo"
	TblLibraries      = "Libraries"
	TblSageInfo       = "SageInfo"
	TblSumInfo        = "SumInfo"
	TblSumLib         = "SumLib"
	TblSysConfig      = "SysConfig"
	TblTopRec         = "TopRec"
	TblTypeInfo       = "TypeInfo"
	TblTypeCreateInfo = "TypeCreateInfo"
)

// initCatalog creates the Appendix IV relations in the store.
func initCatalog(s *relational.Store) error {
	specs := []struct {
		name   string
		schema relational.Schema
	}{
		// CDInfo: compact-dimension threshold per tissue type.
		{TblCDInfo, relational.Schema{
			{Name: "Type", Kind: relational.KindString},
			{Name: "Threshold", Kind: relational.KindInt},
		}},
		// FasFile: every fascicle run and its parameters.
		{TblFasFile, relational.Schema{
			{Name: "UserName", Kind: relational.KindString},
			{Name: "FasName", Kind: relational.KindString},
			{Name: "Type", Kind: relational.KindString},
			{Name: "FasCD", Kind: relational.KindInt},
			{Name: "FasBinary", Kind: relational.KindString},
			{Name: "FasMeta", Kind: relational.KindString},
			{Name: "FasBatch", Kind: relational.KindInt},
			{Name: "FasMin", Kind: relational.KindInt},
		}},
		// FasInfo: per-fascicle property (purity) information.
		{TblFasInfo, relational.Schema{
			{Name: "UserName", Kind: relational.KindString},
			{Name: "Fascicle", Kind: relational.KindString},
			{Name: "FasName", Kind: relational.KindString},
			{Name: "Cancer", Kind: relational.KindInt},
			{Name: "Normal", Kind: relational.KindInt},
			{Name: "BulkTissue", Kind: relational.KindInt},
			{Name: "CellLine", Kind: relational.KindInt},
		}},
		// fasLib: fascicle membership.
		{TblFasLib, relational.Schema{
			{Name: "UserName", Kind: relational.KindString},
			{Name: "Fascicle", Kind: relational.KindString},
			{Name: "LibID", Kind: relational.KindInt},
		}},
		// GapInfo: gap tables and their source summaries.
		{TblGapInfo, relational.Schema{
			{Name: "UserName", Kind: relational.KindString},
			{Name: "GapName", Kind: relational.KindString},
			{Name: "Type", Kind: relational.KindString},
			{Name: "Flag", Kind: relational.KindInt},
			{Name: "Sum1", Kind: relational.KindString},
			{Name: "Sum2", Kind: relational.KindString},
		}},
		// GapCompInfo: gap comparisons.
		{TblGapCompInfo, relational.Schema{
			{Name: "UserName", Kind: relational.KindString},
			{Name: "CompFile", Kind: relational.KindString},
			{Name: "Type", Kind: relational.KindString},
			{Name: "Gap1", Kind: relational.KindString},
			{Name: "Gap2", Kind: relational.KindString},
			{Name: "CompType", Kind: relational.KindString},
		}},
		// Libraries: the library metadata relation.
		{TblLibraries, relational.Schema{
			{Name: "LibID", Kind: relational.KindInt},
			{Name: "LibName", Kind: relational.KindString},
			{Name: "Type", Kind: relational.KindString},
			{Name: "CanNor", Kind: relational.KindInt},
			{Name: "BTCL", Kind: relational.KindInt},
			{Name: "Tag", Kind: relational.KindFloat},
			{Name: "Utag", Kind: relational.KindInt},
		}},
		// SageInfo: corpus-level statistics.
		{TblSageInfo, relational.Schema{
			{Name: "Totag", Kind: relational.KindInt},
			{Name: "ToLib", Kind: relational.KindInt},
		}},
		// SumInfo: summary tables and their category.
		{TblSumInfo, relational.Schema{
			{Name: "UserName", Kind: relational.KindString},
			{Name: "SumTable", Kind: relational.KindString},
			{Name: "Fascicle", Kind: relational.KindString},
			{Name: "Category", Kind: relational.KindString},
			{Name: "Sign", Kind: relational.KindInt},
		}},
		// SumLib: libraries behind each summary.
		{TblSumLib, relational.Schema{
			{Name: "UserName", Kind: relational.KindString},
			{Name: "SumTable", Kind: relational.KindString},
			{Name: "LibID", Kind: relational.KindInt},
		}},
		// SysConfig: DB2 connection settings of the original system.
		{TblSysConfig, relational.Schema{
			{Name: "DB2ID", Kind: relational.KindString},
			{Name: "DB2PWD", Kind: relational.KindString},
			{Name: "DB2DB", Kind: relational.KindString},
			{Name: "DB2PATH", Kind: relational.KindString},
		}},
		// TopRec: top-gap tables.
		{TblTopRec, relational.Schema{
			{Name: "UserName", Kind: relational.KindString},
			{Name: "TopGapFile", Kind: relational.KindString},
			{Name: "GapName", Kind: relational.KindString},
			{Name: "TopNo", Kind: relational.KindInt},
		}},
		// TypeInfo: libraries per tissue type, with order.
		{TblTypeInfo, relational.Schema{
			{Name: "Type", Kind: relational.KindString},
			{Name: "LibID", Kind: relational.KindInt},
			{Name: "Order", Kind: relational.KindInt},
		}},
		// TypeCreateInfo: materialized tissue-type ENUM tables.
		{TblTypeCreateInfo, relational.Schema{
			{Name: "UserName", Kind: relational.KindString},
			{Name: "Type", Kind: relational.KindString},
			{Name: "TableName", Kind: relational.KindString},
			{Name: "Flag", Kind: relational.KindInt},
		}},
	}
	for _, spec := range specs {
		if _, err := s.Create(spec.name, spec.schema); err != nil {
			return fmt.Errorf("system: creating %s: %v", spec.name, err)
		}
	}
	return nil
}

// loadLibrariesRelation fills the Libraries, TypeInfo and SageInfo relations
// from the dataset.
func loadLibrariesRelation(s *relational.Store, d *sage.Dataset) error {
	libs, err := s.Get(TblLibraries)
	if err != nil {
		return err
	}
	typeInfo, err := s.Get(TblTypeInfo)
	if err != nil {
		return err
	}
	order := map[string]int{}
	for i, m := range d.Libs {
		canNor := 0
		if m.State == sage.Cancer {
			canNor = 1
		}
		btcl := 0
		if m.Source == sage.CellLine {
			btcl = 1
		}
		total := m.TotalTags
		unique := m.UniqueTags
		if total == 0 && unique == 0 {
			// Metadata not refreshed; compute from the matrix row.
			for _, v := range d.Expr[i] {
				if v != 0 {
					total += v
					unique++
				}
			}
		}
		if err := libs.Insert(relational.Row{
			relational.I(int64(m.ID)), relational.S(m.Name), relational.S(m.Tissue),
			relational.I(int64(canNor)), relational.I(int64(btcl)),
			relational.F(total), relational.I(int64(unique)),
		}); err != nil {
			return err
		}
		order[m.Tissue]++
		if err := typeInfo.Insert(relational.Row{
			relational.S(m.Tissue), relational.I(int64(m.ID)), relational.I(int64(order[m.Tissue])),
		}); err != nil {
			return err
		}
	}
	sageInfo, err := s.Get(TblSageInfo)
	if err != nil {
		return err
	}
	return sageInfo.Insert(relational.Row{
		relational.I(int64(d.NumTags())), relational.I(int64(d.NumLibraries())),
	})
}

// reloadLibrariesRelation replaces the dataset-derived relations
// (Libraries, TypeInfo, SageInfo) with fresh tables over d — the catalog
// refresh an ingestion commit performs after the dataset grows.
func reloadLibrariesRelation(s *relational.Store, d *sage.Dataset) error {
	for _, name := range []string{TblLibraries, TblTypeInfo, TblSageInfo} {
		t, err := s.Get(name)
		if err != nil {
			return err
		}
		s.Replace(relational.NewTable(name, t.Schema))
	}
	return loadLibrariesRelation(s, d)
}

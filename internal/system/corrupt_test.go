package system

import (
	"os"
	"path/filepath"
	"testing"

	"gea/internal/atomicio"
	"gea/internal/sage"
)

// tinySystem builds the smallest useful session so that byte-level
// corruption sweeps over its files stay fast.
func tinySystem(t *testing.T) *System {
	t.Helper()
	c := &sage.Corpus{}
	mk := func(id int, name string, state sage.NeoplasticState, counts map[string]float64) {
		l := sage.NewLibrary(sage.LibraryMeta{
			ID: id, Name: name, Tissue: "brain", State: state, Source: sage.BulkTissue,
		})
		for s, v := range counts {
			l.Add(sage.MustParseTag(s), v)
		}
		l.RefreshMeta()
		c.Libraries = append(c.Libraries, l)
	}
	mk(1, "B1", sage.Cancer, map[string]float64{"AAAAAAAAAA": 10, "CCCCCCCCCC": 5})
	mk(2, "B2", sage.Cancer, map[string]float64{"AAAAAAAAAA": 8, "GGGGGGGGGG": 4})
	mk(3, "B3", sage.Normal, map[string]float64{"AAAAAAAAAA": 2, "TTTTTTTTTT": 7})
	sys, err := New(c, Options{User: "corrupt-test", SkipCleaning: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateTissueDataset("brain"); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSessionManifestEveryByteFlip corrupts each byte of the saved session
// manifest in turn. Every flip must be caught: the load still succeeds
// (the manifest is salvageable — the corpus, catalog and lineage survive)
// but the damage must be surfaced in the LoadReport, never papered over.
func TestSessionManifestEveryByteFlip(t *testing.T) {
	sys := tinySystem(t)
	dir := filepath.Join(t.TempDir(), "session")
	if err := sys.SaveSession(dir); err != nil {
		t.Fatal(err)
	}
	gen, err := atomicio.CurrentGen(atomicio.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, gen, sessionManifest)
	orig, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	fpClean := loadFingerprint(t, dir, "clean session")

	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0xFF
		if err := os.WriteFile(manifest, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, report, err := LoadSessionFS(atomicio.OS{}, dir, nil, 0)
		if err != nil {
			t.Fatalf("flip of byte %d/%d: load aborted instead of salvaging: %v", i, len(orig), err)
		}
		if report.OK() {
			t.Fatalf("flip of byte %d/%d went undetected", i, len(orig))
		}
		found := false
		for _, p := range report.Problems {
			if p.Artifact == "manifest" {
				found = true
			}
		}
		if !found {
			t.Fatalf("flip of byte %d/%d: report blames %v, not the manifest", i, len(orig), report.Problems)
		}
		// The rest of the session survived the salvage.
		if got.Data.NumLibraries() != 3 {
			t.Fatalf("flip of byte %d/%d: corpus lost in salvage", i, len(orig))
		}
	}

	// Restoring the original bytes restores a clean load.
	if err := os.WriteFile(manifest, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := loadFingerprint(t, dir, "restored session"); got != fpClean {
		t.Error("restored manifest did not load identically")
	}
}

// TestSessionCommitPointerCorruption damages the CURRENT pointer: with no
// way to know which generation is live, the load must refuse loudly.
func TestSessionCommitPointerCorruption(t *testing.T) {
	sys := tinySystem(t)
	dir := filepath.Join(t.TempDir(), "session")
	if err := sys.SaveSession(dir); err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(dir, atomicio.CurrentFile)
	orig, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0xFF
		if err := os.WriteFile(cur, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadSessionFS(atomicio.OS{}, dir, nil, 0); err == nil {
			t.Fatalf("flip of CURRENT byte %d went undetected", i)
		}
	}
}

package system

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gea/internal/admission"
	"gea/internal/core"
	"gea/internal/exec"
	"gea/internal/sage"
)

// Admission-control defaults; see Options.MaxConcurrent,
// Options.MaxQueue and Options.AdmitTimeout.
const (
	DefaultMaxConcurrent = admission.DefaultMaxActive
	DefaultMaxQueue      = admission.DefaultMaxQueue
	DefaultAdmitTimeout  = 10 * time.Second
)

// ErrBusy is returned when a heavy operation could not get an admission
// slot within the session's AdmitTimeout: MaxConcurrent other operations
// were still computing when the caller gave up. Distinct from
// *admission.ErrOverload, which rejects immediately because even the
// wait queue is full.
type ErrBusy struct {
	// Waited is how long the caller queued before giving up.
	Waited time.Duration
	// Position is the 1-based queue position the caller held.
	Position int
	// RetryAfter estimates when a retry might be admitted promptly.
	RetryAfter time.Duration
}

func (e *ErrBusy) Error() string {
	return fmt.Sprintf("system: busy: no admission slot after %v", e.Waited)
}

// initAdmission builds the admission queue from the session options;
// zero fields select the defaults. Called from New and LoadSessionFS (a
// loaded session gets the defaults — admission settings are runtime
// policy, not session state).
func (s *System) initAdmission(opts Options) {
	maxActive := opts.MaxConcurrent
	if maxActive <= 0 {
		maxActive = DefaultMaxConcurrent
	}
	maxQueue := opts.MaxQueue
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue
	}
	admitTimeout := opts.AdmitTimeout
	if admitTimeout <= 0 {
		admitTimeout = DefaultAdmitTimeout
	}
	s.queue = admission.New(admission.Options{
		MaxActive:       maxActive,
		MaxQueue:        maxQueue,
		AdmitTimeout:    admitTimeout,
		DegradeAtDepth:  opts.DegradeAtDepth,
		SaturateAtDepth: opts.SaturateAtDepth,
		DegradeFactor:   opts.DegradeFactor,
		DegradedBudget:  opts.DegradedBudget,
		Metrics:         opts.AdmissionMetrics,
	})
}

// acquire takes an admission slot through the bounded FIFO queue,
// waiting until one frees, the context dies, the admission timeout
// elapses (*ErrBusy), the queue is full (*admission.ErrOverload,
// immediate) or shutdown kicks the waiter. It returns the release
// function on success.
func (s *System) acquire(ctx context.Context) (func(), error) {
	if s.queue == nil {
		// Zero-value or hand-built System: admission control disabled.
		return func() {}, nil
	}
	release, err := s.queue.Acquire(ctx)
	if err != nil {
		var to *admission.ErrTimeout
		if errors.As(err, &to) {
			return nil, &ErrBusy{Waited: to.Waited, Position: to.Position, RetryAfter: to.RetryAfter}
		}
		return nil, err
	}
	return release, nil
}

// Shutdown drains the session for a graceful stop: queued admission
// waiters are kicked with admission.ErrShutdown, new governed calls are
// refused, and the call blocks until every in-flight operation releases
// its slot or ctx dies. In-flight operations are not cancelled here —
// cancel their contexts to hurry them. Idempotent.
func (s *System) Shutdown(ctx context.Context) error {
	if s.queue == nil {
		return nil
	}
	return s.queue.Shutdown(ctx)
}

// AdmissionState reports the queue's load-shedding state.
func (s *System) AdmissionState() admission.State {
	if s.queue == nil {
		return admission.Healthy
	}
	return s.queue.State()
}

// AdmissionStats snapshots the admission queue for health surfaces.
func (s *System) AdmissionStats() admission.Stats {
	if s.queue == nil {
		return admission.Stats{}
	}
	return s.queue.Stats()
}

// ShapeLimits applies the session's worker default and the admission
// queue's load-shedding policy to a request's limits, reporting the
// state that applied: under Degraded or Saturated the budget shrinks so
// the request returns a flagged partial instead of holding a slot until
// it times out.
func (s *System) ShapeLimits(lim exec.Limits) (exec.Limits, admission.State) {
	lim = s.limits(lim)
	if s.queue == nil {
		return lim, admission.Healthy
	}
	return s.queue.Shape(lim)
}

// limits applies the session's worker default to a caller's Limits: an
// explicit Workers setting wins, otherwise Options.Workers fills it in.
// The budget and cadence pass through untouched.
func (s *System) limits(lim exec.Limits) exec.Limits {
	if lim.Workers == 0 {
		lim.Workers = s.workers
	}
	return lim
}

// background builds the unbudgeted Ctl the legacy (non-Ctx) methods run
// under, carrying the session's worker default so they too evaluate
// through the sharded substrate.
func (s *System) background() *exec.Ctl {
	return exec.New(context.Background(), exec.Limits{Workers: s.workers})
}

// CalculateFasciclesCtx is CalculateFascicles under execution governance:
// the call queues for an admission slot, the mining observes ctx
// cancellation and the work budget in lim, a budget stop registers the
// fascicles found so far (trace flagged partial, lineage annotated), and
// panics surface as structured *exec.ExecErrors.
func (s *System) CalculateFasciclesCtx(ctx context.Context, datasetName string, opts FascicleOptions, lim exec.Limits) ([]string, exec.Trace, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, exec.Trace{}, err
	}
	defer release()
	c := exec.New(ctx, s.limits(lim))
	names, partial, err := s.calculateFascicles(c, datasetName, opts)
	if err != nil {
		names = nil
	}
	s.attachRuns(c, names...)
	return names, c.Snapshot(partial), err
}

// attachRuns links the invocation's completed run record (if a collector
// was installed on the context) to the lineage nodes it produced, so
// provenance and performance live on one tree. Best-effort: a node that
// vanished in a concurrent delete just drops the record.
func (s *System) attachRuns(c *exec.Ctl, names ...string) {
	rec := c.RunRecord()
	if rec == nil {
		return
	}
	//lint:gea ctlcharge -- O(results) lineage bookkeeping after the metered run has already ended; the Ctl is only read for its record
	for _, n := range names {
		if n == "" {
			continue
		}
		_ = s.Lineage.AttachRun(n, rec)
	}
}

// FindPureFascicleCtx is FindPureFascicle under execution governance with
// the default lattice miner.
func (s *System) FindPureFascicleCtx(ctx context.Context, datasetName string, prop sage.Property, minSize int, lim exec.Limits) (string, exec.Trace, error) {
	return s.FindPureFascicleWithCtx(ctx, datasetName, prop, minSize, core.LatticeAlgorithm, lim)
}

// FindPureFascicleWithCtx is FindPureFascicleWith under execution
// governance. One admission slot and one work budget span the entire
// strict-to-loose threshold scan. A search yields a single name, so budget
// exhaustion before success is an error (satisfying
// errors.Is(err, exec.ErrBudget)) rather than a partial result.
func (s *System) FindPureFascicleWithCtx(ctx context.Context, datasetName string, prop sage.Property, minSize int, alg core.Algorithm, lim exec.Limits) (string, exec.Trace, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return "", exec.Trace{}, err
	}
	defer release()
	c := exec.New(ctx, s.limits(lim))
	name, partial, err := s.findPureFascicle(c, datasetName, prop, minSize, alg)
	if err != nil {
		name = ""
	}
	s.attachRuns(c, name)
	return name, c.Snapshot(partial), err
}

// CreateGapCtx is CreateGap under execution governance: the diff queues
// for an admission slot, observes cancellation and the work budget, and a
// budget stop registers the rows diffed so far (trace flagged partial,
// lineage annotated).
func (s *System) CreateGapCtx(ctx context.Context, name, sumy1, sumy2 string, lim exec.Limits) (*core.Gap, exec.Trace, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, exec.Trace{}, err
	}
	defer release()
	c := exec.New(ctx, s.limits(lim))
	g, partial, err := s.createGap(c, name, sumy1, sumy2)
	if err != nil {
		g = nil
	}
	s.attachRuns(c, name)
	return g, c.Snapshot(partial), err
}

package system

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gea/internal/core"
	"gea/internal/exec"
	"gea/internal/exec/execwalk"
	"gea/internal/sage"
	"gea/internal/sagegen"
)

// newExecSystem builds a session with brain metadata ready for mining.
func newExecSystem(t *testing.T) *System {
	t.Helper()
	sys, _ := newSystem(t)
	if _, err := sys.CreateTissueDataset("brain"); err != nil {
		t.Fatal(err)
	}
	if err := sys.GenerateMetadata("brain", 10); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCalculateFasciclesCheckpointWalk(t *testing.T) {
	sys := newExecSystem(t)
	d, err := sys.Dataset("brain")
	if err != nil {
		t.Fatal(err)
	}
	opts := FascicleOptions{
		K: d.NumTags() * 60 / 100, MinSize: 3, Algorithm: core.GreedyAlgorithm,
	}
	execwalk.Walk(t, execwalk.Target{
		Name: "CalculateFascicles",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := sys.CalculateFasciclesCtx(ctx, "brain", opts, lim)
			return tr, err
		},
		MaxProbes: 8,
	})
}

func TestCreateGapCheckpointWalk(t *testing.T) {
	sys, _ := newSystem(t)
	groups, _ := runBrainPipeline(t, sys)
	var n int64
	execwalk.Walk(t, execwalk.Target{
		Name: "CreateGap",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			name := fmt.Sprintf("walkgap_%d", atomic.AddInt64(&n, 1))
			_, tr, err := sys.CreateGapCtx(ctx, name, groups.InFascicle, groups.Opposite, lim)
			return tr, err
		},
		MaxProbes:   8,
		MaxUnitStep: 1,
	})
}

// TestFindPureFascicleBudget exercises the one operator whose result is a
// single name: budget exhaustion before success must surface as an error
// satisfying errors.Is(err, exec.ErrBudget), never a silent miss.
func TestFindPureFascicleBudget(t *testing.T) {
	sys := newExecSystem(t)
	_, tr, err := sys.FindPureFascicleWithCtx(context.Background(), "brain", sage.PropCancer, 3,
		core.LatticeAlgorithm, exec.Limits{Budget: 3})
	if !errors.Is(err, exec.ErrBudget) {
		t.Fatalf("budget 3: got %v, want exec.ErrBudget", err)
	}
	if !tr.Partial {
		t.Fatalf("budget 3: trace not flagged partial: %+v", tr)
	}

	// With no limits the search succeeds and matches the legacy path.
	name, tr, err := sys.FindPureFascicleCtx(context.Background(), "brain", sage.PropCancer, 3, exec.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if name == "" || tr.Partial {
		t.Fatalf("unbounded search: name %q, trace %+v", name, tr)
	}
	legacy, err := sys.FindPureFascicle("brain", sage.PropCancer, 3)
	if err != nil {
		t.Fatal(err)
	}
	if legacy != name {
		t.Fatalf("legacy found %q, governed found %q", legacy, name)
	}
}

// TestFindPureFascicleCancel proves cancellation propagates out of the
// composite search as a context error wrapped in a structured ExecError.
func TestFindPureFascicleCancel(t *testing.T) {
	sys := newExecSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	ctx = exec.WithHook(ctx, func(nth int64) {
		if nth == 3 {
			cancel()
		}
	})
	_, _, err := sys.FindPureFascicleWithCtx(ctx, "brain", sage.PropCancer, 3,
		core.LatticeAlgorithm, exec.Limits{CheckEvery: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	var ee *exec.ExecError
	if !errors.As(err, &ee) || ee.Op != "system.CalculateFascicles" {
		t.Fatalf("got %v, want *ExecError from system.CalculateFascicles", err)
	}
}

// TestSystemPanicIsolation proves a panic inside a governed operation is
// recovered into a structured ExecError instead of crashing the session,
// and the session stays usable afterwards.
func TestSystemPanicIsolation(t *testing.T) {
	sys := newExecSystem(t)
	ctx := exec.WithHook(context.Background(), func(nth int64) {
		if nth == 2 {
			panic("induced fault")
		}
	})
	_, _, err := sys.CalculateFasciclesCtx(ctx, "brain",
		FascicleOptions{K: 10, MinSize: 3, Algorithm: core.GreedyAlgorithm},
		exec.Limits{CheckEvery: 1})
	var ee *exec.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("got %v, want *ExecError", err)
	}
	if ee.Op != "system.CalculateFascicles" || ee.PanicValue != "induced fault" || len(ee.Stack) == 0 {
		t.Fatalf("ExecError missing detail: %+v", ee)
	}
	// The session survived: the same operation succeeds cleanly.
	if _, _, err := sys.CalculateFasciclesCtx(context.Background(), "brain",
		FascicleOptions{K: 10, MinSize: 3, Algorithm: core.GreedyAlgorithm}, exec.Limits{}); err != nil {
		t.Fatalf("session unusable after recovered panic: %v", err)
	}
}

// TestAdmissionTimeout holds the only admission slot with a blocked
// operation and checks a second caller gives up with *ErrBusy, while a
// third with a cancelled context gets the context error.
func TestAdmissionTimeout(t *testing.T) {
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(res.Corpus, Options{MaxConcurrent: 1, AdmitTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateTissueDataset("brain"); err != nil {
		t.Fatal(err)
	}
	if err := sys.GenerateMetadata("brain", 10); err != nil {
		t.Fatal(err)
	}

	hold := make(chan struct{})
	entered := make(chan struct{})
	var enterOnce sync.Once
	ctx := exec.WithHook(context.Background(), func(nth int64) {
		enterOnce.Do(func() { close(entered) })
		<-hold
	})
	done := make(chan error, 1)
	go func() {
		_, _, err := sys.CalculateFasciclesCtx(ctx, "brain",
			FascicleOptions{K: 10, MinSize: 3, Algorithm: core.GreedyAlgorithm},
			exec.Limits{CheckEvery: 1})
		done <- err
	}()
	<-entered // the slot is now held inside the mining loop

	_, _, err = sys.CalculateFasciclesCtx(context.Background(), "brain",
		FascicleOptions{K: 10, MinSize: 3, Algorithm: core.GreedyAlgorithm}, exec.Limits{})
	var busy *ErrBusy
	if !errors.As(err, &busy) {
		t.Fatalf("second caller: got %v, want *ErrBusy", err)
	}
	if busy.Waited < 50*time.Millisecond {
		t.Fatalf("ErrBusy.Waited = %v, want >= AdmitTimeout", busy.Waited)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sys.CalculateFasciclesCtx(cancelled, "brain",
		FascicleOptions{K: 10, MinSize: 3, Algorithm: core.GreedyAlgorithm}, exec.Limits{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller: got %v, want context.Canceled", err)
	}

	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("holder failed: %v", err)
	}
}

// TestConcurrentSystemOps hammers one session from many goroutines —
// mining, reads, listings and saves — and relies on the race detector (the
// CI suite runs with -race) to prove the registry lock and admission
// semaphore make the session safe for concurrent use.
func TestConcurrentSystemOps(t *testing.T) {
	sys := newExecSystem(t)
	dir := t.TempDir()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				_, _, err := sys.CalculateFasciclesCtx(context.Background(), "brain",
					FascicleOptions{K: 10, MinSize: 3, Algorithm: core.GreedyAlgorithm}, exec.Limits{})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			sys.TissueTypes()
			if _, err := sys.ListSumys(""); err != nil {
				errs <- err
				return
			}
			_, _ = sys.Fascicle("nope")
			_, _ = sys.Dataset("brain")
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := sys.SaveSession(dir); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The saved snapshot is loadable whichever interleaving won.
	loaded, err := LoadSession(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.LoadReport.OK() {
		t.Fatalf("concurrent save left a damaged session: %v", loaded.LoadReport)
	}
}

package system

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"gea/internal/atomicio"
	"gea/internal/iofault"
	"gea/internal/sage"
)

// sessionFingerprint canonicalizes everything LoadSession restores, so two
// sessions can be compared for whole-state equality.
func sessionFingerprint(s *System) string {
	var b strings.Builder
	fmt.Fprintf(&b, "user=%s\n", s.User)
	fmt.Fprintf(&b, "data=%dx%d\n", s.Data.NumLibraries(), s.Data.NumTags())

	var names []string
	for name := range s.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := s.datasets[name]
		libs := make([]string, len(d.Libs))
		for i, m := range d.Libs {
			libs[i] = m.Name
		}
		fmt.Fprintf(&b, "dataset %s: %v\n", name, libs)
	}

	names = names[:0]
	for name := range s.tolerances {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "tolerance %s: %d entries\n", name, len(s.tolerances[name]))
	}

	names = names[:0]
	for name := range s.sumys {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sm := s.sumys[name]
		fmt.Fprintf(&b, "sumy %s: %d rows %v\n", name, len(sm.Rows), sm.ExtraCols)
	}

	names = names[:0]
	for name := range s.gaps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := s.gaps[name]
		fmt.Fprintf(&b, "gap %s: %d rows %v\n", name, len(g.Rows), g.Cols)
	}

	names = names[:0]
	for name := range s.enums {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := s.enums[name]
		fmt.Fprintf(&b, "enum %s: rows=%v cols=%v\n", name, e.Rows, e.Cols)
	}

	names = names[:0]
	for name := range s.fascicles {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := s.fascicles[name]
		fmt.Fprintf(&b, "fascicle %s: rows=%v compact=%d\n", name, f.Fascicle.Rows, f.Fascicle.NumCompact())
	}

	fmt.Fprintf(&b, "lineage=%v\n", s.Lineage.Names())
	fmt.Fprintf(&b, "runCount=%d foundPure=%d\n", len(s.runCount), len(s.foundPure))
	return b.String()
}

func copySessionTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copy %s -> %s: %v", src, dst, err)
	}
}

// loadFingerprint loads the session at dir, requiring a clean report, and
// returns its fingerprint.
func loadFingerprint(t *testing.T, dir, label string) string {
	t.Helper()
	sys, report, err := LoadSessionFS(atomicio.OS{}, dir, nil, 0)
	if err != nil {
		t.Fatalf("%s: load failed: %v", label, err)
	}
	if !report.OK() {
		t.Fatalf("%s: load needed salvage:\n%s", label, report)
	}
	return sessionFingerprint(sys)
}

// TestSaveSessionCrashWalk is the acceptance test for the whole persistence
// stack: it enumerates every write, sync and rename SaveSession issues —
// through the nested corpus store, the catalog, the lineage graph, the
// manifest and both commit pointers — and for a crash injected at each one
// diffs the subsequently loaded session against the complete old state and
// the complete new state. Anything else (a torn mix, or a load needing
// salvage) fails.
func TestSaveSessionCrashWalk(t *testing.T) {
	sys, _ := newSystem(t)
	if _, err := sys.CreateTissueDataset("brain"); err != nil {
		t.Fatal(err)
	}
	if err := sys.GenerateMetadata("brain", 10); err != nil {
		t.Fatal(err)
	}
	seed := filepath.Join(t.TempDir(), "session")
	if err := sys.SaveSession(seed); err != nil {
		t.Fatal(err)
	}
	fpOld := loadFingerprint(t, seed, "old session")

	// Grow the session: pure-fascicle search, SUMY, GAP, top-gap table.
	pure, err := sys.FindPureFascicle("brain", sage.PropCancer, 3)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := sys.FormSUM(pure, "brain")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateGap("brain_gap", groups.InFascicle, groups.Opposite); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CalculateTopGap("brain_gap", 10); err != nil {
		t.Fatal(err)
	}

	// Count the operations of one full overwrite save, and capture the new
	// state's fingerprint from that committed copy.
	counter := iofault.New(atomicio.OS{}, iofault.Config{})
	var fpNew string
	{
		dir := filepath.Join(t.TempDir(), "session")
		copySessionTree(t, seed, dir)
		if err := sys.SaveSessionFS(counter, dir); err != nil {
			t.Fatal(err)
		}
		fpNew = loadFingerprint(t, dir, "new session")
	}
	if fpOld == fpNew {
		t.Fatal("old and new sessions are indistinguishable; the walk would prove nothing")
	}
	total := counter.Ops()
	if total < 50 {
		t.Fatalf("implausible op count %d for a session save", total)
	}

	sawOld, sawNew := false, false
	for crash := 1; crash <= total; crash++ {
		dir := filepath.Join(t.TempDir(), "session")
		copySessionTree(t, seed, dir)
		fsys := iofault.New(atomicio.OS{}, iofault.Config{CrashAt: crash})
		saveErr := sys.SaveSessionFS(fsys, dir)

		got := loadFingerprint(t, dir, fmt.Sprintf("crash at op %d", crash))
		switch got {
		case fpOld:
			sawOld = true
			if saveErr == nil {
				t.Errorf("crash at op %d: save reported success but old session loaded", crash)
			}
		case fpNew:
			sawNew = true
		default:
			t.Fatalf("crash at op %d: loaded session matches neither old nor new state", crash)
		}
	}
	if !sawOld {
		t.Error("no crash point preserved the old session — commit happens too early")
	}
	if !sawNew {
		t.Error("no crash point yielded the new session — commit never became visible")
	}

	// Recovery from the worst case (crash at op 1): a clean retry must land
	// the complete new session.
	dir := filepath.Join(t.TempDir(), "session")
	copySessionTree(t, seed, dir)
	_ = sys.SaveSessionFS(iofault.New(atomicio.OS{}, iofault.Config{CrashAt: 1}), dir)
	if err := sys.SaveSession(dir); err != nil {
		t.Fatalf("retry save failed: %v", err)
	}
	if got := loadFingerprint(t, dir, "retry"); got != fpNew {
		t.Error("retry after crash did not restore the new session")
	}
}

// TestSaveSessionENOSPC injects a recoverable disk-full error at a spread of
// operations; the session directory must stay loadable and complete.
func TestSaveSessionENOSPC(t *testing.T) {
	sys, _ := newSystem(t)
	if _, err := sys.CreateTissueDataset("brain"); err != nil {
		t.Fatal(err)
	}
	seed := filepath.Join(t.TempDir(), "session")
	if err := sys.SaveSession(seed); err != nil {
		t.Fatal(err)
	}
	fpOld := loadFingerprint(t, seed, "old session")

	if err := sys.GenerateMetadata("brain", 10); err != nil {
		t.Fatal(err)
	}
	counter := iofault.New(atomicio.OS{}, iofault.Config{})
	var fpNew string
	{
		dir := filepath.Join(t.TempDir(), "session")
		copySessionTree(t, seed, dir)
		if err := sys.SaveSessionFS(counter, dir); err != nil {
			t.Fatal(err)
		}
		fpNew = loadFingerprint(t, dir, "new session")
	}

	// Every 7th op plus the first and last keeps the runtime modest while
	// still crossing every file the save touches.
	ops := []int{1, counter.Ops()}
	for op := 7; op < counter.Ops(); op += 7 {
		ops = append(ops, op)
	}
	for _, op := range ops {
		dir := filepath.Join(t.TempDir(), "session")
		copySessionTree(t, seed, dir)
		fsys := iofault.New(atomicio.OS{}, iofault.Config{FailAt: op, FailErr: iofault.ErrNoSpace})
		saveErr := sys.SaveSessionFS(fsys, dir)

		got := loadFingerprint(t, dir, fmt.Sprintf("ENOSPC at op %d", op))
		if got != fpOld && got != fpNew {
			t.Fatalf("ENOSPC at op %d: torn session", op)
		}
		if saveErr == nil && got != fpNew {
			t.Fatalf("ENOSPC at op %d: successful save lost the new session", op)
		}
		if err := sys.SaveSession(dir); err != nil {
			t.Fatalf("ENOSPC at op %d: retry failed: %v", op, err)
		}
		if got := loadFingerprint(t, dir, "retry"); got != fpNew {
			t.Fatalf("ENOSPC at op %d: retry did not restore the new session", op)
		}
	}
}

package system

import (
	"context"
	"fmt"
	"time"

	"gea/internal/exec"
	"gea/internal/ingest"
	"gea/internal/lineage"
	"gea/internal/obs"
)

// IngestOptions enables the streaming append path (Options.Ingest).
type IngestOptions struct {
	// Store is the durable append store the session commits batches
	// through. Nil is allowed: the session then maintains the view purely
	// in memory (useful in tests and for read-only replicas), and
	// IngestAppendCtx applies batches without a durable commit.
	Store *ingest.Store
	// View configures cleaning, indexing and the maintained aggregate.
	View ingest.ViewOptions
	// Metrics optionally records the ingest.* series; nil disables
	// instrumentation.
	Metrics *obs.Registry
}

// Generation returns the corpus generation the session currently serves:
// 0 when ingestion is disabled, 1 for the generation New built, +1 per
// committed append. Operators that snapshot the dataset under the same
// lock see a consistent generation even while appends land.
func (s *System) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generation
}

// IngestView snapshots the maintained view and its generation token. The
// view is immutable — the caller can read it lock-free for as long as it
// keeps the pointer, even across concurrent appends. Nil when ingestion
// is disabled.
func (s *System) IngestView() (*ingest.View, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view, s.generation
}

// IngestAppend screens, quarantines, applies and commits one batch; see
// IngestAppendCtx for the governed variant.
func (s *System) IngestAppend(batch ingest.Batch) (*ingest.Report, error) {
	rep, err := s.ingestAppend(s.background(), batch)
	return rep, err
}

// IngestAppendCtx appends a batch of new libraries to the live corpus
// under execution governance. The batch is screened against the current
// name universe; invalid submissions are quarantined with a report and
// never block the valid remainder. The valid libraries are folded into
// the maintained view incrementally (bit-identical to a from-scratch
// rebuild), durably committed as a new generation through the append
// store, and only then swapped in for readers — a crash or commit
// failure at any point leaves both the directory and the session on the
// previous generation. Appends serialize among themselves but only
// block readers for the pointer swap.
func (s *System) IngestAppendCtx(ctx context.Context, batch ingest.Batch, lim exec.Limits) (*ingest.Report, exec.Trace, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, exec.Trace{}, err
	}
	defer release()
	c := exec.New(ctx, s.limits(lim))
	rep, err := s.ingestAppend(c, batch)
	return rep, c.Snapshot(false), err
}

// ingestAppend is the metered implementation. Budget exhaustion is an
// error, never a partially applied batch: the view swap happens only
// after both the in-memory apply and the durable commit succeed.
func (s *System) ingestAppend(c *exec.Ctl, batch ingest.Batch) (_ *ingest.Report, err error) {
	var partial bool
	sp := c.StartSpan("system.IngestAppend")
	sp.SetInput("%d submitted libraries", len(batch.Libraries))
	defer c.EndSpan(sp, &partial, &err)

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	oldView := s.view // only ingestMu holders write s.view, so this read is stable
	if oldView == nil {
		return nil, fmt.Errorf("system: ingestion not enabled (Options.Ingest is nil)")
	}

	// Screen against the durable name universe when a store is attached
	// (it also reserves the names of damaged-but-indexed libraries);
	// otherwise against the in-memory corpus.
	var retriesBefore int
	names := map[string]bool{}
	if s.ingestStore != nil {
		retriesBefore = s.ingestStore.Retries
		names = s.ingestStore.Names()
	} else {
		//lint:gea ctlcharge -- O(libraries) name-set bookkeeping ahead of the metered apply
		for _, l := range oldView.Raw.Libraries {
			names[l.Meta.Name] = true
		}
	}
	valid, rejected := ingest.Screen(batch, names)
	rep := &ingest.Report{}
	//lint:gea ctlcharge -- O(rejections) report bookkeeping
	for _, r := range rejected {
		rep.Rejected = append(rep.Rejected, ingest.RejectionReport{Name: r.Name, Error: r.Err.Error()})
	}
	// Quarantine before the commit: if the process dies mid-append the
	// rejects are already on disk for the operator.
	if len(rejected) > 0 && s.ingestStore != nil {
		qdir, err := s.ingestStore.Quarantine(batch, rejected)
		if err != nil {
			return nil, err
		}
		rep.QuarantineDir = qdir
	}
	if m := s.ingestMetrics; m != nil {
		m.Counter("ingest.quarantined").Add(int64(len(rejected)))
	}
	if len(valid) == 0 {
		if s.ingestStore != nil {
			rep.Retries = s.ingestStore.Retries - retriesBefore
		}
		return rep, nil
	}

	// Apply in memory first — it is pure and cheap to discard, while a
	// committed generation would be visible to a crash-recovery open.
	applyStart := time.Now()
	var newView *ingest.View
	//lint:gea locksafe -- ingestMu is the append serialization lock, not a registry lock: readers never take it (they snapshot under s.mu, which is NOT held here), so the guarded apply blocks only other appends
	err = exec.Guard("system.IngestAppend", "apply", func() error {
		var err error
		newView, _, err = oldView.ApplyWith(c, valid)
		return err
	})
	if err != nil {
		return nil, err
	}
	applyDur := time.Since(applyStart)

	// The durable commit point. On failure the new view is discarded, so
	// memory and disk stay on the same (previous) generation and the
	// whole append can be retried wholesale.
	var commitDur time.Duration
	if s.ingestStore != nil {
		commitStart := time.Now()
		gen, err := s.ingestStore.Append(valid)
		if err != nil {
			return nil, err
		}
		commitDur = time.Since(commitStart)
		rep.Gen = gen
		rep.Retries = s.ingestStore.Retries - retriesBefore
	}
	//lint:gea ctlcharge -- O(batch) report bookkeeping after the metered apply
	for _, l := range valid {
		rep.Appended = append(rep.Appended, l.Meta.Name)
	}

	// Swap the generation in for readers. Everything under mu is pointer
	// swaps and catalog/lineage bookkeeping — the governed compute above
	// ran unlocked.
	s.mu.Lock()
	defer s.mu.Unlock()
	s.view = newView
	s.generation++
	gen := s.generation
	if s.rescache != nil {
		// Entries keyed below the new generation are unreachable by
		// construction; sweep them now so memory follows reachability.
		s.rescache.EvictBelow(gen)
	}
	s.Data = newView.Data
	s.datasets[RootDataset] = newView.Data
	s.CleanReport = newView.Report
	if err := reloadLibrariesRelation(s.Store, newView.Data); err != nil {
		return nil, err
	}
	node := fmt.Sprintf("%s@gen%d", RootDataset, gen)
	params := map[string]string{
		"generation": fmt.Sprint(gen),
		"appended":   fmt.Sprint(len(valid)),
		"libraries":  fmt.Sprint(newView.Data.NumLibraries()),
		"tags":       fmt.Sprint(newView.Data.NumTags()),
	}
	if rep.Gen != "" {
		params["gen"] = rep.Gen
	}
	if _, err := s.Lineage.Record(node, lineage.KindDataset, "ingest-append", params, RootDataset); err != nil {
		return nil, err
	}

	if m := s.ingestMetrics; m != nil {
		m.Counter("ingest.appends").Add(1)
		m.Counter("ingest.libraries").Add(int64(len(valid)))
		m.Counter("ingest.retries").Add(int64(rep.Retries))
		m.Gauge("ingest.generation").Set(int64(gen))
		m.Histogram("ingest.apply_s", obs.LatencyBounds).Observe(applyDur.Seconds())
		if s.ingestStore != nil {
			m.Histogram("ingest.commit_s", obs.LatencyBounds).Observe(commitDur.Seconds())
		}
	}
	return rep, nil
}

package system

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gea/internal/atomicio"
	"gea/internal/exec"
	"gea/internal/ingest"
	"gea/internal/obs"
	"gea/internal/sage"
	"gea/internal/sagegen"
)

// newIngestSystem builds a session over an empty append store in a temp
// dir, ready to grow generation by generation.
func newIngestSystem(t *testing.T) (*System, *ingest.Store, string, *obs.Registry) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	retry := ingest.DefaultRetry()
	retry.Sleep = func(time.Duration) {}
	st, corpus, _, err := ingest.Open(atomicio.OS{}, dir, retry)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sys, err := New(corpus, Options{User: "ingest-test",
		Ingest: &IngestOptions{Store: st, Metrics: reg}})
	if err != nil {
		t.Fatal(err)
	}
	return sys, st, dir, reg
}

// counterOf / gaugeOf pull one point out of a metrics snapshot.
func counterOf(snap obs.Snapshot, name string) int64 {
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return -1
}

func gaugeOf(snap obs.Snapshot, name string) int64 {
	for _, g := range snap.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return -1
}

// emitBatches splits the small synthetic corpus for streaming.
func emitBatches(t *testing.T, n int) [][]*sage.Library {
	t.Helper()
	batches, _, err := sagegen.EmitBatches(sagegen.SmallConfig(), n)
	if err != nil {
		t.Fatal(err)
	}
	return batches
}

// TestIngestGenerationToken walks the generation token through appends:
// New's build is generation 1, every committed append advances it by one,
// a held view pointer stays on its generation, and the session's Data /
// catalog / lineage all track the swap.
func TestIngestGenerationToken(t *testing.T) {
	sys, st, dir, reg := newIngestSystem(t)
	if g := sys.Generation(); g != 1 {
		t.Fatalf("fresh session at generation %d, want 1", g)
	}
	heldView, heldGen := sys.IngestView()
	if heldView == nil || heldGen != 1 {
		t.Fatalf("IngestView = (%v, %d), want view at generation 1", heldView, heldGen)
	}

	batches := emitBatches(t, 3)
	total := 0
	for i, libs := range batches {
		rep, err := sys.IngestAppend(ingest.BatchFromLibraries(libs))
		if err != nil {
			t.Fatal(err)
		}
		total += len(libs)
		if want := uint64(i + 2); sys.Generation() != want {
			t.Fatalf("after append %d: generation %d, want %d", i+1, sys.Generation(), want)
		}
		if rep.Gen == "" || len(rep.Appended) != len(libs) {
			t.Fatalf("append %d incomplete: %+v", i+1, rep)
		}
		if got := sys.Data.NumLibraries(); got != total {
			t.Fatalf("session dataset holds %d libraries, want %d", got, total)
		}
	}
	// The pointer held across all appends still sees the empty corpus —
	// its generation, frozen.
	if n := heldView.Raw.Libraries; len(n) != 0 {
		t.Errorf("held generation-1 view grew to %d libraries", len(n))
	}

	// The catalog's libraries relation tracks the swap.
	rel, err := sys.Store.Get(TblLibraries)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != total {
		t.Errorf("catalog %s holds %d rows, want %d", TblLibraries, len(rel.Rows), total)
	}
	// Each committed generation records a lineage node.
	if !sys.Lineage.Has(RootDataset + "@gen2") {
		t.Error("no lineage node for generation 2")
	}
	// The durable store reopens onto exactly the view's raw corpus.
	st2, corpus, problems, err := ingest.Open(atomicio.OS{}, dir, ingest.DefaultRetry())
	if err != nil || len(problems) > 0 {
		t.Fatalf("reopen: %v (problems %v)", err, problems)
	}
	view, gen := sys.IngestView()
	if gen != uint64(len(batches)+1) || len(corpus.Libraries) != len(view.Raw.Libraries) {
		t.Errorf("reopened store has %d libraries; session serves %d at generation %d",
			len(corpus.Libraries), len(view.Raw.Libraries), gen)
	}
	if st2.Gen() != st.Gen() {
		t.Errorf("reopened store at %q, session's store at %q", st2.Gen(), st.Gen())
	}

	// Metrics: the counters and the generation gauge moved.
	snap := reg.Snapshot()
	if got := counterOf(snap, "ingest.appends"); got != int64(len(batches)) {
		t.Errorf("ingest.appends = %d, want %d", got, len(batches))
	}
	if got := counterOf(snap, "ingest.libraries"); got != int64(total) {
		t.Errorf("ingest.libraries = %d, want %d", got, total)
	}
	if got := gaugeOf(snap, "ingest.generation"); got != int64(len(batches)+1) {
		t.Errorf("ingest.generation gauge = %d, want %d", got, len(batches)+1)
	}
}

// TestIngestRejectedBatchLeavesGenerationAlone: a batch with no valid
// library is quarantined without committing a generation or touching the
// session's corpus.
func TestIngestRejectedBatchLeavesGenerationAlone(t *testing.T) {
	sys, _, _, reg := newIngestSystem(t)
	batches := emitBatches(t, 1)
	if _, err := sys.IngestAppend(ingest.BatchFromLibraries(batches[0])); err != nil {
		t.Fatal(err)
	}
	gen := sys.Generation()

	// Replaying the same batch collides on every name.
	rep, err := sys.IngestAppend(ingest.BatchFromLibraries(batches[0]))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gen != "" || len(rep.Appended) != 0 || len(rep.Rejected) != len(batches[0]) {
		t.Fatalf("replayed batch was not fully rejected: %+v", rep)
	}
	if rep.QuarantineDir == "" {
		t.Error("fully rejected batch reported no quarantine dir")
	}
	if sys.Generation() != gen {
		t.Errorf("generation moved from %d to %d on an all-rejected batch", gen, sys.Generation())
	}
	if got := counterOf(reg.Snapshot(), "ingest.quarantined"); got != int64(len(batches[0])) {
		t.Errorf("ingest.quarantined = %d, want %d", got, len(batches[0]))
	}
}

// TestIngestBudgetStopCommitsNothing: when the governed apply runs out of
// budget, the error surfaces and neither the session generation nor the
// durable store moves — the append stays wholesale-retryable.
func TestIngestBudgetStopCommitsNothing(t *testing.T) {
	sys, st, _, _ := newIngestSystem(t)
	batches := emitBatches(t, 1)
	_, _, err := sys.IngestAppendCtx(context.Background(),
		ingest.BatchFromLibraries(batches[0]), exec.Limits{Budget: 3})
	if err == nil {
		t.Fatal("impossible budget did not stop the append")
	}
	if g := sys.Generation(); g != 1 {
		t.Errorf("budget-stopped append advanced the generation to %d", g)
	}
	if st.Gen() != "" {
		t.Errorf("budget-stopped append committed generation %q", st.Gen())
	}
	// The same batch retries wholesale once the pressure clears.
	if _, _, err := sys.IngestAppendCtx(context.Background(),
		ingest.BatchFromLibraries(batches[0]), exec.Limits{}); err != nil {
		t.Fatalf("wholesale retry failed: %v", err)
	}
	if g := sys.Generation(); g != 2 {
		t.Errorf("retried append left generation at %d, want 2", g)
	}
}

// TestIngestDisabledSessions: a session built without Options.Ingest
// refuses appends with a plain error and serves generation 0.
func TestIngestDisabledSession(t *testing.T) {
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(res.Corpus, Options{User: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	if g := sys.Generation(); g != 0 {
		t.Errorf("ingest-disabled session at generation %d, want 0", g)
	}
	if _, err := sys.IngestAppend(ingest.Batch{}); err == nil || !strings.Contains(err.Error(), "ingestion not enabled") {
		t.Errorf("append on a plain session = %v, want 'ingestion not enabled'", err)
	}
}

// TestIngestConcurrentReaders appends batches while reader goroutines
// continuously snapshot the view and mine it. Run under -race this pins
// the locking contract: readers see a frozen generation, appends swap
// pointers without racing them.
func TestIngestConcurrentReaders(t *testing.T) {
	sys, _, _, _ := newIngestSystem(t)
	batches := emitBatches(t, 4)
	if _, err := sys.IngestAppend(ingest.BatchFromLibraries(batches[0])); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				view, gen := sys.IngestView()
				if gen < lastGen {
					t.Errorf("generation token went backwards: %d after %d", gen, lastGen)
					return
				}
				lastGen = gen
				// Read the snapshot's derived state; a torn swap or a
				// mutating apply would trip the race detector here.
				n := view.Data.NumLibraries()
				if rows := len(view.Sumy.Rows); n > 0 && rows == 0 {
					t.Errorf("generation %d: %d libraries but empty SUMY", gen, n)
					return
				}
			}
		}()
	}
	for _, libs := range batches[1:] {
		if _, err := sys.IngestAppend(ingest.BatchFromLibraries(libs)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if want := uint64(len(batches) + 1); sys.Generation() != want {
		t.Fatalf("final generation %d, want %d", sys.Generation(), want)
	}
}

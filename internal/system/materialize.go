package system

import (
	"fmt"
	"os"
	"path/filepath"

	"gea/internal/atomicio"
	"gea/internal/lineage"
	"gea/internal/relational"
	"gea/internal/sage"
)

// This file covers the storage-facing behaviours of the thesis's system
// layer: materializing ENUM tables into the relational database (Figure 4.4:
// "a new table is formed in the database to store the data"), applying the
// rotated physical layout when the conceptual relation is too wide for a
// column-limited DBMS (Section 4.6.1), and writing the tissue files the
// fascicle program consumes ("a plain text file and a binary file are also
// created to store the data in ASCII and binary format").

// MaxNaturalColumns is the column budget before materialization switches to
// the rotated layout; DB2 of the thesis's era handled "up to hundreds of
// columns".
const MaxNaturalColumns = 500

// MaterializeEnum writes a registered ENUM table (or a mined fascicle's
// enumeration) into the relational store as <name>Table. Narrow relations
// use the natural layout (libraries as rows, tags as columns); wide ones are
// stored rotated (tags as rows, libraries as columns), exactly the Section
// 4.6.1 workaround. It returns the stored table and whether it was rotated.
func (s *System) MaterializeEnum(name string) (*relational.Table, bool, error) {
	e, err := s.Enum(name)
	if err != nil {
		// Fascicle enumerations live inside MineResults.
		r, ferr := s.Fascicle(name)
		if ferr != nil {
			return nil, false, err
		}
		e = r.Enum
	}
	tableName := name + "Table"
	if s.Store.Has(tableName) {
		return nil, false, ErrExists{Name: tableName}
	}

	rotated := e.NumTags() > MaxNaturalColumns
	var t *relational.Table
	if rotated {
		schema := relational.Schema{{Name: "TagName", Kind: relational.KindString}}
		for i := 0; i < e.Size(); i++ {
			schema = append(schema, relational.Column{Name: e.Meta(i).Name, Kind: relational.KindFloat})
		}
		t = relational.NewTable(tableName, schema)
		tags := e.Tags()
		for j := 0; j < e.NumTags(); j++ {
			row := make(relational.Row, 0, e.Size()+1)
			row = append(row, relational.S(tags[j].String()))
			for i := 0; i < e.Size(); i++ {
				row = append(row, relational.F(e.Value(i, j)))
			}
			if err := t.Insert(row); err != nil {
				return nil, false, err
			}
		}
	} else {
		schema := relational.Schema{{Name: "LibraryName", Kind: relational.KindString}}
		for _, tg := range e.Tags() {
			schema = append(schema, relational.Column{Name: tg.String(), Kind: relational.KindFloat})
		}
		t = relational.NewTable(tableName, schema)
		for i := 0; i < e.Size(); i++ {
			row := make(relational.Row, 0, e.NumTags()+1)
			row = append(row, relational.S(e.Meta(i).Name))
			for j := 0; j < e.NumTags(); j++ {
				row = append(row, relational.F(e.Value(i, j)))
			}
			if err := t.Insert(row); err != nil {
				return nil, false, err
			}
		}
	}
	s.Store.Replace(t)
	return t, rotated, nil
}

// TagSum computes the conceptual per-tag sum over a materialized ENUM table,
// dispatching on the physical layout — the thesis's example of an operation
// whose evaluation changes under rotation.
func (s *System) TagSum(tableName string, tag sage.TagID) (float64, error) {
	t, err := s.Store.Get(tableName)
	if err != nil {
		return 0, err
	}
	if len(t.Schema) > 0 && t.Schema[0].Name == "TagName" {
		// Rotated: the tag is a row; sum across library columns.
		return relational.RotatedSum(t, tag.String())
	}
	// Natural: the tag is a column; sum down the rows.
	col := t.Schema.Col(tag.String())
	if col < 0 {
		return 0, fmt.Errorf("system: table %s has no tag %v", tableName, tag)
	}
	var sum float64
	for _, r := range t.Rows {
		sum += r[col].Float()
	}
	return sum, nil
}

// ExportTissueFiles writes the three files the calculate-fascicles window
// expects for a dataset (Figures 4.4-4.5): <name>file (plain text, one
// library per .sage file plus index), <name>file.b (the dense binary the
// miner reads) and <name>file.meta (the tolerance vector; GenerateMetadata
// must have run). It returns the three paths.
func (s *System) ExportTissueFiles(dir, datasetName string) (textDir, binPath, metaPath string, err error) {
	d, err := s.Dataset(datasetName)
	if err != nil {
		return "", "", "", err
	}
	tol, ok := s.tolerances[datasetName]
	if !ok {
		return "", "", "", fmt.Errorf("system: generate metadata for %q before exporting", datasetName)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", "", err
	}

	textDir = filepath.Join(dir, datasetName+"file")
	if err := sage.SaveCorpus(textDir, d.ToCorpus()); err != nil {
		return "", "", "", err
	}
	binPath = filepath.Join(dir, datasetName+"file.b")
	if err := sage.SaveBinaryFile(atomicio.OS{}, binPath, d); err != nil {
		return "", "", "", err
	}
	metaPath = filepath.Join(dir, datasetName+"file.meta")
	if err := sage.SaveMetaFile(atomicio.OS{}, metaPath, tol); err != nil {
		return "", "", "", err
	}
	return textDir, binPath, metaPath, nil
}

// ImportTissueFiles reads back a binary tissue file and its tolerance
// vector, registering the dataset and metadata under the given name — the
// path a user takes when the files were produced by an earlier session.
func (s *System) ImportTissueFiles(name, binPath, metaPath string) (*sage.Dataset, error) {
	if err := s.checkFresh(name); err != nil {
		return nil, err
	}
	metaByName := map[string]sage.LibraryMeta{}
	for _, m := range s.Data.Libs {
		metaByName[m.Name] = m
	}
	d, err := sage.LoadBinaryFile(atomicio.OS{}, binPath, metaByName)
	if err != nil {
		return nil, err
	}
	tol, err := sage.LoadMetaFile(atomicio.OS{}, metaPath)
	if err != nil {
		return nil, err
	}
	s.datasets[name] = d
	s.tolerances[name] = tol
	if _, err := s.Lineage.Record(name, lineage.KindDataset, "import",
		map[string]string{"binary": binPath, "meta": metaPath}, RootDataset); err != nil {
		return nil, err
	}
	return d, nil
}

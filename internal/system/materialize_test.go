package system

import (
	"math"
	"path/filepath"
	"testing"

	"gea/internal/core"
	"gea/internal/sage"
)

func TestMaterializeEnumNaturalAndRotated(t *testing.T) {
	sys, _ := newSystem(t)
	brain, err := sys.CreateTissueDataset("brain")
	if err != nil {
		t.Fatal(err)
	}
	// Narrow ENUM (few tags): natural layout.
	narrow, err := core.NewEnum("narrowEnum", brain, []int{0, 1, 2}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	sys.enums["narrowEnum"] = narrow
	if _, err := sys.Lineage.Record("narrowEnum", 0, "test", nil); err != nil {
		t.Fatal(err)
	}
	tbl, rotated, err := sys.MaterializeEnum("narrowEnum")
	if err != nil {
		t.Fatal(err)
	}
	if rotated {
		t.Error("narrow enum should use the natural layout")
	}
	if tbl.Len() != 3 || len(tbl.Schema) != 5 {
		t.Errorf("natural table dims = %d x %d", tbl.Len(), len(tbl.Schema))
	}
	// Redundancy check on re-materialization.
	if _, _, err := sys.MaterializeEnum("narrowEnum"); err == nil {
		t.Error("re-materialize: expected ErrExists")
	}

	// Wide ENUM (every tag): rotated layout.
	allCols := make([]int, brain.NumTags())
	for j := range allCols {
		allCols[j] = j
	}
	wide, err := core.NewEnum("wideEnum", brain, []int{0, 1, 2, 3}, allCols)
	if err != nil {
		t.Fatal(err)
	}
	sys.enums["wideEnum"] = wide
	tblW, rotatedW, err := sys.MaterializeEnum("wideEnum")
	if err != nil {
		t.Fatal(err)
	}
	if !rotatedW {
		t.Error("wide enum should be rotated")
	}
	if tblW.Len() != brain.NumTags() || len(tblW.Schema) != 5 {
		t.Errorf("rotated table dims = %d x %d", tblW.Len(), len(tblW.Schema))
	}

	// TagSum agrees across layouts and with the dataset.
	tag := brain.Tags[1]
	wantNarrow := 0.0
	for i := 0; i < 3; i++ {
		wantNarrow += brain.Expr[i][1]
	}
	got, err := sys.TagSum("narrowEnumTable", tag)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-wantNarrow) > 1e-9 {
		t.Errorf("natural TagSum = %v, want %v", got, wantNarrow)
	}
	wantWide := wantNarrow + brain.Expr[3][1]
	gotW, err := sys.TagSum("wideEnumTable", tag)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotW-wantWide) > 1e-9 {
		t.Errorf("rotated TagSum = %v, want %v", gotW, wantWide)
	}

	// Errors.
	if _, err := sys.TagSum("narrowEnumTable", sage.MustParseTag("GGGGGGGGGG")); err == nil {
		t.Error("TagSum(absent tag): expected error")
	}
	if _, err := sys.TagSum("noTable", tag); err == nil {
		t.Error("TagSum(missing table): expected error")
	}
	if _, _, err := sys.MaterializeEnum("nope"); err == nil {
		t.Error("MaterializeEnum(unknown): expected error")
	}
}

func TestMaterializeFascicleEnum(t *testing.T) {
	sys, _ := newSystem(t)
	_, pure := runBrainPipeline(t, sys)
	tbl, rotated, err := sys.MaterializeEnum(pure)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := sys.Fascicle(pure)
	if rotated != (f.Fascicle.NumCompact() > MaxNaturalColumns) {
		t.Error("rotation decision wrong")
	}
	if rotated && tbl.Len() != f.Fascicle.NumCompact() {
		t.Errorf("rotated fascicle table has %d rows, want %d", tbl.Len(), f.Fascicle.NumCompact())
	}
}

func TestExportImportTissueFiles(t *testing.T) {
	sys, _ := newSystem(t)
	if _, err := sys.CreateTissueDataset("brain"); err != nil {
		t.Fatal(err)
	}
	// Export before metadata fails.
	if _, _, _, err := sys.ExportTissueFiles(t.TempDir(), "brain"); err == nil {
		t.Error("export without metadata: expected error")
	}
	if err := sys.GenerateMetadata("brain", 10); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	textDir, binPath, metaPath, err := sys.ExportTissueFiles(dir, "brain")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(binPath) != dir || filepath.Dir(textDir) != dir {
		t.Errorf("paths not under dir: %s %s", binPath, textDir)
	}

	// Import back under a new name; data and tolerances match.
	orig, _ := sys.Dataset("brain")
	d, err := sys.ImportTissueFiles("brainReimport", binPath, metaPath)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumLibraries() != orig.NumLibraries() || d.NumTags() != orig.NumTags() {
		t.Fatalf("imported dims %dx%d, want %dx%d",
			d.NumLibraries(), d.NumTags(), orig.NumLibraries(), orig.NumTags())
	}
	// Imported metadata carries library tissue/state through the session.
	if d.Libs[0].Tissue != "brain" {
		t.Errorf("imported library meta lost: %+v", d.Libs[0])
	}
	// Mining works on the imported dataset directly.
	if _, err := sys.CalculateFascicles("brainReimport", FascicleOptions{
		K: d.NumTags() / 2, MinSize: 3,
	}); err != nil {
		t.Fatalf("mining the imported dataset: %v", err)
	}
	// Unknown paths error.
	if _, err := sys.ImportTissueFiles("x", "/nonexistent.b", metaPath); err == nil {
		t.Error("import missing binary: expected error")
	}
	if _, err := sys.ImportTissueFiles("y", binPath, "/nonexistent.meta"); err == nil {
		t.Error("import missing meta: expected error")
	}
	if _, err := sys.ImportTissueFiles("brainReimport", binPath, metaPath); err == nil {
		t.Error("duplicate import name: expected error")
	}
}

package system

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"gea/internal/core"
	"gea/internal/exec"
	"gea/internal/exec/execwalk"
	"gea/internal/obs"
	"gea/internal/sage"
)

// This file pins the observability invariants at the system level, where
// one governed invocation spans admission, mining, conversion and lineage
// registration. Matched by the CI -race walk step.

// TestSpanInvariantCalculateFascicles runs the span-verified walk over the
// composite mining operator and sweeps worker counts.
func TestSpanInvariantCalculateFascicles(t *testing.T) {
	sys := newExecSystem(t)
	d, err := sys.Dataset("brain")
	if err != nil {
		t.Fatal(err)
	}
	opts := FascicleOptions{K: d.NumTags() * 60 / 100, MinSize: 3, Algorithm: core.GreedyAlgorithm}
	verified := execwalk.SpanVerified(t, "system.CalculateFascicles",
		func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := sys.CalculateFasciclesCtx(ctx, "brain", opts, lim)
			return tr, err
		})
	execwalk.Walk(t, execwalk.Target{Name: "CalculateFascicles", Run: verified, MaxProbes: 6})
	for _, w := range []int{2, 4} {
		if _, err := verified(context.Background(), exec.Limits{Workers: w}); err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
	}
}

// TestSpanInvariantCreateGap covers the gap operator; every invocation
// needs a fresh lineage name.
func TestSpanInvariantCreateGap(t *testing.T) {
	sys, _ := newSystem(t)
	groups, _ := runBrainPipeline(t, sys)
	var n int64
	verified := execwalk.SpanVerified(t, "system.CreateGap",
		func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			name := fmt.Sprintf("spangap_%d", atomic.AddInt64(&n, 1))
			_, tr, err := sys.CreateGapCtx(ctx, name, groups.InFascicle, groups.Opposite, lim)
			return tr, err
		})
	execwalk.Walk(t, execwalk.Target{Name: "CreateGap", Run: verified, MaxProbes: 6, MaxUnitStep: 1})
}

// TestSpanInvariantFindPureFascicleBudget pins the budget outcome on the
// one operator that errors (rather than truncates) when the budget runs
// out: the root span must be flagged with the budget outcome and still
// reconcile with the trace's unit total.
func TestSpanInvariantFindPureFascicleBudget(t *testing.T) {
	sys := newExecSystem(t)
	col := obs.NewCollector()
	ctx := obs.WithCollector(context.Background(), col)
	_, tr, err := sys.FindPureFascicleWithCtx(ctx, "brain", sage.PropCancer, 3,
		core.LatticeAlgorithm, exec.Limits{Budget: 3})
	if !exec.IsBudget(err) {
		t.Fatalf("budget 3: got %v, want exec.ErrBudget", err)
	}
	root := col.LastRoot()
	if root == nil || root.Op != "system.FindPureFascicle" {
		t.Fatalf("no root span for the budget-stopped search: %+v", root)
	}
	if root.Outcome != obs.OutcomeBudget {
		t.Errorf("root span outcome %q, want %q", root.Outcome, obs.OutcomeBudget)
	}
	if root.Units != tr.Units {
		t.Errorf("root span recorded %d units, trace charged %d", root.Units, tr.Units)
	}
}

// TestSpanInvariantLineageAttach checks the lineage linkage: a traced
// mining run attaches its completed run record to every fascicle node it
// registered, and an untraced run attaches nothing.
func TestSpanInvariantLineageAttach(t *testing.T) {
	sys := newExecSystem(t)
	d, err := sys.Dataset("brain")
	if err != nil {
		t.Fatal(err)
	}
	opts := FascicleOptions{K: d.NumTags() * 60 / 100, MinSize: 3, Algorithm: core.GreedyAlgorithm}
	col := obs.NewCollector()
	ctx := obs.WithCollector(context.Background(), col)
	names, _, err := sys.CalculateFasciclesCtx(ctx, "brain", opts, exec.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no fascicles mined; fixture too weak for the linkage check")
	}
	root := col.LastRoot()
	if root == nil {
		t.Fatal("traced run left no record")
	}
	for _, n := range names {
		node, err := sys.Lineage.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(node.Runs) != 1 || node.Runs[0] != root {
			t.Errorf("node %s: runs = %d, want the mining run record attached", n, len(node.Runs))
		}
	}
}

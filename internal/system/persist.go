package system

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"path/filepath"
	"strings"

	"gea/internal/atomicio"
	"gea/internal/clean"
	"gea/internal/core"
	"gea/internal/fascicle"
	"gea/internal/genedb"
	"gea/internal/interval"
	"gea/internal/lineage"
	"gea/internal/relational"
	"gea/internal/sage"
	"gea/internal/sagegen"
)

// Session persistence: the original GEA keeps every table in DB2, so a
// session survives restarts. SaveSession writes a session directory holding
// the cleaned corpus (sageName.txt + per-library files), the relational
// catalog, the lineage graph, and a manifest of every in-memory object
// (datasets, tolerance vectors, fascicles, SUMY/ENUM/GAP tables);
// LoadSession restores an equivalent session.
//
// Durability: a session directory is a generation store (see atomicio). A
// save writes a complete new generation —
//
//	dir/gen-NNNNNN/corpus/      (itself a generation store)
//	dir/gen-NNNNNN/catalog.gob
//	dir/gen-NNNNNN/lineage.gob
//	dir/gen-NNNNNN/session.gob
//
// — and commits by atomically rewriting dir/CURRENT, so a crash at any
// write, sync or rename leaves either the old session or the new one.
// Every file carries a checksum footer; LoadSession salvages around
// damaged artifacts instead of refusing the whole session (see LoadReport).

// Names of the files inside a session generation.
const (
	sessionCorpusDir   = "corpus"
	sessionCatalogFile = "catalog.gob"
	sessionLineageFile = "lineage.gob"
	sessionManifest    = "session.gob"
)

// LoadProblem records one artifact a salvaging LoadSession could not
// restore.
type LoadProblem struct {
	// Artifact classifies what was lost: "library", "catalog", "lineage",
	// "manifest", "dataset", "tolerance", "gap", "enum", "fascicle".
	Artifact string
	// Name is the object name or file path.
	Name string
	Err  error
}

func (p LoadProblem) String() string {
	return fmt.Sprintf("%s %s: %v", p.Artifact, p.Name, p.Err)
}

// LoadReport lists everything a session load had to skip. A skipped
// derived table can usually be recomputed with System.Regenerate (the
// lineage graph records how it was produced); a skipped library is gone
// unless the source corpus still exists.
type LoadReport struct {
	Problems []LoadProblem
}

// OK reports a clean load.
func (r *LoadReport) OK() bool { return len(r.Problems) == 0 }

func (r *LoadReport) add(artifact, name string, err error) {
	r.Problems = append(r.Problems, LoadProblem{Artifact: artifact, Name: name, Err: err})
}

func (r *LoadReport) String() string {
	if r.OK() {
		return "load clean"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "salvaged load: %d artifact(s) skipped\n", len(r.Problems))
	for _, p := range r.Problems {
		fmt.Fprintf(&b, "  %s\n", p)
	}
	return b.String()
}

type storedSumyRow struct {
	Tag      uint32
	Min, Max float64
	Mean     float64
	Std      float64
	Extra    map[string]float64
}

type storedSumy struct {
	Rows      []storedSumyRow
	ExtraCols []string
}

type storedGapValue struct {
	V    float64
	Null bool
}

type storedGapRow struct {
	Tag    uint32
	Values []storedGapValue
}

type storedGap struct {
	Cols []string
	Rows []storedGapRow
}

type storedEnum struct {
	Dataset string // dataset key the Enum's rows/cols refer to
	Rows    []int
	Cols    []int
}

type storedFascicle struct {
	Dataset     string
	Rows        []int
	CompactCols []int
	Min, Max    []float64
	// Sumy is the fascicle's summary table, embedded because the Mine macro
	// keeps it inside the MineResult rather than the session registry.
	SumyName string
	Sumy     storedSumy
	EnumName string
}

type sessionManifestData struct {
	User        string
	CleanReport *storedCleanReport
	// Datasets maps dataset name to its member library names; the root
	// dataset is implicit (all libraries).
	Datasets   map[string][]string
	Tolerances map[string]map[uint32]float64
	Sumys      map[string]storedSumy
	Gaps       map[string]storedGap
	Enums      map[string]storedEnum
	Fascicles  map[string]storedFascicle
	RunCount   map[string]int
	FoundPure  map[string]string
}

type storedCleanReport struct {
	UniqueTagsBefore int
	UniqueTagsAfter  int
}

// datasetKey returns the registry key of a dataset pointer, or an error.
func (s *System) datasetKey(d *sage.Dataset) (string, error) {
	for name, ds := range s.datasets {
		if ds == d {
			return name, nil
		}
	}
	return "", fmt.Errorf("system: object references an unregistered dataset")
}

// SaveSession writes the session to dir (created if needed) with the
// crash-safe generation protocol.
func (s *System) SaveSession(dir string) error {
	return s.SaveSessionFS(atomicio.OS{}, dir)
}

// SaveSessionFS is SaveSession over an injectable filesystem. It holds the
// session's registry lock for the duration, so a save taken concurrently
// with other session operations is a consistent snapshot.
func (s *System) SaveSessionFS(fsys atomicio.FS, dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := sessionManifestData{
		User:       s.User,
		Datasets:   map[string][]string{},
		Tolerances: map[string]map[uint32]float64{},
		Sumys:      map[string]storedSumy{},
		Gaps:       map[string]storedGap{},
		Enums:      map[string]storedEnum{},
		Fascicles:  map[string]storedFascicle{},
		RunCount:   s.runCount,
		FoundPure:  s.foundPure,
	}
	if s.CleanReport != nil {
		m.CleanReport = &storedCleanReport{
			UniqueTagsBefore: s.CleanReport.UniqueTagsBefore,
			UniqueTagsAfter:  s.CleanReport.UniqueTagsAfter,
		}
	}
	for name, d := range s.datasets {
		if name == RootDataset {
			continue
		}
		names := make([]string, d.NumLibraries())
		for i, meta := range d.Libs {
			names[i] = meta.Name
		}
		m.Datasets[name] = names
	}
	for name, tol := range s.tolerances {
		tm := make(map[uint32]float64, len(tol))
		for tg, v := range tol {
			tm[uint32(tg)] = v
		}
		m.Tolerances[name] = tm
	}
	for name, sm := range s.sumys {
		m.Sumys[name] = encodeSumy(sm)
	}
	for name, g := range s.gaps {
		m.Gaps[name] = encodeGap(g)
	}
	for name, e := range s.enums {
		key, err := s.datasetKey(e.Data)
		if err != nil {
			return fmt.Errorf("enum %s: %v", name, err)
		}
		m.Enums[name] = storedEnum{Dataset: key, Rows: e.Rows, Cols: e.Cols}
	}
	for name, r := range s.fascicles {
		key, err := s.datasetKey(r.Enum.Data)
		if err != nil {
			return fmt.Errorf("fascicle %s: %v", name, err)
		}
		m.Fascicles[name] = storedFascicle{
			Dataset: key, Rows: r.Fascicle.Rows, CompactCols: r.Fascicle.CompactCols,
			Min: r.Fascicle.Min, Max: r.Fascicle.Max,
			SumyName: r.Sumy.Name, Sumy: encodeSumy(r.Sumy), EnumName: r.Enum.Name,
		}
	}
	var manifest bytes.Buffer
	if err := gob.NewEncoder(&manifest).Encode(m); err != nil {
		return err
	}

	// Write a complete new generation, then commit it by flipping CURRENT.
	// Nothing in the live generation is touched.
	gen, err := atomicio.NextGen(fsys, dir)
	if err != nil {
		return err
	}
	gd := filepath.Join(dir, gen)
	if err := fsys.MkdirAll(gd, 0o755); err != nil {
		return err
	}
	if err := sage.SaveCorpusFS(fsys, filepath.Join(gd, sessionCorpusDir), s.Data.ToCorpus()); err != nil {
		return err
	}
	if err := s.Store.SaveFS(fsys, filepath.Join(gd, sessionCatalogFile)); err != nil {
		return err
	}
	if err := s.Lineage.SaveFS(fsys, filepath.Join(gd, sessionLineageFile)); err != nil {
		return err
	}
	if err := atomicio.WriteFile(fsys, filepath.Join(gd, sessionManifest), manifest.Bytes()); err != nil {
		return err
	}
	if err := atomicio.Commit(fsys, dir, gen); err != nil {
		return err
	}
	atomicio.CleanupGens(fsys, dir, gen)
	return nil
}

func encodeSumy(sm *core.Sumy) storedSumy {
	out := storedSumy{ExtraCols: sm.ExtraCols, Rows: make([]storedSumyRow, len(sm.Rows))}
	for i, r := range sm.Rows {
		out.Rows[i] = storedSumyRow{
			Tag: uint32(r.Tag), Min: r.Range.Min, Max: r.Range.Max,
			Mean: r.Mean, Std: r.Std, Extra: r.Extra,
		}
	}
	return out
}

func decodeSumy(name string, st storedSumy) *core.Sumy {
	rows := make([]core.SumyRow, len(st.Rows))
	for i, r := range st.Rows {
		rows[i] = core.SumyRow{
			Tag:   sage.TagID(r.Tag),
			Range: interval.Interval{Min: r.Min, Max: r.Max},
			Mean:  r.Mean, Std: r.Std, Extra: r.Extra,
		}
	}
	return core.NewSumy(name, rows, st.ExtraCols)
}

func encodeGap(g *core.Gap) storedGap {
	out := storedGap{Cols: g.Cols, Rows: make([]storedGapRow, len(g.Rows))}
	for i, r := range g.Rows {
		vals := make([]storedGapValue, len(r.Values))
		for k, v := range r.Values {
			vals[k] = storedGapValue{V: v.V, Null: v.Null}
		}
		out.Rows[i] = storedGapRow{Tag: uint32(r.Tag), Values: vals}
	}
	return out
}

func decodeGap(name string, st storedGap) (*core.Gap, error) {
	rows := make([]core.GapRow, len(st.Rows))
	order := make([]sage.TagID, len(st.Rows))
	for i, r := range st.Rows {
		vals := make([]core.GapValue, len(r.Values))
		for k, v := range r.Values {
			vals[k] = core.GapValue{V: v.V, Null: v.Null}
		}
		rows[i] = core.GapRow{Tag: sage.TagID(r.Tag), Values: vals}
		order[i] = sage.TagID(r.Tag)
	}
	g, err := core.NewGap(name, st.Cols, rows)
	if err != nil {
		return nil, err
	}
	// Restore the stored row order (top-gap tables keep display order).
	if err := g.ReorderRows(order); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadSession restores a session saved with SaveSession. The gene databases
// are rebuilt when a catalog is supplied (they are synthesized, not stored).
//
// The load salvages: a damaged or missing artifact is skipped and recorded
// in the returned System's LoadReport rather than failing the whole load.
// Only damage to the commit pointer or the corpus index — without which
// there is no session at all — is a hard error.
func LoadSession(dir string, catalog *sagegen.Catalog, geneDBSeed int64) (*System, error) {
	sys, _, err := LoadSessionFS(atomicio.OS{}, dir, catalog, geneDBSeed)
	return sys, err
}

// LoadSessionFS is LoadSession over an injectable filesystem, returning
// the salvage report explicitly (it is also attached to the System).
func LoadSessionFS(fsys atomicio.FS, dir string, catalog *sagegen.Catalog, geneDBSeed int64) (*System, *LoadReport, error) {
	report := &LoadReport{}
	gen, err := atomicio.CurrentGen(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	gd := filepath.Join(dir, gen)

	corpus, corpusProblems, err := sage.LoadCorpusSalvage(fsys, filepath.Join(gd, sessionCorpusDir))
	if err != nil {
		return nil, nil, err
	}
	for _, p := range corpusProblems {
		report.add("library", p.Path, p.Err)
	}
	d := sage.Build(corpus)

	store, err := relational.LoadFS(fsys, filepath.Join(gd, sessionCatalogFile))
	if err != nil {
		// The catalog's fixed relations are rebuildable from the data.
		report.add("catalog", sessionCatalogFile, err)
		store = relational.NewStore()
		if err := initCatalog(store); err != nil {
			return nil, nil, err
		}
		if err := loadLibrariesRelation(store, d); err != nil {
			return nil, nil, err
		}
	}

	lin, err := lineage.LoadFS(fsys, filepath.Join(gd, sessionLineageFile))
	if err != nil {
		report.add("lineage", sessionLineageFile, err)
		lin = lineage.NewGraph()
		if _, err := lin.Record(RootDataset, lineage.KindDataset, "load",
			map[string]string{"libraries": fmt.Sprint(d.NumLibraries()), "tags": fmt.Sprint(d.NumTags())}); err != nil {
			return nil, nil, err
		}
	}

	var m sessionManifestData
	if data, err := atomicio.ReadFile(fsys, filepath.Join(gd, sessionManifest)); err != nil {
		report.add("manifest", sessionManifest, err)
	} else if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		report.add("manifest", sessionManifest, err)
		m = sessionManifestData{}
	}

	sys := &System{
		User:       m.User,
		Store:      store,
		Lineage:    lin,
		Data:       d,
		LoadReport: report,
		datasets:   map[string]*sage.Dataset{RootDataset: d},
		tolerances: map[string]map[sage.TagID]float64{},
		fascicles:  map[string]*core.MineResult{},
		sumys:      map[string]*core.Sumy{},
		enums:      map[string]*core.Enum{},
		gaps:       map[string]*core.Gap{},
		runCount:   m.RunCount,
		foundPure:  m.FoundPure,
		bornGen:    map[string]uint64{},
	}
	if sys.runCount == nil {
		sys.runCount = map[string]int{}
	}
	if sys.foundPure == nil {
		sys.foundPure = map[string]string{}
	}
	sys.initAdmission(Options{})
	if m.CleanReport != nil {
		sys.CleanReport = &clean.Report{
			UniqueTagsBefore: m.CleanReport.UniqueTagsBefore,
			UniqueTagsAfter:  m.CleanReport.UniqueTagsAfter,
		}
	}
	for name, libNames := range m.Datasets {
		sub, err := d.SubsetByNames(libNames)
		if err != nil {
			// A member library was skipped above; the dataset (and below,
			// anything built on it) is dropped rather than silently shrunk.
			report.add("dataset", name, err)
			continue
		}
		sys.datasets[name] = sub
	}
	for name, tm := range m.Tolerances {
		tol := make(map[sage.TagID]float64, len(tm))
		for tg, v := range tm {
			tol[sage.TagID(tg)] = v
		}
		sys.tolerances[name] = tol
	}
	for name, st := range m.Sumys {
		sys.sumys[name] = decodeSumy(name, st)
	}
	for name, st := range m.Gaps {
		g, err := decodeGap(name, st)
		if err != nil {
			report.add("gap", name, err)
			continue
		}
		sys.gaps[name] = g
	}
	for name, st := range m.Enums {
		base, ok := sys.datasets[st.Dataset]
		if !ok {
			report.add("enum", name, fmt.Errorf("references missing dataset %q", st.Dataset))
			continue
		}
		e, err := core.NewEnum(name, base, st.Rows, st.Cols)
		if err != nil {
			report.add("enum", name, err)
			continue
		}
		sys.enums[name] = e
	}
	for name, st := range m.Fascicles {
		base, ok := sys.datasets[st.Dataset]
		if !ok {
			report.add("fascicle", name, fmt.Errorf("references missing dataset %q", st.Dataset))
			continue
		}
		sm := decodeSumy(st.SumyName, st.Sumy)
		e, err := core.NewEnum(st.EnumName, base, st.Rows, st.CompactCols)
		if err != nil {
			report.add("fascicle", name, err)
			continue
		}
		sys.fascicles[name] = &core.MineResult{
			Fascicle: &fascicle.Fascicle{
				Rows: st.Rows, CompactCols: st.CompactCols, Min: st.Min, Max: st.Max,
			},
			Sumy: sm,
			Enum: e,
		}
	}
	if catalog != nil {
		gdb, err := genedb.Build(catalog, geneDBSeed)
		if err != nil {
			return nil, nil, err
		}
		sys.GeneDB = gdb
	}
	return sys, report, nil
}

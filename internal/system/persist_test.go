package system

import (
	"path/filepath"
	"testing"

	"gea/internal/sage"
)

// TestSessionSaveLoadRoundTrip runs the case-study-1 pipeline, saves the
// session, reloads it, and checks every object class survived.
func TestSessionSaveLoadRoundTrip(t *testing.T) {
	sys, res := newSystem(t)
	groups, pure := runBrainPipeline(t, sys)
	if _, err := sys.CreateGap("rtGap", groups.InFascicle, groups.Opposite); err != nil {
		t.Fatal(err)
	}
	top, err := sys.CalculateTopGap("rtGap", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Lineage.SetComment(pure, "persist me"); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "session")
	if err := sys.SaveSession(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSession(dir, res.Catalog, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Data survives with the same dimensions.
	if got.Data.NumLibraries() != sys.Data.NumLibraries() || got.Data.NumTags() != sys.Data.NumTags() {
		t.Fatalf("data dims changed: %dx%d vs %dx%d",
			got.Data.NumLibraries(), got.Data.NumTags(), sys.Data.NumLibraries(), sys.Data.NumTags())
	}
	// Datasets.
	brain, err := got.Dataset("brain")
	if err != nil {
		t.Fatal(err)
	}
	origBrain, _ := sys.Dataset("brain")
	if brain.NumLibraries() != origBrain.NumLibraries() {
		t.Error("brain dataset changed size")
	}
	// SUMY tables: values equal.
	sm, err := got.Sumy(groups.InFascicle)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := sys.Sumy(groups.InFascicle)
	if sm.Len() != orig.Len() {
		t.Fatalf("sumy rows %d vs %d", sm.Len(), orig.Len())
	}
	for i := range orig.Rows {
		a, b := orig.Rows[i], sm.Rows[i]
		if a.Tag != b.Tag || a.Mean != b.Mean || a.Std != b.Std || a.Range != b.Range {
			t.Fatalf("sumy row %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	// Gap tables (including the top-gap).
	g, err := got.Gap("rtGap")
	if err != nil {
		t.Fatal(err)
	}
	origGap, _ := sys.Gap("rtGap")
	if g.Len() != origGap.Len() {
		t.Error("gap length changed")
	}
	gotTop, err := got.Gap(top.Name)
	if err != nil {
		t.Fatal(err)
	}
	if gotTop.Len() != top.Len() {
		t.Error("top gap changed")
	}
	// Fascicles with their mined structure.
	fas, err := got.Fascicle(pure)
	if err != nil {
		t.Fatal(err)
	}
	origFas, _ := sys.Fascicle(pure)
	if fas.Fascicle.Size() != origFas.Fascicle.Size() ||
		fas.Fascicle.NumCompact() != origFas.Fascicle.NumCompact() {
		t.Error("fascicle structure changed")
	}
	// Lineage with comments.
	node, err := got.Lineage.Get(pure)
	if err != nil {
		t.Fatal(err)
	}
	if node.Comment != "persist me" {
		t.Error("lineage comment lost")
	}
	// Catalog relations.
	libs, err := got.Store.Get(TblLibraries)
	if err != nil {
		t.Fatal(err)
	}
	if libs.Len() != got.Data.NumLibraries() {
		t.Error("Libraries relation changed")
	}
	// GeneDB rebuilt.
	if got.GeneDB == nil {
		t.Error("genedb not rebuilt")
	}
	// Clean report summary survives.
	if got.CleanReport == nil || got.CleanReport.UniqueTagsAfter != sys.CleanReport.UniqueTagsAfter {
		t.Error("clean report summary lost")
	}
	// The restored session keeps working: derive a new gap from restored
	// SUMY tables.
	if _, err := got.CreateGap("afterReload", groups.InFascicle, groups.SameNotInFascicle); err != nil {
		t.Fatalf("restored session cannot continue the analysis: %v", err)
	}
	// FindPureFascicle cache survives.
	again, err := got.FindPureFascicle("brain", sage.PropCancer, 3)
	if err != nil {
		t.Fatal(err)
	}
	if again != pure {
		t.Errorf("FindPureFascicle after reload = %q, want cached %q", again, pure)
	}
}

func TestLoadSessionMissingDir(t *testing.T) {
	if _, err := LoadSession("/nonexistent/session", nil, 0); err == nil {
		t.Error("LoadSession(missing): expected error")
	}
}

func TestLoadSessionWithoutCatalog(t *testing.T) {
	sys, _ := newSystem(t)
	dir := filepath.Join(t.TempDir(), "s")
	if err := sys.SaveSession(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSession(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.GeneDB != nil {
		t.Error("genedb built without catalog")
	}
}

package system

import (
	"context"

	"gea/internal/admission"
	"gea/internal/exec"
	"gea/internal/lineage"
	"gea/internal/obs"
	"gea/internal/rescache"
	"gea/internal/sage"
)

// QueryResult is the outcome of a CachedQueryCtx call: the operator
// value with the accounting that keeps cached and computed responses
// reconcilable — the generation the result describes, the exec units
// the producing run charged (reported identically on hits), and where
// the result came from.
type QueryResult struct {
	// Value is the operator result; on a cache hit it is the very
	// object the original compute returned, so it is
	// reflect.DeepEqual-identical to a fresh computation at the same
	// generation.
	Value any
	// Generation is the corpus generation the result was computed
	// against.
	Generation uint64
	// Units is the exec work the producing run charged; a hit reports
	// the original compute's units so span accounting reconciles.
	Units int64
	// Partial marks a budget-stopped result; partials are never cached.
	Partial bool
	// Source reports computed / hit / shared (single-flight join).
	Source rescache.Source
	// State is the admission state that shaped this request's limits.
	State admission.State
	// Throttled reports whether the tenant's envelope shaped the
	// limits down.
	Throttled bool
	// Trace is this call's own execution trace: populated when this
	// call ran the compute, zero for hits and shared joins (their work
	// is accounted by Units and Record instead).
	Trace exec.Trace
	// Record is the producing run's span record when a collector was
	// installed — served on hits too, for trace reconciliation.
	Record *obs.Record
}

// CachedQueryCtx runs one read-only operator over the session's root
// corpus through the result cache: the request takes an admission
// slot, its limits are shaped by the queue-wide state and then by the
// tenant's envelope, the (generation, op, params) key is canonicalized,
// and identical in-flight requests single-flight onto one compute.
// compute receives the metered Ctl and an immutable dataset snapshot;
// it must derive everything from those two (never from the live
// session registries) and return the value, its approximate byte size
// and whether it was budget-stopped. Budget-stopped partials are
// returned but never cached. A canonicalization error (non-data
// params) is not fatal: the query simply runs uncached.
func (s *System) CachedQueryCtx(ctx context.Context, tenant, op string, params any, lim exec.Limits, compute func(c *exec.Ctl, data *sage.Dataset) (value any, bytes int64, partial bool, err error)) (QueryResult, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return QueryResult{}, err
	}
	defer release()

	lim = s.limits(lim)
	state := admission.Healthy
	if s.queue != nil {
		lim, state = s.queue.Shape(lim)
	}
	lim, throttled := s.tenants.Shape(tenant, lim)

	// One atomic snapshot of (data, generation): the key's generation
	// always matches the corpus the compute reads, even while an append
	// commits the next generation.
	s.mu.Lock()
	data := s.Data
	gen := s.generation
	s.mu.Unlock()

	var trace exec.Trace
	run := func() (rescache.Computed, error) {
		c := exec.New(ctx, lim)
		value, bytes, partial, err := compute(c, data)
		trace = c.Snapshot(partial)
		if err != nil {
			return rescache.Computed{}, err
		}
		return rescache.Computed{
			Value:   value,
			Bytes:   bytes,
			Units:   trace.Units,
			Partial: partial,
			Record:  c.RunRecord(),
		}, nil
	}

	var res rescache.Computed
	src := rescache.SourceComputed
	if s.rescache != nil {
		if key, kerr := rescache.Canonical(gen, op, params); kerr == nil {
			res, src, err = s.rescache.Do(ctx, key, gen, run)
		} else {
			res, err = run()
		}
	} else {
		res, err = run()
	}
	out := QueryResult{
		Generation: gen,
		State:      state,
		Throttled:  throttled,
		Source:     src,
		Trace:      trace,
	}
	if err != nil {
		return out, err
	}
	if src == rescache.SourceComputed {
		// Only the caller that actually burned the units pays for them;
		// hits and shared joins ride for free by design.
		s.tenants.Charge(tenant, res.Units)
	}
	out.Value = res.Value
	out.Units = res.Units
	out.Partial = res.Partial
	out.Record = res.Record
	return out, nil
}

// ShapeLimitsFor is ShapeLimits with the tenant envelope applied on
// top: the queue-wide policy shapes first, then the tenant's own
// governor — so a heavy tenant degrades itself before the fleet
// degrades everyone.
func (s *System) ShapeLimitsFor(tenant string, lim exec.Limits) (exec.Limits, admission.State, bool) {
	lim, state := s.ShapeLimits(lim)
	lim, throttled := s.tenants.Shape(tenant, lim)
	return lim, state, throttled
}

// ChargeTenant records completed work against a tenant's envelope for
// paths that compute outside CachedQueryCtx (e.g. the uncached /mine
// handler).
func (s *System) ChargeTenant(tenant string, units int64) {
	s.tenants.Charge(tenant, units)
}

// TenantStats snapshots the tenant governor; the zero value when
// tenant shaping is disabled.
func (s *System) TenantStats() admission.TenantsStats {
	return s.tenants.Stats()
}

// ResultCacheStats snapshots the result cache; the zero value when
// caching is disabled.
func (s *System) ResultCacheStats() rescache.Stats {
	if s.rescache == nil {
		return rescache.Stats{}
	}
	return s.rescache.Stats()
}

// ResultCacheEnabled reports whether the session was built with a
// result cache.
func (s *System) ResultCacheEnabled() bool { return s.rescache != nil }

// RecordQueryRun registers a lineage node for a session-run query and
// attaches the producing run's record. Re-running the same node name
// (a cached repeat of the same session op) only appends the record, so
// provenance accumulates rather than erroring. Inputs default to the
// root dataset.
func (s *System) RecordQueryRun(name string, kind lineage.Kind, op string, params map[string]string, rec *obs.Record, inputs ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(inputs) == 0 {
		inputs = []string{RootDataset}
	}
	if !s.Lineage.Has(name) {
		if _, err := s.Lineage.Record(name, kind, op, params, inputs...); err != nil {
			return err
		}
		s.noteBornLocked(name, s.generation)
	}
	return s.Lineage.AttachRun(name, rec)
}

package system

import "fmt"

// StaleError reports a read of a derived artifact (a mined fascicle or
// a GAP-family table) after an ingestion commit moved the corpus past
// the generation it was computed at. Before generation tracking this
// was a silent-staleness bug: a fascicle mined at generation 2 would be
// served unchanged at generation 5 as if it still described the
// corpus. The artifact is not deleted — Fascicle and Gap return the
// typed error with both generations so the caller can recompute, while
// internal pipelines that already hold a consistent snapshot keep
// using the *Locked accessors unchecked.
type StaleError struct {
	// Name is the artifact that went stale.
	Name string
	// ComputedAt is the corpus generation the artifact was computed at.
	ComputedAt uint64
	// Current is the generation the session serves now.
	Current uint64
}

func (e *StaleError) Error() string {
	return fmt.Sprintf("system: %q is stale: computed at generation %d, corpus is at generation %d",
		e.Name, e.ComputedAt, e.Current)
}

// noteBornLocked records the generation an artifact was computed at.
// Generation 0 means ingestion is disabled and nothing ever goes stale.
func (s *System) noteBornLocked(name string, gen uint64) {
	if gen > 0 {
		s.bornGen[name] = gen
	}
}

// staleLocked reports whether name was computed at an older generation
// than the session currently serves.
func (s *System) staleLocked(name string) error {
	if born, ok := s.bornGen[name]; ok && s.generation > born {
		return &StaleError{Name: name, ComputedAt: born, Current: s.generation}
	}
	return nil
}

// BornGeneration reports the generation name was computed at; zero for
// artifacts that predate ingestion or sessions without it.
func (s *System) BornGeneration(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bornGen[name]
}

package system

import (
	"errors"
	"testing"

	"gea/internal/core"
	"gea/internal/ingest"
)

// TestStaleAfterAppend is the regression test for the silent-staleness
// bug: a fascicle mined (and a GAP table diffed) at one corpus
// generation must not be served unchanged after an append commits the
// next generation — the read fails with a typed *StaleError carrying
// both generations.
func TestStaleAfterAppend(t *testing.T) {
	sys, _, _, _ := newIngestSystem(t)
	batches := emitBatches(t, 2)
	if _, err := sys.IngestAppend(ingest.BatchFromLibraries(batches[0])); err != nil {
		t.Fatal(err)
	}
	// Mine at generation 2 and build a GAP table on top.
	if err := sys.GenerateMetadata(RootDataset, 10); err != nil {
		t.Fatal(err)
	}
	d, err := sys.Dataset(RootDataset)
	if err != nil {
		t.Fatal(err)
	}
	names, err := sys.CalculateFascicles(RootDataset, FascicleOptions{
		K: d.NumTags() * 60 / 100, MinSize: 2, Algorithm: core.GreedyAlgorithm})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no fascicles mined at generation 2")
	}
	fas := names[0]
	node, err := sys.Lineage.Get(fas)
	if err != nil {
		t.Fatal(err)
	}
	if node.Params["generation"] != "2" {
		t.Errorf("lineage generation param = %q, want \"2\"", node.Params["generation"])
	}
	groups, err := sys.FormSUM(fas, RootDataset)
	if err != nil {
		t.Skipf("fascicle %s not pure; corpus too small for the GAP leg: %v", fas, err)
	}
	if _, err := sys.CreateGap("staleGap", groups.InFascicle, groups.Opposite); err != nil {
		t.Fatal(err)
	}
	gapNode, err := sys.Lineage.Get("staleGap")
	if err != nil {
		t.Fatal(err)
	}
	if gapNode.Params["generation"] != "2" {
		t.Errorf("gap lineage generation param = %q, want \"2\"", gapNode.Params["generation"])
	}

	// Still generation 2: both reads are fresh.
	if _, err := sys.Fascicle(fas); err != nil {
		t.Fatalf("fresh fascicle read failed: %v", err)
	}
	if _, err := sys.Gap("staleGap"); err != nil {
		t.Fatalf("fresh gap read failed: %v", err)
	}

	// Append → generation 3: both reads now fail typed.
	if _, err := sys.IngestAppend(ingest.BatchFromLibraries(batches[1])); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Fascicle(fas)
	var stale *StaleError
	if !errors.As(err, &stale) {
		t.Fatalf("fascicle read after append: err=%v, want *StaleError", err)
	}
	if stale.Name != fas || stale.ComputedAt != 2 || stale.Current != 3 {
		t.Errorf("stale = %+v, want {%s 2 3}", stale, fas)
	}
	stale = nil
	if _, err := sys.Gap("staleGap"); !errors.As(err, &stale) {
		t.Fatalf("gap read after append: err=%v, want *StaleError", err)
	} else if stale.ComputedAt != 2 || stale.Current != 3 {
		t.Errorf("gap stale = %+v, want computed 2, current 3", stale)
	}

	// A fascicle mined at the new generation reads fresh, and deleting
	// a stale artifact clears its generation record.
	if got := sys.BornGeneration(fas); got != 2 {
		t.Errorf("BornGeneration(%s) = %d, want 2", fas, got)
	}
	if _, err := sys.DeleteCascade(fas); err != nil {
		t.Fatal(err)
	}
	if got := sys.BornGeneration(fas); got != 0 {
		t.Errorf("BornGeneration after delete = %d, want 0", got)
	}
	names3, err := sys.CalculateFascicles(RootDataset, FascicleOptions{
		K: sys.Data.NumTags() * 60 / 100, MinSize: 2, Algorithm: core.GreedyAlgorithm})
	if err != nil {
		t.Fatal(err)
	}
	if len(names3) > 0 {
		if _, err := sys.Fascicle(names3[0]); err != nil {
			t.Errorf("generation-3 fascicle read failed: %v", err)
		}
	}
}

// TestStaleDisabledWithoutIngestion pins that classic frozen-corpus
// sessions never see StaleError: generation stays 0 and nothing is
// tracked.
func TestStaleDisabledWithoutIngestion(t *testing.T) {
	sys, _ := newSystem(t)
	if _, err := sys.CreateTissueDataset("brain"); err != nil {
		t.Fatal(err)
	}
	if err := sys.GenerateMetadata("brain", 10); err != nil {
		t.Fatal(err)
	}
	names, err := sys.CalculateFascicles("brain", FascicleOptions{
		K: 10, MinSize: 2, Algorithm: core.GreedyAlgorithm})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, err := sys.Fascicle(n); err != nil {
			t.Fatalf("frozen-corpus fascicle read failed: %v", err)
		}
		if sys.BornGeneration(n) != 0 {
			t.Errorf("frozen-corpus session tracked a generation for %s", n)
		}
	}
}

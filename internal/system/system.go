package system

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gea/internal/admission"
	"gea/internal/clean"
	"gea/internal/core"
	"gea/internal/exec"
	"gea/internal/fascicle"
	"gea/internal/genedb"
	"gea/internal/ingest"
	"gea/internal/lineage"
	"gea/internal/obs"
	"gea/internal/relational"
	"gea/internal/rescache"
	"gea/internal/sage"
	"gea/internal/sagegen"
)

// Options configures a GEA session.
type Options struct {
	// User is the account name recorded on catalog rows.
	User string
	// Clean configures pre-processing; the zero value means the thesis
	// defaults (minimum tolerance 1, normalize to 300,000).
	Clean clean.Options
	// SkipCleaning loads the corpus as-is.
	SkipCleaning bool
	// Catalog optionally seeds the gene databases from the generator's
	// ground truth; nil disables genedb integration.
	Catalog *sagegen.Catalog
	// GeneDBSeed seeds the synthetic auxiliary databases.
	GeneDBSeed int64
	// MaxConcurrent bounds how many heavy operations (mining, diffs) may
	// run at once; further callers queue for an admission slot. Zero means
	// the default of 4.
	MaxConcurrent int
	// MaxQueue bounds how many callers may wait for an admission slot;
	// one more is rejected immediately with *admission.ErrOverload. Zero
	// means the default of 16.
	MaxQueue int
	// AdmitTimeout bounds how long a caller queues for an admission slot
	// before failing with *ErrBusy. Zero means the default of 10s.
	AdmitTimeout time.Duration
	// DegradeAtDepth and SaturateAtDepth are the queue depths at which
	// the admission state machine tips into Degraded and Saturated; zero
	// selects the admission package defaults (half and nine-tenths of
	// MaxQueue).
	DegradeAtDepth  int
	SaturateAtDepth int
	// DegradeFactor scales explicit request budgets while the queue is
	// Degraded or Saturated (ShapeLimits); zero means 0.25.
	DegradeFactor float64
	// DegradedBudget caps otherwise-unlimited request budgets while
	// Degraded or Saturated; zero leaves them unlimited.
	DegradedBudget int64
	// AdmissionMetrics optionally records admission queue gauges,
	// counters and wait times; nil disables instrumentation.
	AdmissionMetrics *obs.Registry
	// ResultCache enables the generation-keyed result cache behind
	// CachedQueryCtx: identical (generation, operator, params) requests
	// are served from cache and single-flighted while in flight. Nil
	// (the default) disables caching; the pointed-to zero value selects
	// the rescache defaults.
	ResultCache *rescache.Options
	// TenantPolicy enables per-tenant work-budget envelopes on top of
	// the shared admission queue (ShapeLimitsFor, CachedQueryCtx): a
	// tenant over its envelope has its budgets shaped down exactly like
	// queue-wide degradation, so one heavy tenant degrades itself before
	// degrading the fleet. Nil disables tenant shaping.
	TenantPolicy *admission.TenantPolicy
	// Ingest enables the streaming append path: the session is built on
	// an incrementally maintained ingest.View instead of the one-shot
	// clean.Clean + sage.Build pipeline, and IngestAppendCtx accepts
	// batches of new libraries at runtime, committing them through the
	// configured append store and swapping the maintained view in one
	// generation step. Nil (the default) keeps the classic frozen-corpus
	// behavior. When set, SkipCleaning is ignored (the view owns
	// cleaning) and Clean is read from Ingest.View.Clean.
	Ingest *IngestOptions
	// Workers is the default intra-operation worker count for sharded
	// evaluation; <= 0 means 1 (sequential). It composes with
	// MaxConcurrent without deadlock risk: workers are plain goroutines
	// inside an operation that already holds its admission slot, and they
	// never touch the admission semaphore themselves. Results are
	// bit-identical at any setting. An explicit exec.Limits.Workers on a
	// Ctx call overrides this default.
	Workers int
}

// System is one GEA session over a cleaned corpus. Registry access is
// serialized by an internal mutex, so a System is safe for concurrent use;
// heavy operations (mining, diffs) additionally pass through a bounded
// FIFO admission queue so at most MaxConcurrent compute at once — up to
// MaxQueue further callers wait (giving up with *ErrBusy after
// AdmitTimeout), and past that callers are rejected immediately with
// *admission.ErrOverload. The exported Store, Lineage and Data fields
// are not themselves synchronized: direct access to them concurrently
// with session operations needs external care.
type System struct {
	User        string
	Store       *relational.Store
	Lineage     *lineage.Graph
	GeneDB      *genedb.DB
	Data        *sage.Dataset
	CleanReport *clean.Report
	// LoadReport lists artifacts a salvaging LoadSession had to skip; nil
	// for sessions built fresh with New, non-nil (possibly empty) after a
	// LoadSession.
	LoadReport *LoadReport

	datasets   map[string]*sage.Dataset
	tolerances map[string]map[sage.TagID]float64
	fascicles  map[string]*core.MineResult
	sumys      map[string]*core.Sumy
	enums      map[string]*core.Enum
	gaps       map[string]*core.Gap
	// runCount disambiguates repeated mining runs with the same prefix.
	runCount map[string]int
	// foundPure caches FindPureFascicle results per dataset+property.
	foundPure map[string]string
	// bornGen records the corpus generation each derived artifact was
	// computed at (only when ingestion is enabled); Fascicle and Gap
	// reads compare it against the live generation and return
	// *StaleError after an append moves the corpus on.
	bornGen map[string]uint64

	// view is the maintained ingest view when Options.Ingest was set;
	// generation counts committed corpus generations (starting at 1).
	// Readers snapshot both under mu and then work lock-free on the
	// immutable view: an in-flight operator keeps its generation even
	// while an append commits the next one.
	view       *ingest.View
	generation uint64
	// ingestStore is the durable append store; ingestMetrics feeds the
	// ingest.* series. Both nil unless ingestion is enabled.
	ingestStore   *ingest.Store
	ingestMetrics *obs.Registry
	// ingestMu serializes appends end to end (screen, apply, commit)
	// without blocking readers, who only need mu for the swap window.
	ingestMu sync.Mutex

	// mu serializes access to the registries, catalog and lineage.
	mu sync.Mutex
	// queue is the bounded FIFO admission queue for heavy operations;
	// see internal/admission.
	queue *admission.Queue
	// tenants is the per-tenant envelope governor; nil (the valid no-op
	// governor) unless Options.TenantPolicy was set.
	tenants *admission.Tenants
	// rescache is the generation-keyed result cache; nil unless
	// Options.ResultCache was set.
	rescache *rescache.Cache
	// workers is the session default for exec.Limits.Workers; see
	// Options.Workers.
	workers int
}

// RootDataset is the lineage name of the full cleaned data set.
const RootDataset = "SAGE"

// New builds a session from a raw corpus: cleaning, dense assembly, catalog
// initialization and lineage roots.
func New(corpus *sage.Corpus, opts Options) (*System, error) {
	if opts.User == "" {
		opts.User = "gea"
	}
	var (
		cleaned *sage.Corpus
		report  *clean.Report
		view    *ingest.View
		err     error
	)
	switch {
	case opts.Ingest != nil:
		view, err = ingest.Rebuild(corpus, opts.Ingest.View)
		if err != nil {
			return nil, err
		}
		report = view.Report
	case opts.SkipCleaning:
		cleaned = corpus
	default:
		cleanOpts := opts.Clean
		if cleanOpts.MinTolerance == 0 && cleanOpts.ScaleTo == 0 {
			cleanOpts = clean.DefaultOptions()
		}
		cleaned, report, err = clean.Clean(corpus, cleanOpts)
		if err != nil {
			return nil, err
		}
	}
	var d *sage.Dataset
	if view != nil {
		d = view.Data
	} else {
		d = sage.Build(cleaned)
	}
	sys := &System{
		User:        opts.User,
		Store:       relational.NewStore(),
		Lineage:     lineage.NewGraph(),
		Data:        d,
		CleanReport: report,
		datasets:    map[string]*sage.Dataset{RootDataset: d},
		tolerances:  map[string]map[sage.TagID]float64{},
		fascicles:   map[string]*core.MineResult{},
		sumys:       map[string]*core.Sumy{},
		enums:       map[string]*core.Enum{},
		gaps:        map[string]*core.Gap{},
		runCount:    map[string]int{},
		foundPure:   map[string]string{},
		bornGen:     map[string]uint64{},
		workers:     opts.Workers,
	}
	if opts.ResultCache != nil {
		sys.rescache = rescache.New(*opts.ResultCache)
	}
	if opts.TenantPolicy != nil {
		sys.tenants = admission.NewTenants(*opts.TenantPolicy)
	}
	if view != nil {
		sys.view = view
		sys.generation = 1
		sys.ingestStore = opts.Ingest.Store
		sys.ingestMetrics = opts.Ingest.Metrics
		if sys.ingestMetrics != nil {
			sys.ingestMetrics.Gauge("ingest.generation").Set(1)
		}
	}
	sys.initAdmission(opts)
	if err := initCatalog(sys.Store); err != nil {
		return nil, err
	}
	if err := loadLibrariesRelation(sys.Store, d); err != nil {
		return nil, err
	}
	if _, err := sys.Lineage.Record(RootDataset, lineage.KindDataset, "load",
		map[string]string{"libraries": fmt.Sprint(d.NumLibraries()), "tags": fmt.Sprint(d.NumTags())}); err != nil {
		return nil, err
	}
	if opts.Catalog != nil {
		gdb, err := genedb.Build(opts.Catalog, opts.GeneDBSeed)
		if err != nil {
			return nil, err
		}
		sys.GeneDB = gdb
	}
	return sys, nil
}

// ErrExists is wrapped by creation methods when a name is already taken —
// the redundancy check of Section 4.4.5.2; the caller decides whether to
// delete and recreate.
type ErrExists struct{ Name string }

func (e ErrExists) Error() string { return fmt.Sprintf("system: %q already exists", e.Name) }

func (s *System) checkFresh(name string) error {
	if s.Lineage.Has(name) {
		return ErrExists{Name: name}
	}
	return nil
}

// Dataset returns a named dataset.
func (s *System) Dataset(name string) (*sage.Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.datasetLocked(name)
}

func (s *System) datasetLocked(name string) (*sage.Dataset, error) {
	d, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("system: no dataset %q", name)
	}
	return d, nil
}

// Sumy returns a named SUMY table.
func (s *System) Sumy(name string) (*core.Sumy, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sumyLocked(name)
}

func (s *System) sumyLocked(name string) (*core.Sumy, error) {
	v, ok := s.sumys[name]
	if !ok {
		return nil, fmt.Errorf("system: no SUMY table %q", name)
	}
	return v, nil
}

// Enum returns a named ENUM table.
func (s *System) Enum(name string) (*core.Enum, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.enums[name]
	if !ok {
		return nil, fmt.Errorf("system: no ENUM table %q", name)
	}
	return v, nil
}

// Gap returns a named GAP table. After an ingestion commit moves the
// corpus past the generation the table was computed at, the read fails
// with *StaleError rather than silently serving results about an older
// corpus; recompute (or read the generation-suffixed lineage) instead.
func (s *System) Gap(name string) (*core.Gap, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.staleLocked(name); err != nil {
		return nil, err
	}
	return s.gapLocked(name)
}

func (s *System) gapLocked(name string) (*core.Gap, error) {
	v, ok := s.gaps[name]
	if !ok {
		return nil, fmt.Errorf("system: no GAP table %q", name)
	}
	return v, nil
}

// Fascicle returns a named mined fascicle. Like Gap, a read after the
// corpus generation moved past the mine fails with *StaleError.
func (s *System) Fascicle(name string) (*core.MineResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.staleLocked(name); err != nil {
		return nil, err
	}
	return s.fascicleLocked(name)
}

func (s *System) fascicleLocked(name string) (*core.MineResult, error) {
	v, ok := s.fascicles[name]
	if !ok {
		return nil, fmt.Errorf("system: no fascicle %q", name)
	}
	return v, nil
}

// RegisterSumy adds an externally built SUMY table (e.g. a selection result)
// to the session under lineage tracking.
func (s *System) RegisterSumy(v *core.Sumy, op string, inputs ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkFresh(v.Name); err != nil {
		return err
	}
	if _, err := s.Lineage.Record(v.Name, lineage.KindSumy, op, nil, inputs...); err != nil {
		return err
	}
	s.sumys[v.Name] = v
	return nil
}

// RegisterGap adds an externally built GAP table to the session.
func (s *System) RegisterGap(v *core.Gap, op string, inputs ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkFresh(v.Name); err != nil {
		return err
	}
	if _, err := s.Lineage.Record(v.Name, lineage.KindGap, op, nil, inputs...); err != nil {
		return err
	}
	s.gaps[v.Name] = v
	return nil
}

// CreateTissueDataset materializes the system-defined tissue-type data set
// (Figure 4.4); its lineage name is the tissue name.
func (s *System) CreateTissueDataset(tissue string) (*sage.Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkFresh(tissue); err != nil {
		return nil, err
	}
	d, err := s.Data.SubsetByTissue(tissue)
	if err != nil {
		return nil, err
	}
	s.datasets[tissue] = d
	if _, err := s.Lineage.Record(tissue, lineage.KindDataset, "select-tissue",
		map[string]string{"tissue": tissue}, RootDataset); err != nil {
		return nil, err
	}
	tci, err := s.Store.Get(TblTypeCreateInfo)
	if err != nil {
		return nil, err
	}
	tci.MustInsert(relational.S(s.User), relational.S(tissue), relational.S(tissue+"Table"), relational.I(1))
	return d, nil
}

// CreateCustomDataset materializes a user-defined tissue type from library
// names (Figure 4.15).
func (s *System) CreateCustomDataset(name string, libNames []string) (*sage.Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkFresh(name); err != nil {
		return nil, err
	}
	d, err := s.Data.SubsetByNames(libNames)
	if err != nil {
		return nil, err
	}
	s.datasets[name] = d
	if _, err := s.Lineage.Record(name, lineage.KindDataset, "select-custom",
		map[string]string{"libraries": fmt.Sprint(len(libNames))}, RootDataset); err != nil {
		return nil, err
	}
	tci, err := s.Store.Get(TblTypeCreateInfo)
	if err != nil {
		return nil, err
	}
	tci.MustInsert(relational.S(s.User), relational.S(name), relational.S(name+"Table"), relational.I(1))
	return d, nil
}

// GenerateMetadata builds and stores the tolerance vector for a dataset
// (Figure 4.5). percent is the compact tolerance as a percentage of each
// attribute's width.
func (s *System) GenerateMetadata(datasetName string, percent float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := s.datasetLocked(datasetName)
	if err != nil {
		return err
	}
	tol, err := clean.ToleranceVector(d, percent)
	if err != nil {
		return err
	}
	s.tolerances[datasetName] = tol
	return nil
}

// FascicleOptions mirror the calculate-fascicles window (Figure 4.6).
type FascicleOptions struct {
	K         int // number of compact attributes
	MinSize   int // minimum libraries per fascicle
	BatchSize int
	Algorithm core.Algorithm
}

// CalculateFascicles mines a dataset and registers each fascicle (with its
// SUMY and ENUM forms) as <dataset><K>k_<i>; it returns the names.
// GenerateMetadata must have been called for the dataset.
func (s *System) CalculateFascicles(datasetName string, opts FascicleOptions) ([]string, error) {
	names, _, err := s.calculateFascicles(s.background(), datasetName, opts)
	return names, err
}

// calculateFascicles is the metered implementation behind both the legacy
// method and CalculateFasciclesCtx. The registry lock is held only around
// lookup and registration; the mining itself — the expensive part — runs
// unlocked, panic-isolated and metered by the caller's Ctl.
func (s *System) calculateFascicles(c *exec.Ctl, datasetName string, opts FascicleOptions) (_ []string, partial bool, err error) {
	sp := c.StartSpan("system.CalculateFascicles")
	sp.SetInput("dataset %s, k=%d", datasetName, opts.K)
	defer c.EndSpan(sp, &partial, &err)
	s.mu.Lock()
	d, err := s.datasetLocked(datasetName)
	if err != nil {
		s.mu.Unlock()
		return nil, false, err
	}
	// The generation the mine describes is the one d was snapshotted at,
	// not the one current when registration finally runs — an append may
	// commit while the mine computes.
	genAtSnap := s.generation
	tol, ok := s.tolerances[datasetName]
	if !ok {
		s.mu.Unlock()
		return nil, false, fmt.Errorf("system: generate metadata for %q before calculating fascicles", datasetName)
	}
	prefix := fmt.Sprintf("%s%dk", datasetName, opts.K/1000)
	if opts.K < 1000 {
		prefix = fmt.Sprintf("%s%d", datasetName, opts.K)
	}
	// Repeating a run with the same parameters gets a fresh run suffix, as
	// the GUI would append to the fascicles list rather than overwrite.
	base := prefix
	if n := s.runCount[base]; n > 0 {
		prefix = fmt.Sprintf("%s_r%d", base, n)
	}
	s.runCount[base]++
	s.mu.Unlock()

	params := fascicle.Params{
		K: opts.K, Tolerance: tol, MinSize: opts.MinSize, BatchSize: opts.BatchSize,
	}
	var results []core.MineResult
	err = exec.Guard("system.CalculateFascicles", prefix, func() error {
		var err error
		results, partial, err = core.MineWith(c, prefix, d, params, opts.Algorithm)
		return err
	})
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	fasFile, err := s.Store.Get(TblFasFile)
	if err != nil {
		return nil, false, err
	}
	fasInfo, err := s.Store.Get(TblFasInfo)
	if err != nil {
		return nil, false, err
	}
	fasLib, err := s.Store.Get(TblFasLib)
	if err != nil {
		return nil, false, err
	}
	fasFile.MustInsert(relational.S(s.User), relational.S(prefix), relational.S(datasetName),
		relational.I(int64(opts.K)), relational.S(datasetName+"file.b"),
		relational.S(datasetName+"file.meta"), relational.I(int64(opts.BatchSize)),
		relational.I(int64(opts.MinSize)))

	lineageParams := map[string]string{
		"k": fmt.Sprint(opts.K), "minSize": fmt.Sprint(opts.MinSize),
		"batch": fmt.Sprint(opts.BatchSize), "algorithm": opts.Algorithm.String(),
	}
	if partial {
		// A budget-stopped run is registered as such: the lineage records
		// that the fascicle list may be incomplete.
		lineageParams["partial"] = "true"
	}
	if genAtSnap > 0 {
		lineageParams["generation"] = fmt.Sprint(genAtSnap)
	}
	var names []string
	//lint:gea ctlcharge -- registers already-mined results; a mid-loop stop would strand half-registered fascicles in the lineage and relational stores
	for i := range results {
		r := results[i]
		name := fmt.Sprintf("%s_%d", prefix, i+1)
		if err := s.checkFresh(name); err != nil {
			return nil, false, err
		}
		if _, err := s.Lineage.Record(name, lineage.KindFascicle, "mine", lineageParams, datasetName); err != nil {
			return nil, false, err
		}
		s.fascicles[name] = &r
		s.noteBornLocked(name, genAtSnap)
		fasInfo.MustInsert(relational.S(s.User), relational.S(name), relational.S(prefix),
			relational.B(r.Enum.IsPure(sage.PropCancer)), relational.B(r.Enum.IsPure(sage.PropNormal)),
			relational.B(r.Enum.IsPure(sage.PropBulkTissue)), relational.B(r.Enum.IsPure(sage.PropCellLine)))
		for _, row := range r.Fascicle.Rows {
			fasLib.MustInsert(relational.S(s.User), relational.S(name), relational.I(int64(d.Libs[row].ID)))
		}
		names = append(names, name)
	}
	return names, partial, nil
}

// PurityCheck reports whether the fascicle is pure for the property
// (Figure 4.8).
func (s *System) PurityCheck(fasName string, p sage.Property) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, err := s.fascicleLocked(fasName)
	if err != nil {
		return false, err
	}
	return r.Enum.IsPure(p), nil
}

// CaseGroups names the three SUMY/ENUM pairs of the case-study setup.
type CaseGroups struct {
	// InFascicle holds the fascicle's own libraries (e.g.
	// brain35k_4CancerFasTbl).
	InFascicle string
	// SameNotInFascicle holds libraries with the fascicle's property that
	// are outside it (e.g. brain35k_4CanNotInFasTbl).
	SameNotInFascicle string
	// Opposite holds the libraries with the opposite neoplastic state (e.g.
	// brain35k_4NormalTable).
	Opposite string
}

// FormSUM builds, for a pure cancerous or pure normal fascicle, the three
// control-group SUMY tables of case study 1 over the fascicle's compact tags
// (Figure 4.8's formSUM button). Non-pure fascicles are rejected: "if a
// fascicle is non-pure ... the analysis of this fascicle is terminated".
func (s *System) FormSUM(fasName, datasetName string) (CaseGroups, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var g CaseGroups
	r, err := s.fascicleLocked(fasName)
	if err != nil {
		return g, err
	}
	d, err := s.datasetLocked(datasetName)
	if err != nil {
		return g, err
	}
	if r.Enum.Data != d {
		return g, fmt.Errorf("system: fascicle %s was mined on a different dataset than %q", fasName, datasetName)
	}
	var inProp, outProp sage.Property
	var inLabel, outLabel string
	switch {
	case r.Enum.IsPure(sage.PropCancer):
		inProp, outProp = sage.PropCancer, sage.PropNormal
		inLabel, outLabel = "CancerFasTbl", "NormalTable"
	case r.Enum.IsPure(sage.PropNormal):
		inProp, outProp = sage.PropNormal, sage.PropCancer
		inLabel, outLabel = "NormalFasTbl", "CancerTable"
	default:
		return g, fmt.Errorf("system: fascicle %s is not pure; analysis terminated", fasName)
	}

	// FormSUM is idempotent: if the three tables exist already (e.g. a
	// later case study revisits the same fascicle), return them.
	suffixProbe := "CanNotInFasTbl"
	if inProp == sage.PropNormal {
		suffixProbe = "NorNotInFasTbl"
	}
	if _, err1 := s.sumyLocked(fasName + inLabel); err1 == nil {
		if _, err2 := s.sumyLocked(fasName + suffixProbe); err2 == nil {
			if _, err3 := s.sumyLocked(fasName + outLabel); err3 == nil {
				return CaseGroups{
					InFascicle:        fasName + inLabel,
					SameNotInFascicle: fasName + suffixProbe,
					Opposite:          fasName + outLabel,
				}, nil
			}
		}
	}

	inFas := map[int]bool{}
	for _, row := range r.Fascicle.Rows {
		inFas[row] = true
	}
	var sameRows, oppRows []int
	for i, m := range d.Libs {
		switch {
		case inFas[i]:
		case m.HasProperty(inProp):
			sameRows = append(sameRows, i)
		case m.HasProperty(outProp):
			oppRows = append(oppRows, i)
		}
	}

	mk := func(label string, rows []int) (string, error) {
		name := fasName + label
		if err := s.checkFresh(name); err != nil {
			return "", err
		}
		e, err := core.NewEnum(name+"Enum", d, rows, r.Fascicle.CompactCols)
		if err != nil {
			return "", err
		}
		sm, err := core.Aggregate(name, e, core.AggregateOptions{})
		if err != nil {
			return "", err
		}
		if _, err := s.Lineage.Record(name, lineage.KindSumy, "aggregate",
			map[string]string{"libraries": fmt.Sprint(len(rows))}, fasName); err != nil {
			return "", err
		}
		s.enums[name+"Enum"] = e
		s.sumys[name] = sm
		if err := s.recordSumCatalog(name, fasName, label, d, rows); err != nil {
			return "", err
		}
		return name, nil
	}

	if g.InFascicle, err = mk(inLabel, r.Fascicle.Rows); err != nil {
		return g, err
	}
	suffix := "CanNotInFasTbl"
	if inProp == sage.PropNormal {
		suffix = "NorNotInFasTbl"
	}
	if g.SameNotInFascicle, err = mk(suffix, sameRows); err != nil {
		return g, err
	}
	if g.Opposite, err = mk(outLabel, oppRows); err != nil {
		return g, err
	}
	return g, nil
}

func (s *System) recordSumCatalog(name, fasName, category string, d *sage.Dataset, rows []int) error {
	sumInfo, err := s.Store.Get(TblSumInfo)
	if err != nil {
		return err
	}
	sumLib, err := s.Store.Get(TblSumLib)
	if err != nil {
		return err
	}
	sumInfo.MustInsert(relational.S(s.User), relational.S(name), relational.S(fasName),
		relational.S(category), relational.I(1))
	for _, r := range rows {
		sumLib.MustInsert(relational.S(s.User), relational.S(name), relational.I(int64(d.Libs[r].ID)))
	}
	return nil
}

// CreateGap runs diff() on two registered SUMY tables and registers the
// result (Figure 4.9's Find GAP button).
func (s *System) CreateGap(name, sumy1, sumy2 string) (*core.Gap, error) {
	g, _, err := s.createGap(s.background(), name, sumy1, sumy2)
	return g, err
}

// createGap computes the diff unlocked and metered, holding the registry
// lock only for lookup and registration.
func (s *System) createGap(c *exec.Ctl, name, sumy1, sumy2 string) (_ *core.Gap, partial bool, err error) {
	sp := c.StartSpan("system.CreateGap")
	sp.SetInput("%s = diff(%s, %s)", name, sumy1, sumy2)
	defer c.EndSpan(sp, &partial, &err)
	s.mu.Lock()
	if err := s.checkFresh(name); err != nil {
		s.mu.Unlock()
		return nil, false, err
	}
	a, err := s.sumyLocked(sumy1)
	if err != nil {
		s.mu.Unlock()
		return nil, false, err
	}
	b, err := s.sumyLocked(sumy2)
	if err != nil {
		s.mu.Unlock()
		return nil, false, err
	}
	genAtSnap := s.generation
	s.mu.Unlock()

	var g *core.Gap
	err = exec.Guard("system.CreateGap", name, func() error {
		var err error
		g, partial, err = core.DiffWith(c, name, a, b)
		return err
	})
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// The name may have been taken while the diff computed; losing that
	// race is reported the same way as an up-front collision.
	if err := s.checkFresh(name); err != nil {
		return nil, false, err
	}
	params := map[string]string{}
	if partial {
		params["partial"] = "true"
	}
	if genAtSnap > 0 {
		params["generation"] = fmt.Sprint(genAtSnap)
	}
	if len(params) == 0 {
		params = nil
	}
	if _, err := s.Lineage.Record(name, lineage.KindGap, "diff", params, sumy1, sumy2); err != nil {
		return nil, false, err
	}
	s.gaps[name] = g
	s.noteBornLocked(name, genAtSnap)
	gapInfo, err := s.Store.Get(TblGapInfo)
	if err != nil {
		return nil, false, err
	}
	gapInfo.MustInsert(relational.S(s.User), relational.S(name), relational.S("gap"),
		relational.I(1), relational.S(sumy1), relational.S(sumy2))
	return g, partial, nil
}

// CalculateTopGap builds the top-x gap table <gap>_<x> (Figure 4.19).
func (s *System) CalculateTopGap(gapName string, x int) (*core.Gap, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, err := s.gapLocked(gapName)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s_%d", gapName, x)
	if err := s.checkFresh(name); err != nil {
		return nil, err
	}
	top, err := core.TopGaps(name, g, 0, x)
	if err != nil {
		return nil, err
	}
	if _, err := s.Lineage.Record(name, lineage.KindTopGap, "topgap",
		map[string]string{"x": fmt.Sprint(x)}, gapName); err != nil {
		return nil, err
	}
	s.gaps[name] = top
	s.noteBornLocked(name, s.generation)
	topRec, err := s.Store.Get(TblTopRec)
	if err != nil {
		return nil, err
	}
	topRec.MustInsert(relational.S(s.User), relational.S(name), relational.S(gapName), relational.I(int64(x)))
	return top, nil
}

// CompareGaps combines two GAP tables with a set operation and registers the
// compare table (Figure 4.13).
func (s *System) CompareGaps(name, gap1, gap2 string, op core.CompareOp) (*core.Gap, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkFresh(name); err != nil {
		return nil, err
	}
	a, err := s.gapLocked(gap1)
	if err != nil {
		return nil, err
	}
	b, err := s.gapLocked(gap2)
	if err != nil {
		return nil, err
	}
	g, err := core.Compare(name, a, b, op)
	if err != nil {
		return nil, err
	}
	if _, err := s.Lineage.Record(name, lineage.KindCompare, "compare-"+op.String(), nil, gap1, gap2); err != nil {
		return nil, err
	}
	s.gaps[name] = g
	s.noteBornLocked(name, s.generation)
	compInfo, err := s.Store.Get(TblGapCompInfo)
	if err != nil {
		return nil, err
	}
	compInfo.MustInsert(relational.S(s.User), relational.S(name), relational.S("compare"),
		relational.S(gap1), relational.S(gap2), relational.S(op.String()))
	return g, nil
}

// DeleteCascade removes a node and everything derived from it from the
// session and the lineage — the second deletion option of Section 4.4.2. It
// returns the deleted names (the confirmation check of Section 4.4.5.3).
func (s *System) DeleteCascade(name string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	deleted, err := s.Lineage.DeleteCascade(name)
	if err != nil {
		return nil, err
	}
	for _, n := range deleted {
		delete(s.datasets, n)
		delete(s.fascicles, n)
		delete(s.sumys, n)
		delete(s.enums, n)
		delete(s.gaps, n)
		delete(s.bornGen, n)
	}
	return deleted, nil
}

// LibraryInfo answers the library-information search (Figure 4.23) by ID or
// name.
func (s *System) LibraryInfo(idOrName string) (sage.LibraryMeta, error) {
	for _, m := range s.Data.Libs {
		if m.Name == idOrName || fmt.Sprint(m.ID) == idOrName {
			return m, nil
		}
	}
	return sage.LibraryMeta{}, fmt.Errorf("system: no library %q", idOrName)
}

// TissueTypes answers the tissue-type search (Figure 4.24): tissue type ->
// library names.
func (s *System) TissueTypes() map[string][]string {
	out := map[string][]string{}
	for _, m := range s.Data.Libs {
		out[m.Tissue] = append(out[m.Tissue], m.Name)
	}
	for _, names := range out {
		sort.Strings(names)
	}
	return out
}

// FindPureFascicle automates the analyst's iteration of the case studies:
// starting from a strict compact-attribute requirement and loosening it, it
// mines the dataset until a fascicle pure for the property appears, and
// returns the tightest (most compact tags) such fascicle's name. The right
// k differs per tissue (the thesis stores a per-tissue threshold in CDInfo);
// scanning from strict to loose finds the highest k the data supports.
// GenerateMetadata must have been called for the dataset.
func (s *System) FindPureFascicle(datasetName string, prop sage.Property, minSize int) (string, error) {
	return s.FindPureFascicleWith(datasetName, prop, minSize, core.LatticeAlgorithm)
}

// FindPureFascicleWith is FindPureFascicle with an explicit mining
// algorithm. Use the greedy single-pass miner for full-scale corpora (tens
// of thousands of tags): the exact lattice's candidate frontier grows
// combinatorially there, which is exactly why the original system ran the
// [JMN99] single-pass algorithm.
func (s *System) FindPureFascicleWith(datasetName string, prop sage.Property, minSize int, alg core.Algorithm) (string, error) {
	name, _, err := s.findPureFascicle(s.background(), datasetName, prop, minSize, alg)
	return name, err
}

// findPureFascicle is the metered search shared by the legacy methods and
// FindPureFascicleWithCtx; one Ctl spans the whole strict-to-loose scan, so
// a budget covers the search as a whole, not each mining run separately.
func (s *System) findPureFascicle(c *exec.Ctl, datasetName string, prop sage.Property, minSize int, alg core.Algorithm) (_ string, partial bool, err error) {
	sp := c.StartSpan("system.FindPureFascicle")
	sp.SetInput("dataset %s, prop=%v, minSize=%d", datasetName, prop, minSize)
	defer c.EndSpan(sp, &partial, &err)
	cacheKey := fmt.Sprintf("%s|%v|%d|%v", datasetName, prop, minSize, alg)
	s.mu.Lock()
	if name, ok := s.foundPure[cacheKey]; ok {
		if _, err := s.fascicleLocked(name); err == nil && s.staleLocked(name) == nil {
			s.mu.Unlock()
			return name, false, nil
		}
		delete(s.foundPure, cacheKey) // deleted or gone stale since; redo the search
	}
	d, err := s.datasetLocked(datasetName)
	if err != nil {
		s.mu.Unlock()
		return "", false, err
	}
	if _, ok := s.tolerances[datasetName]; !ok {
		s.mu.Unlock()
		return "", false, fmt.Errorf("system: generate metadata for %q before mining", datasetName)
	}
	s.mu.Unlock()

	sawPartial := false
	for kpct := 75; kpct >= 45; kpct -= 5 {
		names, partial, err := s.calculateFascicles(c, datasetName, FascicleOptions{
			K: d.NumTags() * kpct / 100, MinSize: minSize, Algorithm: alg,
		})
		if err != nil {
			return "", sawPartial, err
		}
		sawPartial = sawPartial || partial
		s.mu.Lock()
		best, bestCompact := "", -1
		for _, n := range names {
			r, err := s.fascicleLocked(n)
			if err != nil {
				s.mu.Unlock()
				return "", sawPartial, err
			}
			if !r.Enum.IsPure(prop) {
				continue
			}
			if r.Fascicle.NumCompact() > bestCompact {
				bestCompact, best = r.Fascicle.NumCompact(), n
			}
		}
		if best != "" {
			cd, err := s.Store.Get(TblCDInfo)
			if err != nil {
				s.mu.Unlock()
				return "", sawPartial, err
			}
			cd.MustInsert(relational.S(datasetName), relational.I(int64(d.NumTags()*kpct/100)))
			s.foundPure[cacheKey] = best
			s.mu.Unlock()
			return best, sawPartial, nil
		}
		s.mu.Unlock()
		if partial {
			// The budget ran out mid-scan; looser thresholds would only mine
			// against an already-exhausted budget. A search has no usable
			// partial value, so exhaustion surfaces as an error here.
			return "", true, fmt.Errorf("system: work budget exhausted before a pure %v fascicle was found in %q: %w",
				prop, datasetName, exec.ErrBudget)
		}
	}
	return "", sawPartial, fmt.Errorf("system: no pure %v fascicle found in %q at any threshold", prop, datasetName)
}

// DropContents frees a derived GAP-family table's contents while keeping its
// lineage metadata — the first deletion option of Section 4.4.2 ("the user
// may choose to remove only the contents of a table ... If the user wants to
// re-generate the content of the table, the stored metadata can be used
// directly"). Only intermediate results (diff, top-gap and compare tables)
// are droppable; base tables and fascicles are not.
func (s *System) DropContents(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.gaps[name]; !ok {
		return fmt.Errorf("system: %q is not a droppable GAP-family table", name)
	}
	if err := s.Lineage.DropContents(name); err != nil {
		return err
	}
	delete(s.gaps, name)
	return nil
}

// Regenerate rebuilds a content-dropped table (and any dropped tables it
// depends on) by replaying the operations recorded in the lineage.
func (s *System) Regenerate(name string) (*core.Gap, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	plan, err := s.Lineage.RegenerationPlan(name)
	if err != nil {
		return nil, err
	}
	for _, node := range plan {
		if !node.ContentsDropped {
			continue
		}
		g, err := s.replay(node)
		if err != nil {
			return nil, fmt.Errorf("system: regenerating %q: %v", node.Name, err)
		}
		s.gaps[node.Name] = g
		if err := s.Lineage.MarkRegenerated(node.Name); err != nil {
			return nil, err
		}
	}
	return s.gapLocked(name)
}

// replay re-executes one recorded operation.
func (s *System) replay(node *lineage.Node) (*core.Gap, error) {
	switch {
	case node.Operation == "diff":
		if len(node.Inputs) != 2 {
			return nil, fmt.Errorf("diff needs 2 inputs, recorded %d", len(node.Inputs))
		}
		a, err := s.sumyLocked(node.Inputs[0])
		if err != nil {
			return nil, err
		}
		b, err := s.sumyLocked(node.Inputs[1])
		if err != nil {
			return nil, err
		}
		return core.Diff(node.Name, a, b)
	case node.Operation == "topgap":
		if len(node.Inputs) != 1 {
			return nil, fmt.Errorf("topgap needs 1 input, recorded %d", len(node.Inputs))
		}
		x, err := strconv.Atoi(node.Params["x"])
		if err != nil {
			return nil, fmt.Errorf("topgap has no recorded x: %v", err)
		}
		g, err := s.gapLocked(node.Inputs[0])
		if err != nil {
			return nil, err
		}
		return core.TopGaps(node.Name, g, 0, x)
	case strings.HasPrefix(node.Operation, "compare-"):
		if len(node.Inputs) != 2 {
			return nil, fmt.Errorf("compare needs 2 inputs, recorded %d", len(node.Inputs))
		}
		var op core.CompareOp
		switch strings.TrimPrefix(node.Operation, "compare-") {
		case "union":
			op = core.OpUnion
		case "intersect":
			op = core.OpIntersect
		case "difference":
			op = core.OpDifference
		default:
			return nil, fmt.Errorf("unknown compare operation %q", node.Operation)
		}
		a, err := s.gapLocked(node.Inputs[0])
		if err != nil {
			return nil, err
		}
		b, err := s.gapLocked(node.Inputs[1])
		if err != nil {
			return nil, err
		}
		return core.Compare(node.Name, a, b, op)
	default:
		return nil, fmt.Errorf("operation %q is not replayable", node.Operation)
	}
}

// ListSumys lists the SUMY tables of a fascicle (Figure 4.9's Summary
// Lists, sorted by fascicle). An empty fascicle name lists all.
func (s *System) ListSumys(fascicle string) ([]string, error) {
	sumInfo, err := s.Store.Get(TblSumInfo)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, r := range sumInfo.Rows {
		if fascicle == "" || r[2].Str() == fascicle {
			out = append(out, r[1].Str())
		}
	}
	sort.Strings(out)
	return out, nil
}

// ListGaps lists the GAP tables derived (directly) from the named SUMY
// table, or all GAP tables when the name is empty (the Figure 4.19 GAP
// list).
func (s *System) ListGaps(sumy string) ([]string, error) {
	gapInfo, err := s.Store.Get(TblGapInfo)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, r := range gapInfo.Rows {
		if sumy == "" || r[4].Str() == sumy || r[5].Str() == sumy {
			out = append(out, r[1].Str())
		}
	}
	sort.Strings(out)
	return out, nil
}

// ListTopGaps lists the top-gap tables of a GAP table (the Figure 4.20 Top
// GAP list), or all when the name is empty.
func (s *System) ListTopGaps(gapName string) ([]string, error) {
	topRec, err := s.Store.Get(TblTopRec)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, r := range topRec.Rows {
		if gapName == "" || r[2].Str() == gapName {
			out = append(out, r[1].Str())
		}
	}
	sort.Strings(out)
	return out, nil
}

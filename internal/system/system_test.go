package system

import (
	"errors"
	"testing"

	"gea/internal/core"
	"gea/internal/sage"
	"gea/internal/sagegen"
)

// newSystem builds a session over the small synthetic corpus with genedb.
func newSystem(t *testing.T) (*System, *sagegen.Result) {
	t.Helper()
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(res.Corpus, Options{User: "jessica", Catalog: res.Catalog, GeneDBSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys, res
}

// runBrainPipeline executes steps 1-6 of case study 1 and returns the case
// groups plus the first pure-cancer fascicle name.
func runBrainPipeline(t *testing.T, sys *System) (CaseGroups, string) {
	t.Helper()
	brain, err := sys.CreateTissueDataset("brain")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.GenerateMetadata("brain", 10); err != nil {
		t.Fatal(err)
	}
	_ = brain
	pure, err := sys.FindPureFascicle("brain", sage.PropCancer, 3)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := sys.FormSUM(pure, "brain")
	if err != nil {
		t.Fatal(err)
	}
	return groups, pure
}

func TestNewInitializesCatalog(t *testing.T) {
	sys, _ := newSystem(t)
	libs, err := sys.Store.Get(TblLibraries)
	if err != nil {
		t.Fatal(err)
	}
	if libs.Len() != sys.Data.NumLibraries() {
		t.Errorf("Libraries has %d rows, want %d", libs.Len(), sys.Data.NumLibraries())
	}
	sageInfo, err := sys.Store.Get(TblSageInfo)
	if err != nil {
		t.Fatal(err)
	}
	if sageInfo.Len() != 1 || sageInfo.Rows[0][0].Int() != int64(sys.Data.NumTags()) {
		t.Errorf("SageInfo = %v", sageInfo.Rows)
	}
	if sys.CleanReport == nil || sys.CleanReport.UniqueTagsAfter >= sys.CleanReport.UniqueTagsBefore {
		t.Error("cleaning report missing or implausible")
	}
	if sys.GeneDB == nil {
		t.Error("genedb not built despite catalog")
	}
	if !sys.Lineage.Has(RootDataset) {
		t.Error("root dataset not in lineage")
	}
}

func TestCaseStudy1Pipeline(t *testing.T) {
	sys, res := newSystem(t)
	groups, pure := runBrainPipeline(t, sys)

	// The in-fascicle group should consist of planted core libraries.
	fas, err := sys.Fascicle(pure)
	if err != nil {
		t.Fatal(err)
	}
	core := map[string]bool{}
	for _, n := range res.FascicleCore["brain"] {
		core[n] = true
	}
	brain, _ := sys.Dataset("brain")
	coreHits := 0
	for _, n := range fas.Fascicle.LibraryNames(brain) {
		if core[n] {
			coreHits++
		}
	}
	if coreHits < 3 {
		t.Errorf("pure fascicle has only %d core members", coreHits)
	}

	// Step 6: GAP between cancer-in-fascicle and normal.
	gap, err := sys.CreateGap(pure+"canvsnor_gap", groups.InFascicle, groups.Opposite)
	if err != nil {
		t.Fatal(err)
	}
	if gap.Len() == 0 {
		t.Fatal("empty GAP")
	}
	top, err := sys.CalculateTopGap(pure+"canvsnor_gap", 10)
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() != 10 {
		t.Errorf("top gap = %d rows", top.Len())
	}
	// The planted signature means strong gaps must exist.
	if v := top.Rows[0].Values[0]; v.Null || v.V == 0 {
		t.Errorf("top gap value = %v", v)
	}

	// Lineage knows the whole chain.
	plan := sys.Lineage.Tree()
	if plan == "" {
		t.Error("empty lineage tree")
	}
	desc, err := sys.Lineage.Descendants("brain")
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) < 5 {
		t.Errorf("brain descendants = %v", desc)
	}
}

func TestRedundancyChecks(t *testing.T) {
	sys, _ := newSystem(t)
	if _, err := sys.CreateTissueDataset("brain"); err != nil {
		t.Fatal(err)
	}
	_, err := sys.CreateTissueDataset("brain")
	var exists ErrExists
	if !errors.As(err, &exists) || exists.Name != "brain" {
		t.Errorf("duplicate dataset err = %v", err)
	}
	// After a cascade delete the name is free again.
	if _, err := sys.DeleteCascade("brain"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateTissueDataset("brain"); err != nil {
		t.Errorf("recreate after delete: %v", err)
	}
}

func TestDeleteCascadeRemovesDerived(t *testing.T) {
	sys, _ := newSystem(t)
	groups, pure := runBrainPipeline(t, sys)
	if _, err := sys.CreateGap("g1", groups.InFascicle, groups.Opposite); err != nil {
		t.Fatal(err)
	}
	deleted, err := sys.DeleteCascade(pure)
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) < 4 { // fascicle + 3 SUMYs + gap
		t.Errorf("deleted = %v", deleted)
	}
	if _, err := sys.Gap("g1"); err == nil {
		t.Error("gap survived cascade")
	}
	if _, err := sys.Sumy(groups.InFascicle); err == nil {
		t.Error("sumy survived cascade")
	}
}

func TestFormSUMRejectsNonPureAndWrongDataset(t *testing.T) {
	sys, _ := newSystem(t)
	_, pure := runBrainPipeline(t, sys)
	// Wrong dataset.
	if _, err := sys.CreateTissueDataset("breast"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.FormSUM(pure, "breast"); err == nil {
		t.Error("FormSUM with mismatched dataset: expected error")
	}
	if _, err := sys.FormSUM("nope", "brain"); err == nil {
		t.Error("FormSUM with unknown fascicle: expected error")
	}
}

func TestCompareGapsAndQueries(t *testing.T) {
	sys, _ := newSystem(t)
	groups, pure := runBrainPipeline(t, sys)
	if _, err := sys.CreateGap("canvsnor", groups.InFascicle, groups.Opposite); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateGap("canvscnif", groups.InFascicle, groups.SameNotInFascicle); err != nil {
		t.Fatal(err)
	}
	cmp, err := sys.CompareGaps("cmp1", "canvsnor", "canvscnif", core.OpIntersect)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Cols) != 2 {
		t.Errorf("compare cols = %v", cmp.Cols)
	}
	// Case study insight: gaps vs normal are larger than gaps vs
	// cancer-outside ("the expression values of the cancerous tissues inside
	// and outside of the fascicle are more similar than ... normal").
	var sumNor, sumCnif float64
	var n int
	for _, r := range cmp.Rows {
		if !r.Values[0].Null && !r.Values[1].Null {
			sumNor += abs(r.Values[0].V)
			sumCnif += abs(r.Values[1].V)
			n++
		}
	}
	if n > 0 && sumNor <= sumCnif {
		t.Errorf("expected |gap vs normal| (%.1f) > |gap vs cancer-outside| (%.1f)", sumNor, sumCnif)
	}
	_ = pure

	// Catalog rows recorded.
	ci, err := sys.Store.Get(TblGapCompInfo)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Len() != 1 {
		t.Errorf("GapCompInfo = %d rows", ci.Len())
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestCustomDataset(t *testing.T) {
	sys, _ := newSystem(t)
	names := []string{sys.Data.Libs[0].Name, sys.Data.Libs[5].Name}
	d, err := sys.CreateCustomDataset("newBrain", names)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumLibraries() != 2 {
		t.Errorf("custom dataset = %d libraries", d.NumLibraries())
	}
	if _, err := sys.CreateCustomDataset("bad", []string{"nope"}); err == nil {
		t.Error("unknown library: expected error")
	}
}

func TestSearches(t *testing.T) {
	sys, _ := newSystem(t)
	m, err := sys.LibraryInfo("1")
	if err != nil || m.ID != 1 {
		t.Errorf("LibraryInfo by ID = %+v, %v", m, err)
	}
	m2, err := sys.LibraryInfo(m.Name)
	if err != nil || m2.Name != m.Name {
		t.Errorf("LibraryInfo by name = %+v, %v", m2, err)
	}
	if _, err := sys.LibraryInfo("nope"); err == nil {
		t.Error("unknown library: expected error")
	}
	tt := sys.TissueTypes()
	if len(tt["brain"]) == 0 {
		t.Errorf("TissueTypes = %v", tt)
	}
}

func TestRegisterSumyAndGap(t *testing.T) {
	sys, _ := newSystem(t)
	groups, _ := runBrainPipeline(t, sys)
	src, err := sys.Sumy(groups.InFascicle)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := core.SelectSumy("mySelection", src, func(core.SumyRow) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterSumy(sel, "select", groups.InFascicle); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterSumy(sel, "select", groups.InFascicle); err == nil {
		t.Error("duplicate register: expected error")
	}
	if _, err := sys.Sumy("mySelection"); err != nil {
		t.Error("registered sumy not retrievable")
	}
}

func TestCalculateFasciclesRequiresMetadata(t *testing.T) {
	sys, _ := newSystem(t)
	if _, err := sys.CreateTissueDataset("brain"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CalculateFascicles("brain", FascicleOptions{K: 10, MinSize: 2}); err == nil {
		t.Error("missing metadata: expected error")
	}
}

func TestSkipCleaning(t *testing.T) {
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(res.Corpus, Options{SkipCleaning: true})
	if err != nil {
		t.Fatal(err)
	}
	if sys.CleanReport != nil {
		t.Error("SkipCleaning produced a report")
	}
	if sys.Data.NumTags() <= 0 {
		t.Error("no data")
	}
}

// TestDropAndRegenerate exercises the Section 4.4.2 space-reclamation path:
// drop a chain of derived tables, then rebuild them by metadata replay.
func TestDropAndRegenerate(t *testing.T) {
	sys, _ := newSystem(t)
	groups, _ := runBrainPipeline(t, sys)
	orig, err := sys.CreateGap("dropGap", groups.InFascicle, groups.Opposite)
	if err != nil {
		t.Fatal(err)
	}
	origTop, err := sys.CalculateTopGap("dropGap", 7)
	if err != nil {
		t.Fatal(err)
	}
	origRows := append([]core.GapRow(nil), origTop.Rows...)

	// Drop both the gap and its top-gap table.
	if err := sys.DropContents("dropGap"); err != nil {
		t.Fatal(err)
	}
	if err := sys.DropContents("dropGap_7"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Gap("dropGap"); err == nil {
		t.Fatal("contents not dropped")
	}

	// Regenerating the top gap must transitively rebuild the gap first.
	top, err := sys.Regenerate("dropGap_7")
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() != len(origRows) {
		t.Fatalf("regenerated top has %d rows, want %d", top.Len(), len(origRows))
	}
	for i, r := range top.Rows {
		if r.Tag != origRows[i].Tag || r.Values[0] != origRows[i].Values[0] {
			t.Fatalf("row %d differs after regeneration: %+v vs %+v", i, r, origRows[i])
		}
	}
	// The intermediate gap is back too, identical in size.
	g, err := sys.Gap("dropGap")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != orig.Len() {
		t.Errorf("regenerated gap has %d rows, want %d", g.Len(), orig.Len())
	}
	// Lineage flags cleared.
	node, _ := sys.Lineage.Get("dropGap")
	if node.ContentsDropped {
		t.Error("lineage still marks contents dropped")
	}
}

func TestDropContentsValidation(t *testing.T) {
	sys, _ := newSystem(t)
	_, pure := runBrainPipeline(t, sys)
	if err := sys.DropContents(pure); err == nil {
		t.Error("dropping a fascicle: expected error")
	}
	if err := sys.DropContents("nope"); err == nil {
		t.Error("dropping unknown table: expected error")
	}
	if _, err := sys.Regenerate("nope"); err == nil {
		t.Error("regenerating unknown table: expected error")
	}
}

// TestRegenerateCompare replays a compare node.
func TestRegenerateCompare(t *testing.T) {
	sys, _ := newSystem(t)
	groups, _ := runBrainPipeline(t, sys)
	if _, err := sys.CreateGap("rg1", groups.InFascicle, groups.Opposite); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateGap("rg2", groups.InFascicle, groups.SameNotInFascicle); err != nil {
		t.Fatal(err)
	}
	orig, err := sys.CompareGaps("rgCmp", "rg1", "rg2", core.OpIntersect)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.DropContents("rgCmp"); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Regenerate("rgCmp")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() || len(got.Cols) != len(orig.Cols) {
		t.Errorf("regenerated compare differs: %dx%d vs %dx%d",
			got.Len(), len(got.Cols), orig.Len(), len(orig.Cols))
	}
}

func TestPurityCheckAndRegisterGap(t *testing.T) {
	sys, _ := newSystem(t)
	groups, pure := runBrainPipeline(t, sys)

	ok, err := sys.PurityCheck(pure, sage.PropCancer)
	if err != nil || !ok {
		t.Errorf("PurityCheck(cancer) = %v, %v", ok, err)
	}
	ok, err = sys.PurityCheck(pure, sage.PropNormal)
	if err != nil || ok {
		t.Errorf("PurityCheck(normal) = %v, %v", ok, err)
	}
	if _, err := sys.PurityCheck("nope", sage.PropCancer); err == nil {
		t.Error("PurityCheck(unknown): expected error")
	}

	// RegisterGap: an externally derived gap joins the session.
	a, err := sys.Sumy(groups.InFascicle)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Sumy(groups.Opposite)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Diff("externalGap", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterGap(g, "diff", groups.InFascicle, groups.Opposite); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Gap("externalGap"); err != nil {
		t.Error("registered gap not retrievable")
	}
	if err := sys.RegisterGap(g, "diff"); err == nil {
		t.Error("duplicate RegisterGap: expected error")
	}
}

func TestErrExistsMessage(t *testing.T) {
	e := ErrExists{Name: "brain"}
	if e.Error() != `system: "brain" already exists` {
		t.Errorf("ErrExists message = %q", e.Error())
	}
}

func TestGapOperationErrorPaths(t *testing.T) {
	sys, _ := newSystem(t)
	groups, _ := runBrainPipeline(t, sys)
	// CreateGap with unknown summaries.
	if _, err := sys.CreateGap("g", "nope", groups.Opposite); err == nil {
		t.Error("CreateGap(bad sumy1): expected error")
	}
	if _, err := sys.CreateGap("g", groups.InFascicle, "nope"); err == nil {
		t.Error("CreateGap(bad sumy2): expected error")
	}
	// Duplicate gap name.
	if _, err := sys.CreateGap("dupGap", groups.InFascicle, groups.Opposite); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateGap("dupGap", groups.InFascicle, groups.Opposite); err == nil {
		t.Error("duplicate CreateGap: expected error")
	}
	// CalculateTopGap on unknown gap.
	if _, err := sys.CalculateTopGap("nope", 5); err == nil {
		t.Error("CalculateTopGap(unknown): expected error")
	}
	// CompareGaps with unknown inputs and duplicate name.
	if _, err := sys.CompareGaps("c", "nope", "dupGap", core.OpUnion); err == nil {
		t.Error("CompareGaps(bad gap1): expected error")
	}
	if _, err := sys.CompareGaps("c", "dupGap", "nope", core.OpUnion); err == nil {
		t.Error("CompareGaps(bad gap2): expected error")
	}
	if _, err := sys.CreateGap("other", groups.InFascicle, groups.SameNotInFascicle); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CompareGaps("dupGap", "dupGap", "other", core.OpUnion); err == nil {
		t.Error("CompareGaps over existing name: expected error")
	}
}

func TestReplayRejectsUnreplayableNode(t *testing.T) {
	sys, _ := newSystem(t)
	_, pure := runBrainPipeline(t, sys)
	// A fascicle node is not replayable through the gap executor; force the
	// path by marking it dropped at the lineage level.
	if err := sys.Lineage.DropContents(pure); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Regenerate(pure); err == nil {
		t.Error("regenerating a mine node: expected error")
	}
}

// TestAppendixIVCatalogWiring verifies that the case-study pipeline fills
// the Appendix IV relations as the thesis's DB2 schema intends.
func TestAppendixIVCatalogWiring(t *testing.T) {
	sys, _ := newSystem(t)
	groups, pure := runBrainPipeline(t, sys)
	if _, err := sys.CreateGap("awGap", groups.InFascicle, groups.Opposite); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CalculateTopGap("awGap", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateGap("awGap2", groups.InFascicle, groups.SameNotInFascicle); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CompareGaps("awCmp", "awGap", "awGap2", core.OpIntersect); err != nil {
		t.Fatal(err)
	}

	get := func(name string) int {
		t.Helper()
		tbl, err := sys.Store.Get(name)
		if err != nil {
			t.Fatalf("catalog relation %s missing: %v", name, err)
		}
		return tbl.Len()
	}

	// Libraries / TypeInfo / SageInfo filled at load.
	if get(TblLibraries) != sys.Data.NumLibraries() {
		t.Error("Libraries incomplete")
	}
	if get(TblTypeInfo) != sys.Data.NumLibraries() {
		t.Error("TypeInfo incomplete")
	}
	if get(TblSageInfo) != 1 {
		t.Error("SageInfo incomplete")
	}
	// TypeCreateInfo records the brain data set.
	if get(TblTypeCreateInfo) < 1 {
		t.Error("TypeCreateInfo empty")
	}
	// FasFile: one row per mining run; FasInfo: one per fascicle; fasLib:
	// membership rows.
	if get(TblFasFile) < 1 || get(TblFasInfo) < 1 || get(TblFasLib) < 3 {
		t.Errorf("fascicle catalog rows: FasFile=%d FasInfo=%d fasLib=%d",
			get(TblFasFile), get(TblFasInfo), get(TblFasLib))
	}
	// The pure fascicle's FasInfo row carries the purity flags.
	fasInfo, _ := sys.Store.Get(TblFasInfo)
	found := false
	for _, r := range fasInfo.Rows {
		if r[1].Str() == pure {
			found = true
			if r[3].Int() != 1 { // Cancer flag
				t.Errorf("FasInfo cancer flag = %v", r[3])
			}
			if r[4].Int() != 0 { // Normal flag
				t.Errorf("FasInfo normal flag = %v", r[4])
			}
		}
	}
	if !found {
		t.Errorf("no FasInfo row for %s", pure)
	}
	// SumInfo/SumLib: three summaries for the case groups.
	if get(TblSumInfo) < 3 || get(TblSumLib) < 3 {
		t.Errorf("summary catalog rows: SumInfo=%d SumLib=%d", get(TblSumInfo), get(TblSumLib))
	}
	// GapInfo / TopRec / GapCompInfo / CDInfo.
	if get(TblGapInfo) < 2 {
		t.Error("GapInfo missing rows")
	}
	if get(TblTopRec) != 1 {
		t.Error("TopRec missing row")
	}
	if get(TblGapCompInfo) != 1 {
		t.Error("GapCompInfo missing row")
	}
	if get(TblCDInfo) < 1 {
		t.Error("CDInfo missing the chosen per-tissue threshold")
	}
	// Rows carry the session user.
	ff, _ := sys.Store.Get(TblFasFile)
	if ff.Rows[0][0].Str() != "jessica" {
		t.Errorf("FasFile user = %q", ff.Rows[0][0].Str())
	}
}

// TestListingWindows covers the Figure 4.19/4.20 browsing queries.
func TestListingWindows(t *testing.T) {
	sys, _ := newSystem(t)
	groups, pure := runBrainPipeline(t, sys)
	if _, err := sys.CreateGap("lw1", groups.InFascicle, groups.Opposite); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateGap("lw2", groups.InFascicle, groups.SameNotInFascicle); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CalculateTopGap("lw1", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CalculateTopGap("lw1", 10); err != nil {
		t.Fatal(err)
	}

	sumys, err := sys.ListSumys(pure)
	if err != nil {
		t.Fatal(err)
	}
	if len(sumys) != 3 {
		t.Errorf("ListSumys(%s) = %v", pure, sumys)
	}
	all, err := sys.ListSumys("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < len(sumys) {
		t.Error("ListSumys(all) smaller than per-fascicle list")
	}

	gaps, err := sys.ListGaps(groups.InFascicle)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 2 {
		t.Errorf("ListGaps(%s) = %v", groups.InFascicle, gaps)
	}
	gapsOpp, err := sys.ListGaps(groups.Opposite)
	if err != nil {
		t.Fatal(err)
	}
	if len(gapsOpp) != 1 || gapsOpp[0] != "lw1" {
		t.Errorf("ListGaps(opposite) = %v", gapsOpp)
	}

	tops, err := sys.ListTopGaps("lw1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) != 2 || tops[0] != "lw1_10" || tops[1] != "lw1_5" {
		t.Errorf("ListTopGaps = %v", tops)
	}
	if tops2, _ := sys.ListTopGaps(""); len(tops2) != 2 {
		t.Errorf("ListTopGaps(all) = %v", tops2)
	}
}

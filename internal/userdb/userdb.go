// Package userdb implements the supplementary features of thesis Appendix
// III: user accounts with two access levels (administrator and system
// user), login/logout, account administration (add, delete, modify), and
// the configuration store of AIII.4. The GEA supports multiple users, each
// working in their own workspace; administration operations require
// administrator privileges.
//
// Passwords are stored as salted SHA-256 digests — the thesis predates
// modern KDFs, but storing plaintext would be indefensible even in a
// reproduction.
package userdb

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Role is an access level.
type Role int

// Access levels.
const (
	RoleUser Role = iota
	RoleAdmin
)

// String names the role as the login dialog does.
func (r Role) String() string {
	if r == RoleAdmin {
		return "administrator"
	}
	return "user"
}

// User is one account.
type User struct {
	Name string
	Role Role
	salt []byte
	hash []byte
}

// DB is the account and configuration store. It is safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	users  map[string]*User
	config map[string]string
}

// ErrAuth is returned for any failed login; it deliberately does not say
// which part was wrong beyond the thesis's hint (Figure 4.27: "check your
// PASSWORD and TYPE", i.e. user names are not confirmed or denied either).
var ErrAuth = fmt.Errorf("userdb: login failed; check your password and type")

// New returns a store seeded with an administrator account.
func New(adminName, adminPassword string) (*DB, error) {
	db := &DB{users: make(map[string]*User), config: make(map[string]string)}
	if err := db.addLocked(adminName, adminPassword, RoleAdmin); err != nil {
		return nil, err
	}
	return db, nil
}

func hashPassword(salt []byte, password string) []byte {
	h := sha256.New()
	h.Write(salt)
	h.Write([]byte(password))
	return h.Sum(nil)
}

func (db *DB) addLocked(name, password string, role Role) error {
	if name == "" {
		return fmt.Errorf("userdb: empty user name")
	}
	if password == "" {
		return fmt.Errorf("userdb: empty password")
	}
	if _, exists := db.users[name]; exists {
		return fmt.Errorf("userdb: user %q already exists", name)
	}
	salt := make([]byte, 16)
	if _, err := rand.Read(salt); err != nil {
		return err
	}
	db.users[name] = &User{Name: name, Role: role, salt: salt, hash: hashPassword(salt, password)}
	return nil
}

// Login authenticates name/password/role and returns the user. The role
// must match the account's role, mirroring the TYPE field of the login
// dialog (Figure AIII.1).
func (db *DB) Login(name, password string, role Role) (*User, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	u, ok := db.users[name]
	if !ok {
		return nil, ErrAuth
	}
	if subtle.ConstantTimeCompare(u.hash, hashPassword(u.salt, password)) != 1 {
		return nil, ErrAuth
	}
	if u.Role != role {
		return nil, ErrAuth
	}
	return u, nil
}

// requireAdmin checks the acting user's privileges.
func (db *DB) requireAdmin(actor *User) error {
	if actor == nil || actor.Role != RoleAdmin {
		return fmt.Errorf("userdb: administrator privileges required")
	}
	// The actor must still be a live account.
	if _, ok := db.users[actor.Name]; !ok {
		return fmt.Errorf("userdb: acting user %q no longer exists", actor.Name)
	}
	return nil
}

// AddUser creates an account (Figure AIII.9); only administrators may call
// it.
func (db *DB) AddUser(actor *User, name, password string, role Role) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.requireAdmin(actor); err != nil {
		return err
	}
	return db.addLocked(name, password, role)
}

// DeleteUser removes an account (Figure AIII.10). An administrator cannot
// delete themselves (the system must keep at least one admin reachable).
func (db *DB) DeleteUser(actor *User, name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.requireAdmin(actor); err != nil {
		return err
	}
	if name == actor.Name {
		return fmt.Errorf("userdb: cannot delete the acting administrator")
	}
	if _, ok := db.users[name]; !ok {
		return fmt.Errorf("userdb: no user %q", name)
	}
	delete(db.users, name)
	return nil
}

// ModifyUser changes an account's password and/or role (Figure AIII.11).
// Empty password keeps the old one.
func (db *DB) ModifyUser(actor *User, name, newPassword string, newRole Role) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.requireAdmin(actor); err != nil {
		return err
	}
	u, ok := db.users[name]
	if !ok {
		return fmt.Errorf("userdb: no user %q", name)
	}
	if newPassword != "" {
		salt := make([]byte, 16)
		if _, err := rand.Read(salt); err != nil {
			return err
		}
		u.salt = salt
		u.hash = hashPassword(salt, newPassword)
	}
	u.Role = newRole
	return nil
}

// Users lists account names, sorted.
func (db *DB) Users() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.users))
	for n := range db.users {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Default configuration keys (Figure AIII.12).
const (
	ConfigDBUser     = "db.user"
	ConfigDBPassword = "db.password"
	ConfigDBName     = "db.name"
	ConfigDBPath     = "db.path"
)

// SetConfig stores a configuration value; administrators only.
func (db *DB) SetConfig(actor *User, key, value string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.requireAdmin(actor); err != nil {
		return err
	}
	db.config[key] = value
	return nil
}

// Config reads a configuration value.
func (db *DB) Config(key string) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.config[key]
	return v, ok
}

// FingerPrint returns a short digest of the user record, used by tests and
// audit displays; it never exposes the hash itself.
func (u *User) FingerPrint() string {
	h := sha256.Sum256(append(append([]byte{}, u.salt...), u.hash...))
	return hex.EncodeToString(h[:4])
}

package userdb

import (
	"testing"
)

func newDB(t *testing.T) (*DB, *User) {
	t.Helper()
	db, err := New("admin", "secret")
	if err != nil {
		t.Fatal(err)
	}
	admin, err := db.Login("admin", "secret", RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	return db, admin
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", "pw"); err == nil {
		t.Error("empty admin name: expected error")
	}
	if _, err := New("a", ""); err == nil {
		t.Error("empty password: expected error")
	}
}

func TestLogin(t *testing.T) {
	db, _ := newDB(t)
	if _, err := db.Login("admin", "wrong", RoleAdmin); err != ErrAuth {
		t.Errorf("wrong password err = %v", err)
	}
	if _, err := db.Login("ghost", "secret", RoleAdmin); err != ErrAuth {
		t.Errorf("unknown user err = %v", err)
	}
	// Role ("TYPE") must match, per Figure 4.27.
	if _, err := db.Login("admin", "secret", RoleUser); err != ErrAuth {
		t.Errorf("wrong role err = %v", err)
	}
	u, err := db.Login("admin", "secret", RoleAdmin)
	if err != nil || u.Role != RoleAdmin {
		t.Errorf("valid login = %v, %v", u, err)
	}
}

func TestAddDeleteModifyUser(t *testing.T) {
	db, admin := newDB(t)
	if err := db.AddUser(admin, "jessica", "pw1", RoleUser); err != nil {
		t.Fatal(err)
	}
	if err := db.AddUser(admin, "jessica", "pw1", RoleUser); err == nil {
		t.Error("duplicate user: expected error")
	}
	jess, err := db.Login("jessica", "pw1", RoleUser)
	if err != nil {
		t.Fatal(err)
	}
	// System users cannot administer.
	if err := db.AddUser(jess, "cfu", "pw", RoleUser); err == nil {
		t.Error("non-admin AddUser: expected error")
	}
	if err := db.DeleteUser(jess, "admin"); err == nil {
		t.Error("non-admin DeleteUser: expected error")
	}
	if err := db.ModifyUser(jess, "jessica", "x", RoleAdmin); err == nil {
		t.Error("non-admin ModifyUser (privilege escalation): expected error")
	}

	// Modify: promote jessica and change her password.
	if err := db.ModifyUser(admin, "jessica", "pw2", RoleAdmin); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Login("jessica", "pw1", RoleAdmin); err != ErrAuth {
		t.Error("old password still valid after modify")
	}
	if _, err := db.Login("jessica", "pw2", RoleAdmin); err != nil {
		t.Errorf("new credentials rejected: %v", err)
	}
	// Empty password keeps the old one.
	if err := db.ModifyUser(admin, "jessica", "", RoleUser); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Login("jessica", "pw2", RoleUser); err != nil {
		t.Errorf("password lost on role-only modify: %v", err)
	}
	if err := db.ModifyUser(admin, "ghost", "x", RoleUser); err == nil {
		t.Error("modify missing user: expected error")
	}

	// Delete.
	if err := db.DeleteUser(admin, "jessica"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Login("jessica", "pw2", RoleUser); err != ErrAuth {
		t.Error("deleted user can still log in")
	}
	if err := db.DeleteUser(admin, "ghost"); err == nil {
		t.Error("delete missing user: expected error")
	}
	if err := db.DeleteUser(admin, "admin"); err == nil {
		t.Error("self-delete: expected error")
	}
}

func TestStaleAdminHandle(t *testing.T) {
	db, admin := newDB(t)
	if err := db.AddUser(admin, "second", "pw", RoleAdmin); err != nil {
		t.Fatal(err)
	}
	second, err := db.Login("second", "pw", RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteUser(admin, "second"); err != nil {
		t.Fatal(err)
	}
	// The deleted admin's handle must stop working.
	if err := db.AddUser(second, "x", "pw", RoleUser); err == nil {
		t.Error("deleted admin handle still works")
	}
}

func TestUsersList(t *testing.T) {
	db, admin := newDB(t)
	if err := db.AddUser(admin, "bbb", "pw", RoleUser); err != nil {
		t.Fatal(err)
	}
	if err := db.AddUser(admin, "aaa", "pw", RoleUser); err != nil {
		t.Fatal(err)
	}
	users := db.Users()
	if len(users) != 3 || users[0] != "aaa" || users[2] != "bbb" {
		t.Errorf("Users = %v", users)
	}
}

func TestConfig(t *testing.T) {
	db, admin := newDB(t)
	if err := db.SetConfig(admin, ConfigDBPath, "/opt/gea"); err != nil {
		t.Fatal(err)
	}
	if v, ok := db.Config(ConfigDBPath); !ok || v != "/opt/gea" {
		t.Errorf("Config = %q, %v", v, ok)
	}
	if _, ok := db.Config("missing"); ok {
		t.Error("missing config key reported present")
	}
	if err := db.SetConfig(nil, "k", "v"); err == nil {
		t.Error("nil actor SetConfig: expected error")
	}
}

func TestRoleStringAndFingerprint(t *testing.T) {
	if RoleAdmin.String() != "administrator" || RoleUser.String() != "user" {
		t.Error("role strings wrong")
	}
	db, admin := newDB(t)
	_ = db
	if len(admin.FingerPrint()) != 8 {
		t.Errorf("fingerprint = %q", admin.FingerPrint())
	}
}

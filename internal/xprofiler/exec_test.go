package xprofiler

import (
	"context"
	"math"
	"testing"

	"gea/internal/exec"
	"gea/internal/exec/execwalk"
	"gea/internal/sage"
)

func TestCompareCheckpointWalk(t *testing.T) {
	c, _ := buildCorpus(t)
	a, err := PoolByState(c, "brain", sage.Cancer)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoolByState(c, "brain", sage.Normal)
	if err != nil {
		t.Fatal(err)
	}
	execwalk.Walk(t, execwalk.Target{
		Name: "Compare",
		Run: func(ctx context.Context, lim exec.Limits) (exec.Trace, error) {
			_, tr, err := CompareCtx(ctx, a, b, Options{}, lim)
			return tr, err
		},
		MaxUnitStep: 1,
	})
}

// TestComparePartialIsPrefix checks budget-stopped comparisons only ever
// contain results the full run also contains.
func TestComparePartialIsPrefix(t *testing.T) {
	c, _ := buildCorpus(t)
	a, _ := PoolByState(c, "brain", sage.Cancer)
	b, _ := PoolByState(c, "brain", sage.Normal)
	full, err := Compare(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inFull := map[sage.TagID]bool{}
	for _, r := range full {
		inFull[r.Tag] = true
	}
	for budget := int64(1); budget < 2000; budget += 97 {
		got, tr, err := CompareCtx(context.Background(), a, b, Options{}, exec.Limits{Budget: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		for _, r := range got {
			if !inFull[r.Tag] {
				t.Fatalf("budget %d: partial result invented tag %v", budget, r.Tag)
			}
		}
		if !tr.Partial && len(got) != len(full) {
			t.Fatalf("budget %d: silent truncation: %d vs %d", budget, len(got), len(full))
		}
	}
}

func TestCompareValidation(t *testing.T) {
	c, _ := buildCorpus(t)
	a, _ := PoolByState(c, "brain", sage.Cancer)
	b, _ := PoolByState(c, "brain", sage.Normal)
	if _, err := Compare(a, b, Options{Alpha: math.NaN()}); err == nil {
		t.Error("NaN alpha accepted")
	}
	if _, err := Compare(a, b, Options{Alpha: 2}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := Compare(a, b, Options{MinCount: math.NaN()}); err == nil {
		t.Error("NaN min count accepted")
	}
	if _, err := Compare(a, b, Options{MinCount: -1}); err == nil {
		t.Error("negative min count accepted")
	}
	if _, err := Compare(nil, b, Options{}); err == nil {
		t.Error("nil pool accepted")
	}
}

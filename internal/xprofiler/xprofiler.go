// Package xprofiler reimplements the NCBI SAGE web site's xProfiler tool
// (thesis Section 2.3.3), the comparator the GEA is positioned against for
// candidate-gene finding. The xProfiler "is designed for differential-type
// analyses, for pooling and comparing SAGE libraries": the user places
// libraries into two groups, the groups are pooled, and a statistical test
// developed for SAGE count data decides, per tag, whether the two pools
// differ significantly.
//
// We implement the Audic-Claverie test (Audic & Claverie, Genome Research
// 1997), the standard significance test for comparing SAGE tag counts: given
// x occurrences in a pool of total N1 and y in a pool of total N2, the
// probability of observing y given x under the null hypothesis of equal
// relative expression is
//
//	p(y|x) = (N2/N1)^y * (x+y)! / (x! y! (1+N2/N1)^(x+y+1))
//
// and the (one-sided) p-value sums p(k|x) over the tail. Everything is
// computed in log space.
//
// The thesis's criticism — "the user has to guess which SAGE libraries
// should form a group, and which two groups should be compared, in order to
// return meaningful results" — is exactly what fascicle mining automates;
// the benchmark harness contrasts the two approaches on recovering planted
// signature genes.
package xprofiler

import (
	"context"
	"fmt"
	"math"
	"sort"

	"gea/internal/exec"
	"gea/internal/sage"
)

// Pool is the summed expression profile of a library group.
type Pool struct {
	Name   string
	Counts map[sage.TagID]float64
	Total  float64
}

// NewPool sums the named libraries of a corpus into one profile — the
// xProfiler's "pooling" step.
func NewPool(name string, c *sage.Corpus, libNames []string) (*Pool, error) {
	if len(libNames) == 0 {
		return nil, fmt.Errorf("xprofiler: pool %q has no libraries", name)
	}
	p := &Pool{Name: name, Counts: make(map[sage.TagID]float64)}
	for _, n := range libNames {
		l := c.ByName(n)
		if l == nil {
			return nil, fmt.Errorf("xprofiler: unknown library %q", n)
		}
		for t, v := range l.Counts {
			p.Counts[t] += v
		}
	}
	for _, v := range p.Counts {
		p.Total += v
	}
	if p.Total == 0 {
		return nil, fmt.Errorf("xprofiler: pool %q is empty", name)
	}
	return p, nil
}

// PoolByState pools all libraries of a corpus with the given tissue and
// neoplastic state (the typical xProfiler grouping, e.g. "normal colon" vs
// "cancerous colon").
func PoolByState(c *sage.Corpus, tissue string, state sage.NeoplasticState) (*Pool, error) {
	var names []string
	for _, l := range c.Libraries {
		if l.Meta.Tissue == tissue && l.Meta.State == state {
			names = append(names, l.Meta.Name)
		}
	}
	name := fmt.Sprintf("%s_%s", tissue, state)
	return NewPool(name, c, names)
}

// Result is one differentially expressed tag.
type Result struct {
	Tag    sage.TagID
	CountA float64 // raw count in pool A
	CountB float64 // raw count in pool B
	// RateA and RateB are per-million normalized rates.
	RateA, RateB float64
	// PValue is the two-sided Audic-Claverie p-value.
	PValue float64
	// HigherInA reports the direction of the difference.
	HigherInA bool
}

// Options configure a comparison.
type Options struct {
	// Alpha is the significance threshold on the two-sided p-value
	// (default 0.01).
	Alpha float64
	// MinCount skips tags whose count is below this in both pools
	// (default 2): singletons carry no statistical signal.
	MinCount float64
}

// Compare runs the pooled differential test of the xProfiler and returns the
// significant tags sorted by ascending p-value (ties by tag).
func Compare(a, b *Pool, opts Options) ([]Result, error) {
	out, _, err := CompareWith(exec.Background(), a, b, opts)
	return out, err
}

// CompareCtx is Compare under execution governance: cancellation is
// observed once per tag tested, a budget stop returns the significant
// tags found so far (sorted, flagged partial), and panics are recovered
// into a structured *exec.ExecError.
func CompareCtx(ctx context.Context, a, b *Pool, opts Options, lim exec.Limits) ([]Result, exec.Trace, error) {
	c := exec.New(ctx, lim)
	var out []Result
	var partial bool
	err := exec.Guard("xprofiler.Compare", poolNode(a, b), func() error {
		var err error
		out, partial, err = CompareWith(c, a, b, opts)
		return err
	})
	if err != nil {
		out = nil
	}
	return out, c.Snapshot(partial), err
}

func poolNode(a, b *Pool) string {
	if a == nil || b == nil {
		return ""
	}
	return a.Name + " vs " + b.Name
}

// CompareWith is the metered implementation; one work unit is one tag
// tested. Tags are visited in sorted order so a partial result is a
// deterministic prefix of the tag universe.
func CompareWith(c *exec.Ctl, a, b *Pool, opts Options) (_ []Result, partial bool, err error) {
	if a == nil || b == nil {
		return nil, false, fmt.Errorf("xprofiler: nil pool")
	}
	sp := c.StartSpan("xprofiler.Compare")
	sp.SetInput("%s (%d tags) vs %s (%d tags)", a.Name, len(a.Counts), b.Name, len(b.Counts))
	defer c.EndSpan(sp, &partial, &err)
	if opts.Alpha == 0 {
		opts.Alpha = 0.01
	}
	if opts.Alpha < 0 || opts.Alpha > 1 || math.IsNaN(opts.Alpha) {
		return nil, false, fmt.Errorf("xprofiler: alpha %v out of (0, 1]", opts.Alpha)
	}
	if math.IsNaN(opts.MinCount) || opts.MinCount < 0 {
		return nil, false, fmt.Errorf("xprofiler: min count %v invalid", opts.MinCount)
	}
	if opts.MinCount == 0 {
		opts.MinCount = 2
	}

	tagSet := map[sage.TagID]bool{}
	//lint:gea ctlcharge -- tag-universe union; the per-tag test loop below charges every tag collected here
	for t := range a.Counts {
		tagSet[t] = true
	}
	//lint:gea ctlcharge -- tag-universe union; the per-tag test loop below charges every tag collected here
	for t := range b.Counts {
		tagSet[t] = true
	}
	tags := make([]sage.TagID, 0, len(tagSet))
	//lint:gea ctlcharge -- set-to-slice materialization of the same tags the metered loop below visits
	for t := range tagSet {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })

	finish := func(out []Result, partial bool) ([]Result, bool, error) {
		sort.Slice(out, func(i, j int) bool {
			if out[i].PValue != out[j].PValue {
				return out[i].PValue < out[j].PValue
			}
			return out[i].Tag < out[j].Tag
		})
		return out, partial, nil
	}

	var out []Result
	for _, t := range tags {
		if err := c.Point(1); err != nil {
			if exec.IsBudget(err) {
				return finish(out, true)
			}
			return nil, false, err
		}
		x, y := a.Counts[t], b.Counts[t]
		if x < opts.MinCount && y < opts.MinCount {
			continue
		}
		p := TwoSidedP(int(math.Round(x)), int(math.Round(y)), a.Total, b.Total)
		if p > opts.Alpha {
			continue
		}
		out = append(out, Result{
			Tag: t, CountA: x, CountB: y,
			RateA:     1e6 * x / a.Total,
			RateB:     1e6 * y / b.Total,
			PValue:    p,
			HigherInA: x/a.Total > y/b.Total,
		})
	}
	return finish(out, false)
}

// logP returns ln p(y|x) under the Audic-Claverie null.
func logP(x, y int, n1, n2 float64) float64 {
	r := n2 / n1
	lgXY, _ := math.Lgamma(float64(x+y) + 1)
	lgX, _ := math.Lgamma(float64(x) + 1)
	lgY, _ := math.Lgamma(float64(y) + 1)
	return float64(y)*math.Log(r) + lgXY - lgX - lgY - float64(x+y+1)*math.Log1p(r)
}

// PGivenX returns p(y|x), the Audic-Claverie probability of seeing y counts
// in a pool of total n2 given x counts in a pool of total n1.
func PGivenX(x, y int, n1, n2 float64) float64 {
	if x < 0 || y < 0 || n1 <= 0 || n2 <= 0 {
		return 0
	}
	return math.Exp(logP(x, y, n1, n2))
}

// exactCutoff bounds the exact tail summation; above it the normal
// approximation to the conditional binomial is indistinguishable and far
// cheaper (raw SAGE counts reach the thousands).
const exactCutoff = 200

// TwoSidedP returns the two-sided p-value for observing counts (x, y) in
// pools of totals (n1, n2): twice the smaller tail of the conditional
// distribution of y given x+y (capped at 1). For x+y beyond a cutoff it
// switches to the normal approximation of the conditional
// Binomial(x+y, n2/(n1+n2)) distribution.
func TwoSidedP(x, y int, n1, n2 float64) float64 {
	if n1 <= 0 || n2 <= 0 {
		return 1
	}
	var lower, point float64
	if x+y <= exactCutoff {
		// Tail sums of p(k|x) over k <= y. The distribution over k is
		// proper (sums to 1 over k >= 0), so the upper tail is
		// 1 - lower + point.
		for k := 0; k <= y; k++ {
			lower += PGivenX(x, k, n1, n2)
		}
		point = PGivenX(x, y, n1, n2)
	} else {
		// y | x+y ~ Binomial(x+y, q) with q = n2/(n1+n2); normal
		// approximation with continuity correction.
		n := float64(x + y)
		q := n2 / (n1 + n2)
		mu := n * q
		sigma := math.Sqrt(n * q * (1 - q))
		if sigma == 0 {
			return 1
		}
		z := (float64(y) + 0.5 - mu) / sigma
		lower = normalCDF(z)
		point = 0
	}
	upper := 1 - lower + point
	p := 2 * math.Min(lower, upper)
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// normalCDF is the standard normal CDF.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

package xprofiler

import (
	"math"
	"testing"

	"gea/internal/sage"
	"gea/internal/sagegen"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPGivenXBasics(t *testing.T) {
	// Equal totals, x=0: p(y|0) = 1/2^(y+1).
	for y := 0; y <= 5; y++ {
		got := PGivenX(0, y, 1000, 1000)
		want := math.Pow(0.5, float64(y+1))
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("p(%d|0) = %v, want %v", y, got, want)
		}
	}
	// Invalid inputs.
	if PGivenX(-1, 0, 1, 1) != 0 || PGivenX(0, -1, 1, 1) != 0 || PGivenX(0, 0, 0, 1) != 0 {
		t.Error("invalid inputs should give 0")
	}
}

func TestPGivenXSumsToOne(t *testing.T) {
	for _, x := range []int{0, 3, 10, 40} {
		var sum float64
		for k := 0; k < 2000; k++ {
			sum += PGivenX(x, k, 5000, 8000)
		}
		if !almostEqual(sum, 1, 1e-6) {
			t.Errorf("sum p(k|%d) = %v", x, sum)
		}
	}
}

func TestTwoSidedPProperties(t *testing.T) {
	// Symmetric observation at equal totals: p-value should be large.
	if p := TwoSidedP(10, 10, 10000, 10000); p < 0.5 {
		t.Errorf("equal counts p = %v, want large", p)
	}
	// Extreme difference: p tiny.
	if p := TwoSidedP(100, 0, 10000, 10000); p > 1e-10 {
		t.Errorf("extreme difference p = %v, want tiny", p)
	}
	// Monotone-ish: more extreme y gives smaller p.
	p1 := TwoSidedP(50, 30, 10000, 10000)
	p2 := TwoSidedP(50, 10, 10000, 10000)
	if p2 >= p1 {
		t.Errorf("p(50,10)=%v should be < p(50,30)=%v", p2, p1)
	}
	// Bounds.
	for _, tc := range [][2]int{{0, 0}, {5, 5}, {100, 400}, {1000, 1200}} {
		p := TwoSidedP(tc[0], tc[1], 30000, 40000)
		if p < 0 || p > 1 {
			t.Errorf("p(%v) = %v out of [0,1]", tc, p)
		}
	}
	if TwoSidedP(1, 1, 0, 10) != 1 {
		t.Error("invalid totals should give p=1")
	}
}

// TestNormalApproxAgreesWithExact checks continuity across the cutoff.
func TestNormalApproxAgreesWithExact(t *testing.T) {
	// Just below cutoff: exact; just above: approximation. Compare a pair of
	// configurations straddling it with the same relative imbalance.
	exact := TwoSidedP(120, 80, 50000, 50000)  // x+y=200, exact
	approx := TwoSidedP(121, 81, 50000, 50000) // x+y=202, approx
	if math.Abs(math.Log10(exact)-math.Log10(approx)) > 0.5 {
		t.Errorf("exact %v vs approx %v diverge at cutoff", exact, approx)
	}
}

func buildCorpus(t *testing.T) (*sage.Corpus, *sagegen.Result) {
	t.Helper()
	res, err := sagegen.Generate(sagegen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res.Corpus, res
}

func TestNewPool(t *testing.T) {
	c, _ := buildCorpus(t)
	names := []string{c.Libraries[0].Meta.Name, c.Libraries[1].Meta.Name}
	p, err := NewPool("p", c, names)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total <= 0 || len(p.Counts) == 0 {
		t.Errorf("pool = %+v", p)
	}
	// Pool total equals the sum of member totals.
	want := c.Libraries[0].Total() + c.Libraries[1].Total()
	if !almostEqual(p.Total, want, 1e-6) {
		t.Errorf("pool total = %v, want %v", p.Total, want)
	}
	if _, err := NewPool("bad", c, []string{"nope"}); err == nil {
		t.Error("unknown library: expected error")
	}
	if _, err := NewPool("bad", c, nil); err == nil {
		t.Error("empty pool: expected error")
	}
}

func TestPoolByState(t *testing.T) {
	c, _ := buildCorpus(t)
	cancer, err := PoolByState(c, "brain", sage.Cancer)
	if err != nil {
		t.Fatal(err)
	}
	normal, err := PoolByState(c, "brain", sage.Normal)
	if err != nil {
		t.Fatal(err)
	}
	if cancer.Total <= normal.Total/10 {
		t.Error("implausible pool totals")
	}
	if _, err := PoolByState(c, "liver", sage.Cancer); err == nil {
		t.Error("unknown tissue: expected error")
	}
}

// TestCompareRecoversPlantedSignature: comparing pooled cancerous vs normal
// brain must surface the planted brain signature genes.
func TestCompareRecoversPlantedSignature(t *testing.T) {
	c, res := buildCorpus(t)
	cancer, err := PoolByState(c, "brain", sage.Cancer)
	if err != nil {
		t.Fatal(err)
	}
	normal, err := PoolByState(c, "brain", sage.Normal)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Compare(cancer, normal, Options{Alpha: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no significant tags")
	}
	// Results are sorted by p-value.
	for i := 1; i < len(results); i++ {
		if results[i-1].PValue > results[i].PValue {
			t.Fatal("results not sorted by p-value")
		}
	}
	// The pooled test should recover a substantial share of the planted
	// cancer-signature genes. (Its *precision* is limited — pooling also
	// flags compositional shifts in housekeeping and tissue-specific genes,
	// which is part of why the thesis prefers fascicle-based contrasts —
	// so we assert recall, not top-k purity.)
	sigTotal, sigHit := 0, 0
	hit := map[sage.TagID]bool{}
	for _, r := range results {
		hit[r.Tag] = true
	}
	for _, g := range res.Catalog.Genes {
		if (g.Role == sagegen.RoleCancerUp || g.Role == sagegen.RoleCancerDown) &&
			(g.Tissue == "brain" || g.Tissue == "") {
			sigTotal++
			if hit[g.Tag] {
				sigHit++
			}
		}
	}
	if sigHit*3 < sigTotal {
		t.Errorf("xProfiler recovered only %d of %d planted brain/pan signature genes", sigHit, sigTotal)
	}
	// Directions are consistent with rates.
	for _, r := range results {
		if r.HigherInA != (r.RateA > r.RateB) {
			t.Errorf("direction flag inconsistent: %+v", r)
		}
	}
}

func TestCompareOptionsValidation(t *testing.T) {
	c, _ := buildCorpus(t)
	a, _ := PoolByState(c, "brain", sage.Cancer)
	b, _ := PoolByState(c, "brain", sage.Normal)
	if _, err := Compare(nil, b, Options{}); err == nil {
		t.Error("nil pool: expected error")
	}
	if _, err := Compare(a, b, Options{Alpha: 2}); err == nil {
		t.Error("alpha > 1: expected error")
	}
	// Defaults apply.
	if _, err := Compare(a, b, Options{}); err != nil {
		t.Errorf("default options: %v", err)
	}
}

func TestCompareNoDifference(t *testing.T) {
	// Comparing a pool against itself yields nothing significant.
	c, _ := buildCorpus(t)
	a, _ := PoolByState(c, "brain", sage.Normal)
	res, err := Compare(a, a, Options{Alpha: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("self-comparison found %d significant tags", len(res))
	}
}

package gea

import (
	"gea/internal/obs"
)

// Observability (internal/obs). Install an ObsCollector on the context
// passed to any *Ctx operator and every governed run records a span
// tree — operator name, input shape, units charged, checkpoints,
// worker count, outcome, wall time — plus counters, gauges and bounded
// histograms in the collector's metrics registry. With no collector
// installed the instrumentation is a nil no-op; see OBSERVABILITY.md.
type (
	// ObsCollector receives completed root span records and owns the
	// metrics registry they feed.
	ObsCollector = obs.Collector
	// ObsRecord is one completed operator span: a node in the run tree
	// that LastRoot/Roots return and lineage nodes link to.
	ObsRecord = obs.Record
	// ObsRegistry is the collector's metrics store.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a deterministic (name-sorted) point-in-time copy
	// of a registry, stable enough to golden in tests.
	ObsSnapshot = obs.Snapshot
	// ObsOutcome classifies how a span ended ("ok", "partial",
	// "canceled", "budget", "error", "panic").
	ObsOutcome = obs.Outcome
)

var (
	// NewObsCollector builds a collector with a fresh registry.
	NewObsCollector = obs.NewCollector
	// WithObsCollector installs a collector on a context; every *Ctx
	// operator run under it records spans and metrics.
	WithObsCollector = obs.WithCollector
	// ObsFromContext returns the installed collector, or nil.
	ObsFromContext = obs.FromContext
)

// Span outcomes, re-exported for matching against ObsRecord.Outcome.
const (
	ObsOutcomeOK       = obs.OutcomeOK
	ObsOutcomePartial  = obs.OutcomePartial
	ObsOutcomeCanceled = obs.OutcomeCanceled
	ObsOutcomeBudget   = obs.OutcomeBudget
	ObsOutcomeError    = obs.OutcomeError
	ObsOutcomePanic    = obs.OutcomePanic
)

package gea

// Multi-tenant serving (internal/session, internal/rescache, and the
// tenant half of internal/admission). A SessionManager fronts a System
// for HTTP serving: named sessions scoped to tenants run read-only
// algebra operators by name through a generation-keyed result cache —
// identical (corpus generation, operator, params) requests are served
// from cache and single-flighted while in flight, and an ingest append
// makes every prior generation's entries unreachable by construction.
// Tenant work-budget envelopes shape a heavy tenant's requests down
// before the fleet degrades. Enable both through
// SystemOptions.ResultCache and SystemOptions.TenantPolicy.

import (
	"gea/internal/admission"
	"gea/internal/rescache"
	"gea/internal/session"
	"gea/internal/system"
)

type (
	// ResultCacheOptions configures the generation-keyed result cache
	// (SystemOptions.ResultCache); the zero value selects the defaults.
	ResultCacheOptions = rescache.Options
	// ResultCacheStats snapshots the cache for /healthz and tests.
	ResultCacheStats = rescache.Stats
	// CacheSource reports where a cached query's result came from:
	// computed, hit, or shared (a single-flight join).
	CacheSource = rescache.Source

	// TenantPolicy enables per-tenant work-budget envelopes
	// (SystemOptions.TenantPolicy).
	TenantPolicy = admission.TenantPolicy
	// TenantsStats snapshots every tenant's envelope debt.
	TenantsStats = admission.TenantsStats

	// StaleError reports a read of a derived artifact whose corpus
	// generation has been superseded by an ingest append; it carries
	// both generations so the caller can re-derive.
	StaleError = system.StaleError
	// QueryResult is the outcome of a cached query: the value plus the
	// accounting (generation, units, source) that keeps cached and
	// computed responses reconcilable.
	QueryResult = system.QueryResult

	// SessionManager owns the serving session table over a System.
	SessionManager = session.Manager
	// SessionOptions configures a SessionManager.
	SessionOptions = session.Options
	// SessionInfo is a session snapshot, JSON-ready.
	SessionInfo = session.Info
	// SessionRequest is one operator invocation against a session.
	SessionRequest = session.Request
	// SessionResponse reports one session run with its accounting.
	SessionResponse = session.Response
	// SessionLineageNode is one recorded run of a session.
	SessionLineageNode = session.LineageNode
	// SessionParamError is a typed caller-fault session request (400).
	SessionParamError = session.ParamError
	// ErrSessionExists reports a double create (409), for errors.As.
	ErrSessionExists = session.ErrSessionExists
)

var (
	// NewSessionManager builds a session manager over a System.
	NewSessionManager = session.NewManager
	// ErrSessionUnknown marks reads of never-created session IDs (404),
	// for errors.Is.
	ErrSessionUnknown = session.ErrSessionUnknown
	// ErrSessionExpired marks reads of expired or closed session IDs
	// (410), for errors.Is.
	ErrSessionExpired = session.ErrSessionExpired
	// SessionOps lists the operators a session can run.
	SessionOps = session.Ops
)

// Serving defaults, re-exported for flag registration.
const (
	DefaultSessionExpiry      = session.DefaultExpiry
	DefaultMaxSessions        = session.DefaultMaxSessions
	DefaultCacheMaxEntries    = rescache.DefaultMaxEntries
	DefaultCacheMaxBytes      = rescache.DefaultMaxBytes
	DefaultTenantWindow       = admission.DefaultTenantWindow
	DefaultTenantDegradeRatio = admission.DefaultTenantDegradeFactor
)

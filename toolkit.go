package gea

import (
	"gea/internal/cluster"
	"gea/internal/fascicle"
	"gea/internal/genedb"
	"gea/internal/indexsel"
	"gea/internal/lineage"
	"gea/internal/relational"
	"gea/internal/system"
	"gea/internal/userdb"
	"gea/internal/xprofiler"
)

// Fascicle mining (thesis Section 2.5.1; [JMN99]).
type (
	// FascicleParams configure a mining run (k, tolerance vector, batch
	// size, minimum fascicle size).
	FascicleParams = fascicle.Params
	// Fascicle is one mined result.
	Fascicle = fascicle.Fascicle
)

var (
	// MineFasciclesLattice is the exact level-wise miner (maximal results).
	MineFasciclesLattice = fascicle.Lattice
	// MineFasciclesGreedy is the single-pass batched heuristic.
	MineFasciclesGreedy = fascicle.Greedy
)

// One-step clustering baselines (thesis Sections 2.3.1-2.3.3).
type (
	// Dendrogram is a hierarchical clustering result.
	Dendrogram = cluster.Dendrogram
	// Linkage selects the agglomeration rule.
	Linkage = cluster.Linkage
	// KMeansResult holds a k-means clustering.
	KMeansResult = cluster.KMeansResult
	// SOMConfig / SOMResult drive self-organizing maps.
	SOMConfig = cluster.SOMConfig
	SOMResult = cluster.SOMResult
	// OPTICSConfig / OPTICSPoint drive OPTICS cluster ordering.
	OPTICSConfig = cluster.OPTICSConfig
	OPTICSPoint  = cluster.OPTICSPoint
	// DistanceFunc measures dissimilarity between expression vectors.
	DistanceFunc = cluster.DistanceFunc
)

// Linkage rules.
const (
	AverageLinkage  = cluster.AverageLinkage
	SingleLinkage   = cluster.SingleLinkage
	CompleteLinkage = cluster.CompleteLinkage
)

var (
	// Hierarchical is Eisen-style agglomerative clustering.
	Hierarchical = cluster.Hierarchical
	// KMeans is Lloyd's algorithm with k-means++ seeding.
	KMeans = cluster.KMeans
	// SOM trains a self-organizing map (the Golub et al. method).
	SOM = cluster.SOM
	// OPTICS computes the density cluster ordering (Ng et al. on SAGE).
	OPTICS = cluster.OPTICS
	// ExtractDBSCAN flattens an OPTICS ordering at a fixed eps.
	ExtractDBSCAN = cluster.ExtractDBSCAN
	// CorrelationDistance is 1 - Pearson, the thesis's distance function.
	CorrelationDistance = cluster.CorrelationDistance
	// EuclideanDistance is the plain L2 metric.
	EuclideanDistance = cluster.EuclideanDistance
	// RenderDendrogram / TextHeatmap / Reorder / ReachabilityPlot render
	// clustering results as text (the Eisen-style display).
	RenderDendrogram = cluster.RenderDendrogram
	TextHeatmap      = cluster.TextHeatmap
	Reorder          = cluster.Reorder
	ReachabilityPlot = cluster.ReachabilityPlot
)

// Index selection for populate() (thesis Section 3.3.2).
type (
	// RankedTag pairs a tag with its entropy score.
	RankedTag = indexsel.RankedTag
	// Table31Row is one row of Table 3.1.
	Table31Row = indexsel.Table31Row
)

var (
	// HitProbability is P(at least w of p SUMY tags are indexed | m of n
	// tags carry indexes).
	HitProbability = indexsel.HitProbability
	// IndicesRequired inverts HitProbability: the smallest m reaching a
	// confidence level. Reproduces Table 3.1.
	IndicesRequired = indexsel.IndicesRequired
	// Table31 computes the full table.
	Table31 = indexsel.Table31
	// RankByEntropy / TopEntropyTags implement the "highest entropy" index
	// heuristic; IndexAdvise combines both steps.
	RankByEntropy  = indexsel.RankByEntropy
	TopEntropyTags = indexsel.TopEntropyTags
	IndexAdvise    = indexsel.Advise
)

// DefaultConfidence is the 99.9% threshold of the thesis.
const DefaultConfidence = indexsel.DefaultConfidence

// The assembled GEA session (thesis Chapter 4).
type (
	// System is one GEA session: cleaned data, catalog, lineage, operators.
	System = system.System
	// SystemOptions configure a session.
	SystemOptions = system.Options
	// FascicleOptions mirror the calculate-fascicles window.
	FascicleOptions = system.FascicleOptions
	// CaseGroups names the three control-group SUMY tables of case study 1.
	CaseGroups = system.CaseGroups
	// ErrExists is returned by the redundancy checks.
	ErrExists = system.ErrExists
)

// NewSystem builds a session from a raw corpus (cleaning included).
var NewSystem = system.New

// Lineage (thesis Section 4.4.2).
type (
	// LineageGraph is the operation-history DAG.
	LineageGraph = lineage.Graph
	// LineageNode is one recorded table.
	LineageNode = lineage.Node
	// LineageKind classifies a node.
	LineageKind = lineage.Kind
)

// NewLineageGraph returns an empty lineage graph.
var NewLineageGraph = lineage.NewGraph

// Auxiliary gene databases (thesis Section 5.2).
type (
	// GeneDB bundles UNIGENE/SWISSPROT/PFAM/KEGG/GENBANK/OMIM/PUBMED.
	GeneDB = genedb.DB
	// GeneAnnotation is one fully resolved candidate tag.
	GeneAnnotation = genedb.Annotation
)

// BuildGeneDB synthesizes the auxiliary databases from a gene catalog.
var BuildGeneDB = genedb.Build

// Embedded relational engine (the DB2 substitute).
type (
	// RelTable is a relation instance.
	RelTable = relational.Table
	// RelSchema is an ordered column list.
	RelSchema = relational.Schema
	// RelStore is a named-table catalog with gob persistence.
	RelStore = relational.Store
	// RelValue is a typed cell.
	RelValue = relational.Value
	// RelColumn describes one attribute of a relation.
	RelColumn = relational.Column
)

var (
	// NewRelStore returns an empty store.
	NewRelStore = relational.NewStore
	// LoadRelStore reads a store saved with Store.Save.
	LoadRelStore = relational.Load
	// NewRelTable returns an empty table with the given schema.
	NewRelTable = relational.NewTable
	// RelS / RelI / RelF construct string, int and float cells.
	RelS = relational.S
	RelI = relational.I
	RelF = relational.F
	// NaturalToRotated / RotatedToNatural convert between the conceptual
	// and the physical layout of the TAGS relation (Section 4.6.1);
	// RotatedSum is the layout-adjusted per-attribute sum.
	NaturalToRotated = relational.NaturalToRotated
	RotatedToNatural = relational.RotatedToNatural
	RotatedSum       = relational.RotatedSum
)

// Relational column kinds.
const (
	RelKindString = relational.KindString
	RelKindInt    = relational.KindInt
	RelKindFloat  = relational.KindFloat
)

// User accounts and configuration (thesis Appendix III).
type (
	// UserDB stores accounts and configuration.
	UserDB = userdb.DB
	// User is one account.
	User = userdb.User
	// Role is an access level.
	Role = userdb.Role
)

// Access levels.
const (
	RoleUser  = userdb.RoleUser
	RoleAdmin = userdb.RoleAdmin
)

// NewUserDB returns a store seeded with an administrator account.
var NewUserDB = userdb.New

// xProfiler — the NCBI SAGE site's pooled differential comparator (thesis
// Section 2.3.3), implemented with the Audic-Claverie test.
type (
	// XPool is a pooled library group.
	XPool = xprofiler.Pool
	// XResult is one differentially expressed tag.
	XResult = xprofiler.Result
	// XOptions configure a comparison.
	XOptions = xprofiler.Options
)

var (
	// NewXPool pools named libraries; XPoolByState pools a tissue+state.
	NewXPool     = xprofiler.NewPool
	XPoolByState = xprofiler.PoolByState
	// XCompare runs the pooled differential test.
	XCompare = xprofiler.Compare
	// AudicClaverieP is the two-sided Audic-Claverie p-value for SAGE
	// counts (x, y) in pools of totals (n1, n2).
	AudicClaverieP = xprofiler.TwoSidedP
)

// CAST — the Cluster Affinity Search Technique baseline (Ben-Dor et al.).
type CASTConfig = cluster.CASTConfig

var (
	// CAST clusters rows, discovering the cluster count itself.
	CAST = cluster.CAST
	// CorrelationAffinity maps Pearson correlation to [0, 1].
	CorrelationAffinity = cluster.CorrelationAffinity
	// NumClusters counts distinct non-negative labels.
	NumClusters = cluster.NumClusters
)

// Session persistence.
type (
	// LoadReport lists artifacts a salvaging LoadSession had to skip;
	// inspect System.LoadReport after loading.
	LoadReport = system.LoadReport
	// LoadProblem is one skipped artifact in a LoadReport.
	LoadProblem = system.LoadProblem
)

var (
	// LoadSession restores a session saved with System.SaveSession,
	// salvaging around damaged artifacts (see the System's LoadReport).
	LoadSession = system.LoadSession
	// LoadSessionFS is LoadSession over an injectable filesystem and
	// returns the salvage report explicitly.
	LoadSessionFS = system.LoadSessionFS
)
